#!/usr/bin/env python3
"""Why is YOUR circuit easy (or not)? A cut-width diagnosis session.

Walks through the paper's analysis pipeline on three contrasting
families:

* a ripple-carry adder  — k-bounded, provably log-bounded-width;
* a generated benchmark-like circuit — empirically log-bounded-width;
* an array multiplier   — the C6288 case: width grows like sqrt(size),
  the one practical family the paper had to exclude.

For each circuit it prints the (fault sub-circuit size, cut-width)
scatter, the three least-squares fits, and the Theorem 4.1 runtime bound
the measured width implies.

Run:  python examples/cutwidth_study.py
"""

import math

from repro.analysis.fitting import all_fits
from repro.analysis.stats import format_table
from repro.circuits import tech_decompose
from repro.core import fault_width_samples, theorem_4_1_bound
from repro.gen import RandomCircuitSpec, array_multiplier, random_circuit, ripple_carry_adder


def study(name: str, circuit, max_faults: int = 24) -> None:
    circuit = tech_decompose(circuit)
    print(f"\n=== {name}: {circuit.num_gates()} gates ===")
    samples = fault_width_samples(circuit, max_faults=max_faults)

    rows = []
    for sample in sorted(samples, key=lambda s: s.sub_circuit_size)[-8:]:
        ratio = sample.cutwidth / max(1.0, math.log2(sample.sub_circuit_size))
        rows.append(
            [
                str(sample.fault),
                sample.sub_circuit_size,
                sample.cutwidth,
                f"{ratio:.2f}",
            ]
        )
    print(format_table(["fault", "|C_psi^sub|", "W", "W/log2(n)"], rows))

    x = [float(s.sub_circuit_size) for s in samples if s.sub_circuit_size >= 2]
    y = [float(s.cutwidth) for s in samples if s.sub_circuit_size >= 2]
    if len(x) >= 4:
        fits = all_fits(x, y)
        best = min(fits.values(), key=lambda f: f.sse)
        print(f"best least-squares model: {best.model} "
              f"(a={best.a:.3f}, b={best.b:.3f}, r2={best.r_squared:.3f})")

    worst = max(samples, key=lambda s: s.cutwidth)
    k_fo = max(1, circuit.max_fanout())
    bound = theorem_4_1_bound(worst.sub_circuit_size, k_fo, worst.cutwidth)
    print(f"worst fault {worst.fault}: W={worst.cutwidth} → Theorem 4.1 "
          f"node bound ≈ 2^{math.log2(bound):.0f}")


def main() -> None:
    study("ripple-carry adder (k-bounded)", ripple_carry_adder(12))
    study(
        "generated benchmark-like circuit",
        random_circuit(
            RandomCircuitSpec(
                num_inputs=40,
                num_gates=400,
                num_outputs=12,
                locality=0.6,
                reconvergence=0.2,
                seed=3,
            )
        ),
    )
    study("array multiplier (the C6288 case)", array_multiplier(5))
    print(
        "\nTakeaway: the adder and the benchmark-like circuit have "
        "cut-widths a small multiple of log(n) — ATPG on them is provably "
        "polynomial (Lemma 5.1). The multiplier's width grows like "
        "sqrt(n): exactly the family the paper excluded from Figure 8."
    )


if __name__ == "__main__":
    main()
