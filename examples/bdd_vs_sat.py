#!/usr/bin/env python3
"""BDDs versus backtracking on CIRCUIT-SAT (the paper's Section 6).

Solves the same CIRCUIT-SAT queries two ways — building the output BDD
and doing a "0 check", versus running caching backtracking on the CNF —
and compares actual sizes against the corresponding theoretical bounds:

* McMillan:  |BDD| ≤ n · 2^(w_f · 2^(w_r))   (doubly exponential in w_r)
* Paper:     nodes ≤ n · 2^(2·k_fo·W)        (single exponential in W)

The multiplier makes the contrast vivid: its BDD explodes while the
backtracking bound stays (merely) astronomically smaller.

Run:  python examples/bdd_vs_sat.py
"""

import math

from repro.analysis.stats import format_table
from repro.bdd import (
    BddSizeLimitExceeded,
    circuit_sat_by_bdd,
    output_bdd_size,
    topological_directed_widths,
)
from repro.circuits import tech_decompose
from repro.core import circuit_hypergraph, min_cut_linear_arrangement, theorem_4_1_bound
from repro.gen import array_multiplier, binary_tree_circuit, parity_tree, ripple_carry_adder
from repro.sat import CachingBacktrackingSolver, circuit_sat_formula, solve_dpll


def analyse(circuit):
    circuit = tech_decompose(circuit)
    graph = circuit_hypergraph(circuit)
    mla = min_cut_linear_arrangement(graph)
    formula = circuit_sat_formula(circuit)

    solver = CachingBacktrackingSolver(order=mla.order, max_nodes=500_000)
    bt = solver.solve(formula)
    k_fo = max(1, circuit.max_fanout())
    bt_bound = theorem_4_1_bound(formula.num_variables(), k_fo, mla.cutwidth)

    widths = topological_directed_widths(circuit)
    try:
        bdd = str(output_bdd_size(circuit, max_nodes=200_000))
    except BddSizeLimitExceeded:
        bdd = ">200k (blew up)"

    agree = "?"
    try:
        witness = circuit_sat_by_bdd(circuit)
        agree = "yes" if (witness is not None) == solve_dpll(formula).is_sat else "NO"
    except BddSizeLimitExceeded:
        agree = "n/a"

    return [
        circuit.name,
        len(circuit.nets),
        mla.cutwidth,
        bt.stats.nodes,
        f"2^{math.log2(max(2, bt_bound)):.0f}",
        f"wf={widths.forward}",
        bdd,
        agree,
    ]


def main() -> None:
    circuits = [
        binary_tree_circuit(5),
        parity_tree(10),
        ripple_carry_adder(6),
        array_multiplier(4),
    ]
    rows = [analyse(circuit) for circuit in circuits]
    print(
        format_table(
            [
                "circuit",
                "nets",
                "W",
                "bt nodes",
                "bt bound",
                "topo width",
                "BDD size",
                "answers agree",
            ],
            rows,
        )
    )
    print(
        "\nNote the asymmetry the paper highlights: cut-width W ignores "
        "signal direction and enters the bound once-exponentially, while "
        "the BDD bound pays 2^(w_f · 2^(w_r)) — double exponential in any "
        "reverse wiring of the chosen element order."
    )


if __name__ == "__main__":
    main()
