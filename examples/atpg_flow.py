#!/usr/bin/env python3
"""A production-style ATPG flow on an ISCAS85-class circuit.

Mirrors what a test engineer does with a tool like TEGUS:

1. load a netlist (here: the embedded c17 plus a generated ALU),
2. map it to simple gates (SIS tech_decomp equivalent),
3. collapse the fault list by structural equivalence,
4. run random-pattern "easy fault" screening with the fault simulator,
5. target the survivors with SAT-based deterministic ATPG
   (with fault dropping), classifying redundancies,
6. cross-check the deterministic verdicts with PODEM,
7. report the final pattern set and coverage.

Run:  python examples/atpg_flow.py
"""

from repro.atpg import AtpgEngine, FaultStatus, collapse_faults, fault_simulate
from repro.atpg.fault_sim import random_pattern_coverage
from repro.atpg.podem import PodemEngine, PodemStatus
from repro.circuits import tech_decompose
from repro.gen import alu_slice, c17


def run_flow(circuit, n_random: int = 8) -> None:
    print(f"\n=== {circuit.name} ===")
    circuit = tech_decompose(circuit)
    print(f"mapped: {circuit.num_gates()} gates "
          f"(k_fi={circuit.max_fanin()}, k_fo={circuit.max_fanout()})")

    faults = collapse_faults(circuit)
    print(f"fault list: {len(faults)} collapsed faults")

    # Phase 1: random-pattern screening.
    screened = random_pattern_coverage(circuit, faults, n_random, seed=7)
    print(f"random patterns ({n_random}): "
          f"{len(screened.detected)}/{len(faults)} detected "
          f"({screened.coverage:.1%})")

    # Phase 2: deterministic SAT-based ATPG on the survivors.
    engine = AtpgEngine(circuit)
    summary = engine.run(faults=screened.undetected, fault_dropping=True)
    tested = summary.by_status(FaultStatus.TESTED)
    dropped = summary.by_status(FaultStatus.DROPPED)
    redundant = summary.by_status(FaultStatus.UNTESTABLE)
    print(f"deterministic ATPG: {len(tested)} tests generated, "
          f"{len(dropped)} faults dropped, {len(redundant)} proven redundant")

    # Phase 3: PODEM cross-check on the redundancies (belt and braces —
    # a redundancy claim removes a fault from the product's test plan).
    podem = PodemEngine(circuit, max_backtracks=50_000)
    confirmed = sum(
        1
        for record in redundant
        if podem.generate_test(record.fault).status is PodemStatus.UNTESTABLE
    )
    if redundant:
        print(f"PODEM confirms {confirmed}/{len(redundant)} redundancies")

    # Final pattern set and overall coverage.
    patterns = summary.tests()
    final = fault_simulate(circuit, faults, patterns)
    total_detected = len(final.detected) + 0
    testable = len(faults) - len(redundant)
    print(f"deterministic pattern set: {len(patterns)} vectors")
    print(f"coverage of testable faults after both phases: "
          f"{(len(screened.detected) + len(tested) + len(dropped)) / max(1, testable):.1%}")


def redundant_adder():
    """A carry-lookahead adder with a deliberately redundant consensus
    term OR-ed into the carry-out (classic redundancy-addition)."""
    from repro.circuits import NetworkBuilder

    builder = NetworkBuilder("redundant_adder")
    a = builder.input("a")
    b = builder.input("b")
    c = builder.input("c")
    nb = builder.not_(b, name="nb")
    ab = builder.and_(a, b, name="ab")
    nbc = builder.and_(nb, c, name="nbc")
    ac = builder.and_(a, c, name="ac")  # consensus of ab, n̄bc on b
    # Consensus theorem: ab + b̄c + ac == ab + b̄c, so ac/sa0 is redundant.
    carry = builder.or_(ab, nbc, ac, name="carry")
    builder.outputs(carry)
    return builder.build()


def main() -> None:
    run_flow(c17())
    run_flow(alu_slice(4))
    run_flow(redundant_adder(), n_random=2)


if __name__ == "__main__":
    main()
