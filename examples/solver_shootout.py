#!/usr/bin/env python3
"""Solver shootout on ATPG-SAT instances: how much does each idea buy?

Compares, on the same ATPG-SAT instances, the four solvers in this
repository — the historical ladder of SAT-for-ATPG ideas:

1. simple backtracking (the baseline of the paper's analysis),
2. Algorithm 1: simple backtracking + sub-formula caching (the paper's
   model of learning),
3. DPLL with unit propagation (the TEGUS era),
4. CDCL with first-UIP learning (GRASP and after).

Also demonstrates the variable-ordering lever: the same caching solver
run under a random order versus the min-cut linear arrangement.

Run:  python examples/solver_shootout.py
"""

import random
import time

from repro.analysis.stats import format_table
from repro.atpg import collapse_faults
from repro.atpg.miter import UnobservableFault, atpg_sat_formula
from repro.circuits import tech_decompose
from repro.core import circuit_hypergraph, min_cut_linear_arrangement
from repro.gen import alu_slice, carry_lookahead_adder
from repro.sat import (
    CachingBacktrackingSolver,
    CdclSolver,
    DpllSolver,
    SimpleBacktrackingSolver,
)


def collect_instances(circuit, limit=6):
    instances = []
    faults = collapse_faults(circuit)
    for fault in faults[:: max(1, len(faults) // limit)]:
        try:
            instances.append((fault, atpg_sat_formula(circuit, fault)))
        except UnobservableFault:
            continue
        if len(instances) >= limit:
            break
    return instances


def race(instances):
    solvers = {
        "simple": lambda: SimpleBacktrackingSolver(max_nodes=20_000),
        "caching (Alg.1)": lambda: CachingBacktrackingSolver(max_nodes=20_000),
        "DPLL": lambda: DpllSolver(dynamic=True),
        "CDCL": lambda: CdclSolver(),
    }
    rows = []
    for name, factory in solvers.items():
        nodes = 0
        elapsed = 0.0
        answers = []
        solved = 0
        for _, formula in instances:
            solver = factory()
            start = time.perf_counter()
            result = solver.solve(formula)
            elapsed += time.perf_counter() - start
            nodes += result.stats.nodes
            answers.append(result.status.value)
            if result.status.value != "UNKNOWN":
                solved += 1
        rows.append(
            [name, f"{solved}/{len(instances)}", nodes, f"{elapsed*1e3:.1f}ms"]
        )
    print(format_table(["solver", "solved", "total nodes", "time"], rows))


def ordering_lever(circuit, instances):
    """Same solver, three orderings: the paper's Section 5 lever."""
    graph = circuit_hypergraph(circuit)
    mla = min_cut_linear_arrangement(graph).order
    topo = circuit.topological_order()
    rng = random.Random(0)
    shuffled = list(topo)
    rng.shuffle(shuffled)

    rows = []
    for label, base_order in (
        ("random", shuffled),
        ("topological", topo),
        ("MLA", mla),
    ):
        nodes = 0
        for _, formula in instances:
            solver = CachingBacktrackingSolver(
                order=base_order, max_nodes=50_000
            )
            nodes += solver.solve(formula).stats.nodes
        rows.append([label, nodes])
    print(format_table(["ordering (Alg.1)", "total nodes"], rows))


def main() -> None:
    for circuit in (carry_lookahead_adder(3), alu_slice(2)):
        circuit = tech_decompose(circuit)
        print(f"\n=== {circuit.name}: {circuit.num_gates()} gates ===")
        instances = collect_instances(circuit)
        print(f"{len(instances)} ATPG-SAT instances sampled\n")
        race(instances)
        print()
        ordering_lever(circuit, instances)


if __name__ == "__main__":
    main()
