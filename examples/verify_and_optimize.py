#!/usr/bin/env python3
"""The paper's other two ATPG applications: verification & optimization.

The introduction of "Why is ATPG easy?" motivates ATPG-SAT with three
uses: testing, verification [3, 17] and logic optimization [6, 9].  The
main flow demos cover testing; this example exercises the other two on
the same machinery:

1. **Equivalence checking** — prove a ripple-carry adder equal to a
   carry-lookahead adder, then catch an injected bug with a
   counterexample vector.
2. **Redundancy removal** — take a circuit with consensus redundancy,
   let the ATPG engine prove the redundant wires untestable, sweep them
   away, and re-verify equivalence of the optimized result (closing the
   loop through both applications).

Run:  python examples/verify_and_optimize.py
"""

from repro.apps import check_equivalence, remove_redundancies
from repro.circuits import GateType, NetworkBuilder
from repro.gen import carry_lookahead_adder, ripple_carry_adder


def demo_equivalence() -> None:
    print("=== equivalence checking ===")
    rca = ripple_carry_adder(6)
    cla = carry_lookahead_adder(6)
    cla.set_outputs(rca.outputs)  # align output order

    result = check_equivalence(rca, cla)
    print(f"rca6 vs cla6: equivalent={result.equivalent} "
          f"({result.decisions} decisions)")

    # Inject a bug: flip one carry gate in the CLA.
    buggy = cla.copy(name="cla6_buggy")
    victim = "c3"
    gate = buggy.gate(victim)
    buggy.replace_gate(victim, GateType.NOR, gate.inputs)
    result = check_equivalence(rca, buggy)
    print(f"rca6 vs buggy cla6: equivalent={result.equivalent}")
    if not result.equivalent:
        print(f"  counterexample: {result.counterexample}")
        print(f"  first differing output: {result.differing_output}")


def demo_redundancy_removal() -> None:
    print("\n=== redundancy removal ===")
    builder = NetworkBuilder("mux_with_consensus")
    s = builder.input("s")
    a = builder.input("a")
    b = builder.input("b")
    ns = builder.not_(s, name="ns")
    take_a = builder.and_(ns, a, name="take_a")
    take_b = builder.and_(s, b, name="take_b")
    consensus = builder.and_(a, b, name="consensus")  # redundant term
    builder.outputs(builder.or_(take_a, take_b, consensus, name="y"))
    network = builder.build()

    optimized, report = remove_redundancies(network)
    print(f"gates: {report.gates_before} -> {report.gates_after} "
          f"({report.passes} passes)")
    print(f"removed (proven untestable): "
          f"{', '.join(str(f) for f in report.removed) or 'none'}")

    verdict = check_equivalence(network, optimized)
    print(f"optimized circuit equivalent to original: {verdict.equivalent}")


if __name__ == "__main__":
    demo_equivalence()
    demo_redundancy_removal()
