#!/usr/bin/env python3
"""Quickstart: SAT-based ATPG and cut-width analysis in five minutes.

Builds a small circuit, generates tests for every stuck-at fault with
the SAT engine, proves one fault redundant, and then explains *why* the
whole exercise was easy by measuring the circuit's cut-width against the
paper's Theorem 4.1 bound.

Run:  python examples/quickstart.py
"""

from repro.atpg import AtpgEngine, Fault, FaultStatus
from repro.circuits import NetworkBuilder, tech_decompose
from repro.core import (
    minimum_cutwidth,
    mla_ordering,
    theorem_4_1_bound,
)
from repro.sat import CachingBacktrackingSolver, circuit_sat_formula


def build_circuit():
    """A 1-bit full adder plus a deliberately redundant OR tap."""
    builder = NetworkBuilder("quickstart")
    a = builder.input("a")
    b = builder.input("b")
    cin = builder.input("cin")
    axb = builder.xor(a, b, name="axb")
    total = builder.xor(axb, cin, name="sum")
    gen = builder.and_(a, b, name="gen")
    prop = builder.and_(axb, cin, name="prop")
    cout = builder.or_(gen, prop, name="cout")
    # Redundancy: OR-ing cout with (gen AND cout) changes nothing, so
    # the AND's stuck-at-0 is untestable.
    extra = builder.and_(gen, cout, name="extra")
    cout2 = builder.or_(cout, extra, name="cout2")
    builder.outputs(total, cout2)
    return builder.build()


def main() -> None:
    circuit = tech_decompose(build_circuit())
    print(f"circuit: {circuit.name} — {circuit.num_gates()} gates, "
          f"{len(circuit.inputs)} inputs, {len(circuit.outputs)} outputs")

    # --- 1. run ATPG on every collapsed stuck-at fault ---------------
    engine = AtpgEngine(circuit)
    summary = engine.run()
    print(f"\nATPG over {len(summary.records)} faults:")
    for status in FaultStatus:
        records = summary.by_status(status)
        if records:
            print(f"  {status.value:>12}: {len(records)}")
    print(f"  fault coverage: {summary.fault_coverage:.1%}")

    redundant = summary.by_status(FaultStatus.UNTESTABLE)
    if redundant:
        print(f"  proven redundant: {', '.join(str(r.fault) for r in redundant)}")

    # --- 2. inspect one concrete test --------------------------------
    record = engine.generate_test(Fault("sum", 0))
    print(f"\ntest for {record.fault}: {record.test}")
    print(f"  SAT instance: {record.num_variables} vars, "
          f"{record.num_clauses} clauses, {record.decisions} decisions")

    # --- 3. why was that easy? cut-width! ----------------------------
    width = minimum_cutwidth(circuit)
    print(f"\nestimated minimum cut-width W(C) = {width}")
    arrangement = mla_ordering(circuit)
    formula = circuit_sat_formula(circuit)
    solver = CachingBacktrackingSolver(order=arrangement.order)
    result = solver.solve(formula)
    k_fo = max(1, circuit.max_fanout())
    bound = theorem_4_1_bound(formula.num_variables(), k_fo, arrangement.cutwidth)
    print(f"caching backtracking under the MLA ordering: "
          f"{result.stats.nodes} nodes visited")
    print(f"Theorem 4.1 bound n*2^(2*k_fo*W) = {bound}  "
          f"(holds: {result.stats.nodes <= bound})")


if __name__ == "__main__":
    main()
