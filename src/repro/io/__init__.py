"""Netlist and formula I/O: ISCAS85 .bench, BLIF, DIMACS CNF."""

from repro.io.bench import (
    BenchFormatError,
    dump_bench,
    dumps_bench,
    load_bench,
    loads_bench,
)
from repro.io.blif import (
    BlifFormatError,
    dump_blif,
    dumps_blif,
    load_blif,
    loads_blif,
)
from repro.io.verilog import (
    VerilogFormatError,
    dump_verilog,
    dumps_verilog,
    load_verilog,
    loads_verilog,
)
from repro.io.dimacs import (
    DimacsFormatError,
    dump_dimacs,
    dumps_dimacs,
    load_dimacs,
    loads_dimacs,
)

__all__ = [
    "BenchFormatError",
    "BlifFormatError",
    "DimacsFormatError",
    "VerilogFormatError",
    "dump_bench",
    "dump_blif",
    "dump_dimacs",
    "dumps_bench",
    "dumps_blif",
    "dumps_dimacs",
    "load_bench",
    "load_blif",
    "load_dimacs",
    "loads_bench",
    "loads_blif",
    "loads_dimacs",
    "dump_verilog",
    "dumps_verilog",
    "load_verilog",
    "loads_verilog",
]
