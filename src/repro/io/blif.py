"""BLIF netlist reader/writer (the MCNC91 distribution format).

Supports the combinational core of BLIF: ``.model``, ``.inputs``,
``.outputs``, ``.names`` (PLA-style single-output cover) and ``.end``.
Covers are converted to AND/OR/NOT networks: each product term becomes an
AND of (possibly inverted) literals and the cover their OR; the
complemented-output convention (``0`` output plane) is handled by
inverting the result.
"""

from __future__ import annotations

from pathlib import Path

from repro.circuits.gates import GateType
from repro.circuits.network import Network


class BlifFormatError(ValueError):
    """Raised on malformed BLIF input."""


def _logical_lines(text: str):
    """BLIF lines with continuations joined and comments stripped."""
    buffer = ""
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].rstrip()
        if line.endswith("\\"):
            buffer += line[:-1] + " "
            continue
        buffer += line
        stripped = buffer.strip()
        buffer = ""
        if stripped:
            yield stripped


def loads_blif(text: str, name: str = "blif") -> Network:
    """Parse BLIF text into a :class:`Network`."""
    network = Network(name=name)
    outputs: list[str] = []
    covers: list[tuple[list[str], str, list[tuple[str, str]]]] = []

    current: tuple[list[str], str, list[tuple[str, str]]] | None = None
    for line in _logical_lines(text):
        if line.startswith("."):
            parts = line.split()
            keyword = parts[0]
            if keyword == ".model" and len(parts) > 1:
                network.name = parts[1]
            elif keyword == ".inputs":
                for net in parts[1:]:
                    network.add_input(net)
            elif keyword == ".outputs":
                outputs.extend(parts[1:])
            elif keyword == ".names":
                if len(parts) < 2:
                    raise BlifFormatError(f"bad .names line: {line!r}")
                *sources, target = parts[1:]
                current = (sources, target, [])
                covers.append(current)
            elif keyword == ".end":
                current = None
            elif keyword in (".latch", ".subckt", ".gate"):
                raise BlifFormatError(
                    f"sequential/hierarchical BLIF not supported: {keyword}"
                )
            # Other dot-commands (.default_input_arrival etc.) are ignored.
        else:
            if current is None:
                raise BlifFormatError(f"cover row outside .names: {line!r}")
            parts = line.split()
            sources, _, rows = current
            if not sources:
                # Constant: single output column.
                if len(parts) != 1 or parts[0] not in ("0", "1"):
                    raise BlifFormatError(f"bad constant row: {line!r}")
                rows.append(("", parts[0]))
            else:
                if len(parts) != 2:
                    raise BlifFormatError(f"bad cover row: {line!r}")
                plane, value = parts
                if len(plane) != len(sources):
                    raise BlifFormatError(
                        f"cover row width mismatch: {line!r}"
                    )
                rows.append((plane, value))

    fresh = _FreshNamer(network)
    for sources, target, rows in covers:
        _emit_cover(network, fresh, sources, target, rows)
    network.set_outputs(outputs)
    return network


class _FreshNamer:
    def __init__(self, network: Network) -> None:
        self._network = network
        self._counter = 0

    def fresh(self, stem: str) -> str:
        while True:
            candidate = f"{stem}_b{self._counter}"
            self._counter += 1
            if not self._network.has_net(candidate):
                return candidate


def _emit_cover(
    network: Network,
    fresh: _FreshNamer,
    sources: list[str],
    target: str,
    rows: list[tuple[str, str]],
) -> None:
    """Convert one .names cover to gates driving ``target``."""
    if not sources:
        value = rows[-1][1] if rows else "0"
        const = GateType.CONST1 if value == "1" else GateType.CONST0
        network.add_gate(target, const, ())
        return

    on_rows = [plane for plane, value in rows if value == "1"]
    off_rows = [plane for plane, value in rows if value == "0"]
    if on_rows and off_rows:
        raise BlifFormatError(
            f"mixed on/off cover for {target!r} is not supported"
        )
    invert = bool(off_rows) or not rows
    planes = off_rows if off_rows else on_rows

    if not planes:
        # Empty cover: constant 0 (or 1 when the off-plane is empty).
        const = GateType.CONST1 if invert else GateType.CONST0
        network.add_gate(target, const, ())
        return

    inverter_cache: dict[str, str] = {}

    def inverted(source: str) -> str:
        if source not in inverter_cache:
            inv = fresh.fresh(target)
            network.add_gate(inv, GateType.NOT, [source])
            inverter_cache[source] = inv
        return inverter_cache[source]

    term_nets: list[str] = []
    for plane in planes:
        literals: list[str] = []
        for position, symbol in enumerate(plane):
            if symbol == "1":
                literals.append(sources[position])
            elif symbol == "0":
                literals.append(inverted(sources[position]))
            elif symbol != "-":
                raise BlifFormatError(f"bad cover symbol {symbol!r}")
        if not literals:
            # Row of all don't-cares: function is constant.
            const = GateType.CONST0 if invert else GateType.CONST1
            network.add_gate(target, const, ())
            return
        if len(literals) == 1:
            term_nets.append(literals[0])
        else:
            term = fresh.fresh(target)
            network.add_gate(term, GateType.AND, literals)
            term_nets.append(term)

    final_type = GateType.NOR if invert else GateType.OR
    if len(term_nets) == 1:
        if invert:
            network.add_gate(target, GateType.NOT, term_nets)
        else:
            network.add_gate(target, GateType.BUF, term_nets)
    else:
        network.add_gate(target, final_type, term_nets)


def load_blif(path: str | Path) -> Network:
    """Read a BLIF file."""
    path = Path(path)
    return loads_blif(path.read_text(), name=path.stem)


def dumps_blif(network: Network) -> str:
    """Serialise a network as BLIF (each gate as a .names cover)."""
    lines = [f".model {network.name}"]
    if network.inputs:
        lines.append(".inputs " + " ".join(network.inputs))
    if network.outputs:
        lines.append(".outputs " + " ".join(network.outputs))
    for net in network.topological_order():
        gate = network.gate(net)
        gtype = gate.gate_type
        if gtype is GateType.INPUT:
            continue
        header = ".names " + " ".join((*gate.inputs, net))
        if gtype is GateType.CONST0:
            lines.append(f".names {net}")
        elif gtype is GateType.CONST1:
            lines.append(f".names {net}")
            lines.append("1")
        elif gtype is GateType.BUF:
            lines.append(header)
            lines.append("1 1")
        elif gtype is GateType.NOT:
            lines.append(header)
            lines.append("0 1")
        elif gtype is GateType.AND:
            lines.append(header)
            lines.append("1" * gate.fanin + " 1")
        elif gtype is GateType.OR:
            lines.append(header)
            for i in range(gate.fanin):
                row = ["-"] * gate.fanin
                row[i] = "1"
                lines.append("".join(row) + " 1")
        elif gtype is GateType.NAND:
            lines.append(header)
            for i in range(gate.fanin):
                row = ["-"] * gate.fanin
                row[i] = "0"
                lines.append("".join(row) + " 1")
        elif gtype is GateType.NOR:
            lines.append(header)
            lines.append("0" * gate.fanin + " 1")
        elif gtype in (GateType.XOR, GateType.XNOR):
            lines.append(header)
            want = 1 if gtype is GateType.XOR else 0
            for bits in range(1 << gate.fanin):
                if bin(bits).count("1") % 2 == want:
                    row = "".join(
                        "1" if (bits >> i) & 1 else "0"
                        for i in range(gate.fanin)
                    )
                    lines.append(row + " 1")
        else:  # pragma: no cover - exhaustive
            raise BlifFormatError(f"cannot serialise {gtype!r}")
    lines.append(".end")
    return "\n".join(lines) + "\n"


def dump_blif(network: Network, path: str | Path) -> None:
    """Write a BLIF file."""
    Path(path).write_text(dumps_blif(network))
