"""DIMACS CNF reader/writer for interoperability with external SAT tools."""

from __future__ import annotations

from pathlib import Path

from repro.sat.cnf import CnfFormula, Literal


class DimacsFormatError(ValueError):
    """Raised on malformed DIMACS input."""


def dumps_dimacs(formula: CnfFormula) -> tuple[str, dict[str, int]]:
    """Serialise a formula to DIMACS text.

    Returns:
        (text, mapping from variable name to DIMACS index).  The mapping
        follows sorted-name order, matching the solver compilation.
    """
    names = list(formula.variables)
    index = {name: i + 1 for i, name in enumerate(names)}
    lines = [f"p cnf {len(names)} {formula.num_clauses()}"]
    for name in names:
        lines.insert(0, f"c var {index[name]} = {name}")
    for clause in sorted(
        formula.clauses, key=lambda c: sorted((l.variable, l.positive) for l in c)
    ):
        ints = sorted(
            (index[lit.variable] if lit.positive else -index[lit.variable])
            for lit in clause
        )
        lines.append(" ".join(str(v) for v in ints) + " 0")
    return "\n".join(lines) + "\n", index


def dump_dimacs(formula: CnfFormula, path: str | Path) -> dict[str, int]:
    """Write a DIMACS file; returns the name → index mapping."""
    text, index = dumps_dimacs(formula)
    Path(path).write_text(text)
    return index


def loads_dimacs(text: str) -> CnfFormula:
    """Parse DIMACS CNF text.

    Variable names are recovered from ``c var N = name`` comments when
    present, else synthesised as ``x<N>``.

    Raises:
        DimacsFormatError: on malformed headers or literals.
    """
    names: dict[int, str] = {}
    clauses: list[frozenset[Literal]] = []
    pending: list[int] = []
    declared: tuple[int, int] | None = None

    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("c"):
            parts = line.split()
            if len(parts) == 5 and parts[1] == "var" and parts[3] == "=":
                try:
                    names[int(parts[2])] = parts[4]
                except ValueError as exc:
                    raise DimacsFormatError(f"bad var comment: {raw!r}") from exc
            continue
        if line.startswith("p"):
            parts = line.split()
            if len(parts) != 4 or parts[1] != "cnf":
                raise DimacsFormatError(f"bad problem line: {raw!r}")
            declared = (int(parts[2]), int(parts[3]))
            continue
        for token in line.split():
            try:
                value = int(token)
            except ValueError as exc:
                raise DimacsFormatError(f"bad literal {token!r}") from exc
            if value == 0:
                clauses.append(
                    frozenset(
                        Literal(names.get(abs(v), f"x{abs(v)}"), v > 0)
                        for v in pending
                    )
                )
                pending = []
            else:
                pending.append(value)
    if pending:
        clauses.append(
            frozenset(
                Literal(names.get(abs(v), f"x{abs(v)}"), v > 0) for v in pending
            )
        )
    formula = CnfFormula(clauses)
    if declared is not None and declared[1] != formula.num_clauses():
        # Duplicate clauses collapse in set representation; accept but
        # only if the declared count is not exceeded.
        if formula.num_clauses() > declared[1]:
            raise DimacsFormatError(
                f"clause count {formula.num_clauses()} exceeds declared "
                f"{declared[1]}"
            )
    return formula


def load_dimacs(path: str | Path) -> CnfFormula:
    """Read a DIMACS file."""
    return loads_dimacs(Path(path).read_text())
