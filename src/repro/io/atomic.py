"""Atomic file replacement for JSON artifacts.

Benchmark documents, job metadata, and cached result records are all
read by *other* processes (CI ratchets, a restarted server, a resumed
run), so a crash mid-write must never leave a torn half-document where
a consumer expects valid JSON.  POSIX ``rename(2)`` within one
filesystem is atomic: writing to a temporary sibling and
``os.replace``-ing it over the target means readers observe either the
old complete file or the new complete file, never a prefix.

The checkpoint *journal* (:mod:`repro.atpg.checkpoint`) deliberately
does not use this: it is append-only and torn-line tolerant by design,
and rewriting it per record would defeat its purpose.  Everything that
writes a whole document in one shot should come through here.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path


def atomic_write_text(path: str | Path, text: str) -> None:
    """Write ``text`` to ``path`` via a same-directory temp file +
    ``os.replace``, so a crash never leaves a torn artifact.

    The temp file lives next to the target (``os.replace`` across
    filesystems is not atomic) and is fsynced before the rename, so the
    rename can never be durable while the content is not.
    """
    target = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        dir=target.parent, prefix=target.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            fh.write(text)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp_name, target)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def atomic_write_json(path: str | Path, payload, *, indent: int = 2) -> None:
    """Serialise ``payload`` and atomically write it to ``path``."""
    atomic_write_text(path, json.dumps(payload, indent=indent) + "\n")
