"""Atomic file replacement for JSON artifacts, with typed disk faults.

Benchmark documents, job metadata, lease files, and cached result
records are all read by *other* processes (CI ratchets, a restarted
server, a peer node sharing the store), so a crash mid-write must never
leave a torn half-document where a consumer expects valid JSON.  POSIX
``rename(2)`` within one filesystem is atomic: writing to a temporary
sibling and ``os.replace``-ing it over the target means readers observe
either the old complete file or the new complete file, never a prefix.

Two robustness contracts live here on top of that:

* **No leaked temp files.**  The mkstemp sibling is removed in a
  ``finally`` whatever raises — a full disk (``ENOSPC``) or dying
  device (``EIO``) during write/fsync/replace must not also litter the
  store with orphaned ``*.tmp`` files (the failpoint sweep asserts
  this for every registered crash point).
* **Typed disk faults.**  Environmental write failures surface as
  :class:`StorageError` (an ``OSError`` subclass carrying the target
  path), so callers can degrade deliberately — a job lands in FAILED
  with a reason, a CAS promotion is skipped — instead of propagating a
  bare traceback.  Programming errors (``ENOENT`` from a bogus
  directory, ``EACCES``) still raise plain ``OSError``: those are bugs,
  not weather.

Callers in the persistence layers pass a *failpoint prefix*
(``fp="cas.promote"``) which arms three deterministic crash points
around the commit: ``<fp>.pre_write``, ``<fp>.pre_rename`` (temp
written + fsynced, target not yet replaced), and ``<fp>.post_rename``
(committed, caller not yet told).  See
:mod:`repro.service.failpoints`.

The checkpoint *journal* (:mod:`repro.atpg.checkpoint`) deliberately
does not use this: it is append-only and torn-line tolerant by design,
and rewriting it per record would defeat its purpose.  Everything that
writes a whole document in one shot should come through here.
"""

from __future__ import annotations

import errno
import json
import os
import tempfile
from pathlib import Path
from typing import Optional

#: Errnos that are environmental storage faults (degradable weather),
#: not caller bugs.  EDQUOT/EROFS behave like ENOSPC operationally.
STORAGE_ERRNOS = frozenset(
    {errno.ENOSPC, errno.EIO, errno.EDQUOT, errno.EROFS}
)


class StorageError(OSError):
    """A persistence write failed for environmental reasons (full disk,
    I/O error).  Carries the target path; ``.errno`` is preserved from
    the underlying fault so callers can still distinguish ENOSPC from
    EIO."""

    def __init__(self, op: str, path: str | Path, cause: OSError) -> None:
        super().__init__(
            cause.errno,
            f"{op} failed on {path}: {cause.strerror or cause}",
        )
        self.op = op
        self.path = str(path)


def _raise_typed(op: str, path: str | Path, exc: OSError) -> None:
    """Re-raise ``exc`` as :class:`StorageError` when environmental."""
    if exc.errno in STORAGE_ERRNOS:
        raise StorageError(op, path, exc) from exc
    raise exc


def _failpoint(name: str) -> None:
    # Lazily bound to avoid an import cycle (repro.service.__init__
    # imports modules that import this one); rebinds itself on first
    # use so steady-state cost is one extra function call, paid only
    # by callers that opted into a failpoint prefix.
    global _failpoint
    from repro.service.failpoints import failpoint as _failpoint  # noqa: PLW0603

    _failpoint(name)


def atomic_write_text(
    path: str | Path, text: str, *, fp: Optional[str] = None
) -> None:
    """Write ``text`` to ``path`` via a same-directory temp file +
    ``os.replace``, so a crash never leaves a torn artifact.

    The temp file lives next to the target (``os.replace`` across
    filesystems is not atomic) and is fsynced before the rename, so the
    rename can never be durable while the content is not.  The temp
    file is unlinked on *every* failure path, and environmental write
    failures raise :class:`StorageError` (see module docstring).

    Args:
        fp: optional failpoint prefix firing ``<fp>.pre_write`` /
            ``<fp>.pre_rename`` / ``<fp>.post_rename`` around the
            commit (zero overhead when omitted).
    """
    target = Path(path)
    if fp is not None:
        try:
            _failpoint(f"{fp}.pre_write")
        except OSError as exc:
            _raise_typed("atomic write", target, exc)
    try:
        fd, tmp_name = tempfile.mkstemp(
            dir=target.parent, prefix=target.name + ".", suffix=".tmp"
        )
    except OSError as exc:
        _raise_typed("mkstemp", target, exc)
    try:
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(text)
                fh.flush()
                os.fsync(fh.fileno())
            if fp is not None:
                _failpoint(f"{fp}.pre_rename")
            os.replace(tmp_name, target)
            if fp is not None:
                # Fires with the commit already durable: a fault here
                # still surfaces as StorageError so callers degrade the
                # same way, and the sweep asserts the committed document
                # survives intact.
                _failpoint(f"{fp}.post_rename")
        except OSError as exc:
            _raise_typed("atomic write", target, exc)
    finally:
        # After a successful replace the temp name no longer exists;
        # on any failure (including between mkstemp and fdopen, and
        # inside _raise_typed) this is what prevents the leak.
        try:
            os.unlink(tmp_name)
        except OSError:
            pass


def atomic_write_json(
    path: str | Path, payload, *, indent: int = 2, fp: Optional[str] = None
) -> None:
    """Serialise ``payload`` and atomically write it to ``path``."""
    atomic_write_text(path, json.dumps(payload, indent=indent) + "\n", fp=fp)
