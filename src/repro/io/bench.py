"""ISCAS85 ``.bench`` netlist reader/writer.

The format used by the ISCAS85 benchmark distribution::

    # comment
    INPUT(G1)
    OUTPUT(G17)
    G10 = NAND(G1, G3)
    G17 = NOT(G10)

Gate names: AND, NAND, OR, NOR, XOR, XNOR, NOT/INV, BUF/BUFF, and the
constants CONST0/CONST1 (an extension for generated circuits).
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.circuits.gates import GateType, gate_function_name, gate_type_from_name
from repro.circuits.network import Network

_ASSIGN_RE = re.compile(
    r"^\s*([^\s=]+)\s*=\s*([A-Za-z01]+)\s*\(([^)]*)\)\s*$"
)
_IO_RE = re.compile(r"^\s*(INPUT|OUTPUT)\s*\(\s*([^)\s]+)\s*\)\s*$", re.IGNORECASE)


class BenchFormatError(ValueError):
    """Raised on malformed ``.bench`` input."""


def loads_bench(text: str, name: str = "bench") -> Network:
    """Parse ``.bench`` text into a :class:`Network`.

    Raises:
        BenchFormatError: on syntax errors or unknown gate functions.
    """
    network = Network(name=name)
    outputs: list[str] = []
    pending: list[tuple[str, str, list[str], int]] = []

    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        io_match = _IO_RE.match(line)
        if io_match:
            kind, net = io_match.group(1).upper(), io_match.group(2)
            if kind == "INPUT":
                network.add_input(net)
            else:
                outputs.append(net)
            continue
        assign = _ASSIGN_RE.match(line)
        if assign:
            target, func, args = assign.groups()
            sources = [s.strip() for s in args.split(",") if s.strip()]
            pending.append((target, func.upper(), sources, line_no))
            continue
        raise BenchFormatError(f"line {line_no}: cannot parse {raw!r}")

    for target, func, sources, line_no in pending:
        if func in ("CONST0", "GND", "ZERO"):
            network.add_gate(target, GateType.CONST0, ())
            continue
        if func in ("CONST1", "VDD", "ONE"):
            network.add_gate(target, GateType.CONST1, ())
            continue
        try:
            gate_type = gate_type_from_name(func)
        except KeyError as exc:
            raise BenchFormatError(
                f"line {line_no}: unknown gate function {func!r}"
            ) from exc
        network.add_gate(target, gate_type, sources)

    network.set_outputs(outputs)
    return network


def load_bench(path: str | Path) -> Network:
    """Read a ``.bench`` file."""
    path = Path(path)
    return loads_bench(path.read_text(), name=path.stem)


def dumps_bench(network: Network) -> str:
    """Serialise a network to ``.bench`` text (topological gate order)."""
    lines = [f"# {network.name}"]
    for net in network.inputs:
        lines.append(f"INPUT({net})")
    for net in network.outputs:
        lines.append(f"OUTPUT({net})")
    for net in network.topological_order():
        gate = network.gate(net)
        if gate.gate_type is GateType.INPUT:
            continue
        if gate.gate_type is GateType.CONST0:
            lines.append(f"{net} = CONST0()")
        elif gate.gate_type is GateType.CONST1:
            lines.append(f"{net} = CONST1()")
        else:
            args = ", ".join(gate.inputs)
            lines.append(f"{net} = {gate_function_name(gate.gate_type)}({args})")
    return "\n".join(lines) + "\n"


def dump_bench(network: Network, path: str | Path) -> None:
    """Write a ``.bench`` file."""
    Path(path).write_text(dumps_bench(network))
