"""Structural gate-level Verilog reader/writer.

Supports the flat structural subset that gate-level netlists use::

    module c17 (N1, N2, N3, N6, N7, N22, N23);
      input N1, N2, N3, N6, N7;
      output N22, N23;
      wire N10, N11, N16, N19;
      nand g1 (N10, N1, N3);
      nand g2 (N11, N3, N6);
      ...
    endmodule

Primitive gates: ``and, or, nand, nor, xor, xnor, not, buf`` with the
Verilog convention that the first terminal is the output.  Assignments
of constants (``assign w = 1'b0;``) are accepted.  Hierarchical modules,
behavioural constructs and vectors are out of scope and rejected.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.circuits.gates import GateType
from repro.circuits.network import Network

_PRIMITIVES = {
    "and": GateType.AND,
    "or": GateType.OR,
    "nand": GateType.NAND,
    "nor": GateType.NOR,
    "xor": GateType.XOR,
    "xnor": GateType.XNOR,
    "not": GateType.NOT,
    "buf": GateType.BUF,
}

_MODULE_RE = re.compile(r"module\s+(\w+)\s*\(([^)]*)\)\s*;", re.DOTALL)
_DECL_RE = re.compile(r"(input|output|wire)\s+([^;]+);")
_GATE_RE = re.compile(r"(\w+)\s+(\w+)?\s*\(([^)]*)\)\s*;")
_ASSIGN_RE = re.compile(r"assign\s+(\w+)\s*=\s*1'b([01])\s*;")


class VerilogFormatError(ValueError):
    """Raised on unsupported or malformed Verilog."""


def _strip_comments(text: str) -> str:
    text = re.sub(r"//[^\n]*", "", text)
    return re.sub(r"/\*.*?\*/", "", text, flags=re.DOTALL)


def loads_verilog(text: str, name: str | None = None) -> Network:
    """Parse structural Verilog into a :class:`Network`.

    Raises:
        VerilogFormatError: on missing module, unknown primitives, or
            behavioural constructs.
    """
    text = _strip_comments(text)
    module = _MODULE_RE.search(text)
    if module is None:
        raise VerilogFormatError("no module declaration found")
    module_name = module.group(1)
    body = text[module.end() : ]
    end = body.find("endmodule")
    if end < 0:
        raise VerilogFormatError("missing endmodule")
    body = body[:end]

    if re.search(r"\b(always|reg|if|case)\b", body):
        raise VerilogFormatError("behavioural Verilog is not supported")
    if re.search(r"\[\s*\d+\s*:\s*\d+\s*\]", body):
        raise VerilogFormatError("vector signals are not supported")

    network = Network(name=name or module_name)
    outputs: list[str] = []

    consumed_spans: list[tuple[int, int]] = []
    for match in _DECL_RE.finditer(body):
        kind, names = match.group(1), match.group(2)
        consumed_spans.append(match.span())
        for signal in (s.strip() for s in names.split(",")):
            if not signal:
                continue
            if kind == "input":
                network.add_input(signal)
            elif kind == "output":
                outputs.append(signal)
            # wires need no declaration in our model

    for match in _ASSIGN_RE.finditer(body):
        target, value = match.group(1), match.group(2)
        consumed_spans.append(match.span())
        network.add_gate(
            target,
            GateType.CONST1 if value == "1" else GateType.CONST0,
            (),
        )

    def inside_consumed(position: int) -> bool:
        return any(start <= position < stop for start, stop in consumed_spans)

    for match in _GATE_RE.finditer(body):
        if inside_consumed(match.start()):
            continue
        keyword, _instance, terminals = match.groups()
        if keyword in ("input", "output", "wire", "assign"):
            continue
        gate_type = _PRIMITIVES.get(keyword.lower())
        if gate_type is None:
            raise VerilogFormatError(
                f"unsupported primitive or submodule {keyword!r}"
            )
        pins = [p.strip() for p in terminals.split(",") if p.strip()]
        if len(pins) < 2:
            raise VerilogFormatError(f"gate {keyword} needs output + inputs")
        output, *inputs = pins
        network.add_gate(output, gate_type, inputs)

    network.set_outputs(outputs)
    return network


def load_verilog(path: str | Path) -> Network:
    """Read a structural Verilog file."""
    path = Path(path)
    return loads_verilog(path.read_text(), name=path.stem)


def dumps_verilog(network: Network) -> str:
    """Serialise a network as structural Verilog."""
    ports = list(network.inputs) + list(network.outputs)
    lines = [f"module {network.name} ({', '.join(ports)});"]
    if network.inputs:
        lines.append(f"  input {', '.join(network.inputs)};")
    if network.outputs:
        lines.append(f"  output {', '.join(network.outputs)};")
    wires = [
        net
        for net in network.nets
        if net not in set(network.inputs) and net not in set(network.outputs)
    ]
    if wires:
        lines.append(f"  wire {', '.join(wires)};")
    index = 0
    for net in network.topological_order():
        gate = network.gate(net)
        gtype = gate.gate_type
        if gtype is GateType.INPUT:
            continue
        if gtype is GateType.CONST0:
            lines.append(f"  assign {net} = 1'b0;")
            continue
        if gtype is GateType.CONST1:
            lines.append(f"  assign {net} = 1'b1;")
            continue
        index += 1
        keyword = gtype.value
        pins = ", ".join((net, *gate.inputs))
        lines.append(f"  {keyword} g{index} ({pins});")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def dump_verilog(network: Network, path: str | Path) -> None:
    """Write a structural Verilog file."""
    Path(path).write_text(dumps_verilog(network))
