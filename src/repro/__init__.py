"""repro — a reproduction of "Why is ATPG Easy?" (Prasad, Chong, Keutzer,
DAC 1999).

The package characterises the practical tractability of automatic test
pattern generation via circuit *cut-width*:

* :mod:`repro.circuits` — Boolean network substrate (gates, netlists,
  decomposition, simulation);
* :mod:`repro.io` — ISCAS85 ``.bench``, BLIF and DIMACS I/O;
* :mod:`repro.sat` — CNF encodings (Figure 2) and four SAT solvers,
  including the paper's caching-based backtracking (Algorithm 1);
* :mod:`repro.atpg` — stuck-at faults, the C_ψ^ATPG miter (Figure 3),
  SAT-based and PODEM test generation, fault simulation;
* :mod:`repro.partition` — FM / multilevel hypergraph bisection (the
  hMETIS stand-in) and exact cut-width DP;
* :mod:`repro.core` — cut-width theory: Definition 4.1, Lemma 4.1/4.2,
  Theorem 4.1, Equation 4.5, log-bounded-width and k-bounded circuits;
* :mod:`repro.bdd` — ROBDDs and the Berman/McMillan width bounds
  (Section 6);
* :mod:`repro.gen` — benchmark stand-in circuit generators;
* :mod:`repro.experiments` — drivers regenerating every figure.

Quickstart::

    from repro.gen import c17
    from repro.circuits import tech_decompose
    from repro.atpg import AtpgEngine

    circuit = tech_decompose(c17())
    summary = AtpgEngine(circuit).run()
    print(summary.fault_coverage)
"""

from repro.atpg import AtpgEngine, Fault
from repro.circuits import Network, NetworkBuilder, tech_decompose
from repro.core import minimum_cutwidth, multi_output_cutwidth
from repro.sat import CnfFormula, circuit_sat_formula, solve_cdcl

__version__ = "1.0.0"

__all__ = [
    "AtpgEngine",
    "CnfFormula",
    "Fault",
    "Network",
    "NetworkBuilder",
    "__version__",
    "circuit_sat_formula",
    "minimum_cutwidth",
    "multi_output_cutwidth",
    "solve_cdcl",
    "tech_decompose",
]
