"""Combinational equivalence checking (CEC) on the ATPG machinery.

The paper's introduction lists verification [3, 17] as a major ATPG-SAT
application: Brand's observation is that checking two implementations of
the same function reduces to the same miter-and-SAT machinery as test
generation.  This module builds the classic CEC miter — the two circuits
side by side, inputs shared, outputs pairwise XOR-ed — and asks SAT for
a distinguishing input.

UNSAT ⇒ equivalent (a proof); SAT ⇒ the model is a counterexample input
vector, which is validated by simulation before being returned.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.circuits.gates import GateType
from repro.circuits.network import Network
from repro.circuits.simulate import simulate_pattern
from repro.sat.cdcl import CdclSolver
from repro.sat.cnf import CnfFormula
from repro.sat.result import SatStatus
from repro.sat.tseitin import circuit_sat_formula


class InterfaceMismatch(ValueError):
    """The two circuits do not share an input/output interface."""


@dataclass
class EquivalenceResult:
    """Outcome of a CEC run."""

    equivalent: bool
    counterexample: Optional[dict[str, int]] = None
    differing_output: Optional[str] = None
    decisions: int = 0
    proven: bool = True  # False when the solver hit a resource limit


def build_cec_miter(
    left: Network, right: Network, name: str = "cec"
) -> Network:
    """The CEC miter of two interface-compatible circuits.

    Left-circuit internal nets keep their names; right-circuit nets are
    prefixed ``r$``; outputs become ``neq$<output>`` XOR nets.

    Raises:
        InterfaceMismatch: if input sets or output lists differ.
    """
    if set(left.inputs) != set(right.inputs):
        raise InterfaceMismatch("primary input sets differ")
    if list(left.outputs) != list(right.outputs):
        raise InterfaceMismatch("primary output lists differ")

    miter = Network(name=name)
    for net in left.topological_order():
        gate = left.gate(net)
        if gate.gate_type is GateType.INPUT:
            miter.add_input(net)
        else:
            miter.add_gate(net, gate.gate_type, gate.inputs)

    def rname(net: str) -> str:
        return net if net in set(right.inputs) else "r$" + net

    for net in right.topological_order():
        gate = right.gate(net)
        if gate.gate_type is GateType.INPUT:
            continue  # shared with the left circuit
        miter.add_gate(
            rname(net), gate.gate_type, [rname(src) for src in gate.inputs]
        )

    xor_outputs = []
    for out in left.outputs:
        net = f"neq${out}"
        miter.add_gate(net, GateType.XOR, [out, rname(out)])
        xor_outputs.append(net)
    miter.set_outputs(xor_outputs)
    return miter


def check_equivalence(
    left: Network,
    right: Network,
    *,
    max_conflicts: Optional[int] = 500_000,
) -> EquivalenceResult:
    """Prove equivalence or produce a validated counterexample.

    Raises:
        InterfaceMismatch: on interface disagreement.
    """
    miter = build_cec_miter(left, right)
    formula: CnfFormula = circuit_sat_formula(miter)
    result = CdclSolver(max_conflicts=max_conflicts).solve(formula)

    if result.status is SatStatus.UNSAT:
        return EquivalenceResult(
            equivalent=True, decisions=result.stats.decisions
        )
    if result.status is SatStatus.UNKNOWN:
        return EquivalenceResult(
            equivalent=False,
            proven=False,
            decisions=result.stats.decisions,
        )

    assert result.assignment is not None
    pattern = {net: result.assignment.get(net, 0) & 1 for net in left.inputs}
    left_values = simulate_pattern(left, pattern)
    right_values = simulate_pattern(right, pattern)
    differing = next(
        (
            out
            for out in left.outputs
            if left_values[out] != right_values[out]
        ),
        None,
    )
    if differing is None:
        raise RuntimeError(
            "SAT model failed simulation cross-check — encoder bug"
        )
    return EquivalenceResult(
        equivalent=False,
        counterexample=pattern,
        differing_output=differing,
        decisions=result.stats.decisions,
    )
