"""Applications built on the ATPG/SAT machinery, mirroring the paper's
motivating uses: verification (equivalence checking) and logic
optimization (redundancy removal)."""

from repro.apps.equivalence import (
    EquivalenceResult,
    InterfaceMismatch,
    build_cec_miter,
    check_equivalence,
)
from repro.apps.redundancy import RedundancyReport, remove_redundancies

__all__ = [
    "EquivalenceResult",
    "InterfaceMismatch",
    "RedundancyReport",
    "build_cec_miter",
    "check_equivalence",
    "remove_redundancies",
]
