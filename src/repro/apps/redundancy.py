"""ATPG-based redundancy removal (logic optimization).

The paper's introduction cites logic optimization [6, 9] as the third
big ATPG application: a stuck-at fault that is *untestable* is, by
definition, a wire whose value never matters — so the wire can be tied
to the stuck constant and the constant swept away, shrinking the
circuit without changing its function.  Iterating to a fixed point is
the classic redundancy-removal loop (Cheng & Entrena's removal phase).

Removals are applied **one at a time**: untestability proofs are valid
only for the circuit they were computed on, and two individually
redundant faults need not be jointly redundant (removing one can make
the other testable).  Every removal is justified by a fresh UNSAT proof
from the ATPG engine, and the whole transformation is re-validated by
simulation in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.atpg.engine import AtpgEngine, FaultStatus
from repro.atpg.faults import Fault, collapse_faults
from repro.circuits.gates import GateType
from repro.circuits.network import Network
from repro.circuits.optimize import sweep


@dataclass
class RedundancyReport:
    """What the optimizer did."""

    removed: list[Fault] = field(default_factory=list)
    passes: int = 0
    gates_before: int = 0
    gates_after: int = 0

    @property
    def gate_reduction(self) -> int:
        return self.gates_before - self.gates_after


def _find_redundancy(
    network: Network, solver: str
) -> Optional[Fault]:
    """The first provably untestable non-PI fault, or None."""
    inputs = set(network.inputs)
    engine = AtpgEngine(network, solver=solver, validate=False)
    constants = (GateType.CONST0, GateType.CONST1)
    for fault in collapse_faults(network):
        if fault.net in inputs:
            # An untestable PI fault means the outputs ignore that input,
            # but tying it would change the circuit interface.
            continue
        if network.gate(fault.net).gate_type in constants:
            # A fault on a constant net matching its value is trivially
            # untestable and re-tying it would loop forever.
            continue
        record = engine.generate_test(fault)
        if record.status is FaultStatus.UNTESTABLE:
            return fault
    return None


def remove_redundancies(
    network: Network,
    *,
    max_removals: Optional[int] = None,
    solver: str = "cdcl",
) -> tuple[Network, RedundancyReport]:
    """Iteratively remove provably redundant stuck-at faults.

    Each pass: find one untestable fault, tie its net to the stuck
    constant, constant-propagate and sweep, then *re-prove* on the new
    circuit.  Stops at a fixed point (no redundancy left) or after
    ``max_removals``.

    Args:
        network: circuit to optimize (unchanged; a copy is returned).
        max_removals: optional cap on removals (None = to fixed point).
        solver: ATPG SAT backend.

    Returns:
        (optimized network, report).  The result is functionally
        equivalent on the primary outputs.
    """
    report = RedundancyReport(gates_before=network.num_gates())
    current = network.copy()

    while max_removals is None or len(report.removed) < max_removals:
        report.passes += 1
        fault = _find_redundancy(current, solver)
        if fault is None:
            break
        constant = GateType.CONST1 if fault.value else GateType.CONST0
        mutated = current.copy()
        mutated.replace_gate(fault.net, constant, ())
        current = sweep(mutated)
        report.removed.append(fault)

    report.gates_after = current.num_gates()
    return current, report
