"""Cross-fault structural clause sharing between per-cone solvers.

Zhen et al. 2023 (*Conflict-driven Structural Learning Towards Higher
Coverage Rate in ATPG*) observe that conflict clauses learned while
targeting one fault transfer to other faults in the same circuit
region: the clauses express structural facts about the good circuit,
not about any particular fault.  Our incremental architecture makes the
sound version of that transfer cheap:

* Each per-cone :class:`~repro.sat.incremental.IncrementalSatSolver`
  base is the good-circuit CNF of the cone's transitive fanin; fault
  miters arrive as activation-guarded deltas.  A learned clause free of
  every activation variable is entailed by the *base alone* (assign all
  activation literals false: every guarded clause is satisfied, so any
  guard-free consequence of the full database is a consequence of the
  base — see :meth:`repro.sat.incremental.IncrementalSatSolver.
  drain_structural`).
* Such a clause is therefore valid in any solver whose base is a
  *superset* of the origin's base.  Bases are canonical (gate clauses of
  the fanin in topological order), so the superset test reduces to a
  fanin-net-set subset test between cones.
* Injection goes through the same activation-group mechanism as fault
  deltas, so injected clauses retire safely and never contaminate
  proofs: certified UNSAT verdicts are re-derived on independent fresh
  cores regardless of what was injected.

The store is deterministic: promotions append to a log in solve order,
each target consumes the log through a cursor, and clause literal
order is canonicalised — two identical runs inject identical clauses
in identical order.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sat.cnf import Literal

#: Canonical shared clause: sorted tuple of named literals.
NamedClause = tuple[Literal, ...]


@dataclass
class SharingStats:
    """Counters for one store's lifetime (one engine run)."""

    promoted: int = 0
    """Structural clauses accepted into the store."""

    injected: int = 0
    """Clause deliveries into sibling cone solvers (one clause landing
    in two cones counts twice)."""

    duplicates: int = 0
    """Promotions dropped because an identical clause was already
    stored."""

    cones: int = 0
    """Cone signatures registered."""

    def as_dict(self) -> dict[str, int]:
        return {
            "promoted": self.promoted,
            "injected": self.injected,
            "duplicates": self.duplicates,
            "cones": self.cones,
        }


@dataclass
class _ConeInfo:
    fanin: frozenset[str]
    cursor: int = 0  # position in the log this cone has consumed
    promoted: int = 0  # clauses this cone contributed (cap accounting)


@dataclass
class StructuralClauseStore:
    """Shared pool of base-entailed learned clauses, keyed by cone.

    ``register_cone`` declares a cone signature (its observing-output
    tuple) with its fanin net set.  ``promote`` appends a cone's
    freshly drained structural clauses to the global log; ``fresh_for``
    returns the log entries a target cone has not seen yet whose origin
    fanin is a subset of the target's fanin (origin base ⊆ target base,
    the soundness condition), excluding the target's own promotions —
    its persistent solver already retains those natively.

    Args:
        per_cone_cap: promotion budget per origin cone; keeps injection
            group sizes (and the assumption overhead per solve) bounded
            on pathological circuits.
    """

    per_cone_cap: int = 256
    stats: SharingStats = field(default_factory=SharingStats)

    def __post_init__(self) -> None:
        self._cones: dict[tuple[str, ...], _ConeInfo] = {}
        #: Append-only: (origin signature, origin fanin, clause).
        self._log: list[
            tuple[tuple[str, ...], frozenset[str], NamedClause]
        ] = []
        self._seen: set[NamedClause] = set()

    def register_cone(
        self, signature: tuple[str, ...], fanin: frozenset[str]
    ) -> None:
        """Declare a cone (idempotent)."""
        if signature not in self._cones:
            self._cones[signature] = _ConeInfo(fanin=frozenset(fanin))
            self.stats.cones += 1

    def promote(
        self,
        signature: tuple[str, ...],
        clauses: list[NamedClause],
    ) -> int:
        """Append ``signature``'s structural clauses to the log.

        Returns the number actually accepted (duplicates and over-cap
        promotions are dropped).
        """
        info = self._cones[signature]
        accepted = 0
        for named in clauses:
            if info.promoted >= self.per_cone_cap:
                break
            if named in self._seen:
                self.stats.duplicates += 1
                continue
            self._seen.add(named)
            self._log.append((signature, info.fanin, named))
            info.promoted += 1
            accepted += 1
        self.stats.promoted += accepted
        return accepted

    def fresh_for(self, signature: tuple[str, ...]) -> list[NamedClause]:
        """Unconsumed applicable clauses for ``signature``'s solver.

        Applicable = promoted by a *different* cone whose fanin is a
        subset of this cone's fanin.  Advances the cone's cursor, so
        each clause is delivered to a given target at most once.
        """
        info = self._cones[signature]
        log = self._log
        if info.cursor >= len(log):
            return []
        fanin = info.fanin
        fresh = [
            named
            for origin, origin_fanin, named in log[info.cursor :]
            if origin != signature and origin_fanin <= fanin
        ]
        info.cursor = len(log)
        self.stats.injected += len(fresh)
        return fresh
