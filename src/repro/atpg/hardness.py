"""Learned fault-hardness prediction for schedule and budget decisions.

The paper's thesis is that ATPG is easy *on average*: runtime is
dominated by a small hard/redundant tail, not by the typical fault.
SCOAP detection cost (:mod:`repro.atpg.scoap`) is the classic static
stand-in for per-fault difficulty, but it is blind to exactly the
mechanism that creates the hard tail — reconvergent masking (a TMR
voter's replica faults get modest finite SCOAP costs yet are provably
untestable).  This module learns a better predictor *offline* from the
per-fault search-effort records the checkpoint journal already collects
(:mod:`repro.atpg.checkpoint`): conflicts, decisions, propagations and
solve time per fault, over corpus runs.

Three consumers, all schedule-only (verdicts never depend on a
prediction — mispredictions cost time, not correctness):

* **Ordering** (``AtpgEngine order="hardness"``): process predicted-easy
  faults first so their patterns fault-drop the hard tail before it is
  ever SAT-solved, and group the predicted-hard tail together so the
  persistent per-cone solvers and the structural clause store attack it
  with maximally warm state.
* **Per-fault conflict budgets** (``budget_policy="predicted"``):
  predicted-easy faults get a tight conflict budget and *escalate* to
  the full budget on exhaustion, so one misprediction costs a bounded
  re-solve instead of stalling a shard at the full 100k-conflict budget.
* **Ladder routing / shard balancing**: predicted-hard faults skip
  solve paths that are empirically doomed for them (see
  :mod:`repro.atpg.certify`), and the parallel engine balances shards by
  predicted cost instead of the SCOAP x cone-size heuristic.

The model is deliberately tiny and dependency-free: gradient-boosted
regression stumps (pure Python, deterministic training given the data
order) over a fixed feature vector, serialised to JSON.  A pre-trained
default model ships with the package (``hardness_model.json``) so
``--order hardness`` works out of the box; :mod:`tools.train_hardness`
retrains it from fresh journal corpora.

Feature extraction is deterministic and invariant under net renaming:
every feature is a count, level, or SCOAP value — nothing depends on
name ordering, hash ordering, or iteration order over sets (property-
tested in ``tests/atpg/test_hardness.py``).
"""

from __future__ import annotations

import json
import math
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from repro.atpg.faults import Fault
from repro.atpg.scoap import INFINITY, ScoapMeasures, compute_scoap
from repro.circuits.gates import GateType
from repro.circuits.network import Network

MODEL_VERSION = 1

#: Where the shipped pre-trained model lives (package data).
DEFAULT_MODEL_PATH = Path(__file__).with_name("hardness_model.json")

#: Finite stand-in for SCOAP infinities inside feature vectors: far
#: beyond any realistic finite cost, with companion indicator features
#: so the model can treat "provably impossible under SCOAP" as its own
#: regime instead of a very large number.
_SCOAP_CAP = 1.0e6

#: Gate types that get a slot in the cone gate-type histogram, in a
#: fixed order (feature identity must not depend on enum iteration).
_HISTOGRAM_TYPES = (
    GateType.AND,
    GateType.OR,
    GateType.NAND,
    GateType.NOR,
    GateType.XOR,
    GateType.XNOR,
    GateType.NOT,
    GateType.BUF,
)

#: The fixed feature vector layout.  Training, prediction, and the JSON
#: model all agree on this order; a mismatch fails loudly at load time.
FEATURE_NAMES: tuple[str, ...] = (
    "stuck_value",
    "cc_excite",
    "cc_excite_inf",
    "co",
    "co_inf",
    "detection_cost",
    "fanout",
    "level",
    "tfo_size",
    "tfo_depth",
    "observing_outputs",
    "tfi_size",
    "reconvergence",
    "reconvergence_frac",
) + tuple(f"cone_{gtype.value}" for gtype in _HISTOGRAM_TYPES)


def _capped(value: float) -> tuple[float, float]:
    """(finite value, infinity indicator) for one SCOAP measure."""
    if value >= INFINITY:
        return _SCOAP_CAP, 1.0
    return float(value), 0.0


class HardnessModelError(ValueError):
    """A hardness model document could not be loaded."""


@dataclass
class HardnessModel:
    """A gradient-boosted-stump regressor over :data:`FEATURE_NAMES`.

    The prediction target is ``log1p(conflicts)`` of the fault's SAT
    search (the journal's deterministic effort currency), so
    ``expm1(score)`` is the predicted conflict count.  Alongside the
    ensemble the model carries the two policy constants its consumers
    need:

    * ``route_threshold`` — scores at or above it classify a fault as
      *hard* (ladder routing, tail grouping); chosen at train time as a
      quantile of the training scores.
    * ``budget_margin`` / ``budget_min`` — the predicted-budget policy
      grants ``margin * predicted_conflicts`` (at least ``budget_min``)
      conflicts before escalating to the full budget.
    """

    feature_names: tuple[str, ...] = FEATURE_NAMES
    base: float = 0.0
    #: Stumps as (feature index, threshold, left value, right value);
    #: rows with ``x[f] <= t`` take the left value.
    trees: list[tuple[int, float, float, float]] = field(default_factory=list)
    route_threshold: float = math.inf
    budget_margin: float = 8.0
    budget_min: int = 256
    meta: dict = field(default_factory=dict)

    def predict(self, features: Sequence[float]) -> float:
        """Predicted ``log1p(conflicts)`` for one feature vector."""
        score = self.base
        for feature, threshold, left, right in self.trees:
            score += left if features[feature] <= threshold else right
        return score

    def predicted_conflicts(self, features: Sequence[float]) -> float:
        """The score mapped back to a conflict count."""
        return math.expm1(max(0.0, self.predict(features)))

    # -- serialisation --------------------------------------------------
    def to_json_dict(self) -> dict:
        return {
            "version": MODEL_VERSION,
            "feature_names": list(self.feature_names),
            "base": self.base,
            "trees": [list(tree) for tree in self.trees],
            "route_threshold": self.route_threshold,
            "budget_margin": self.budget_margin,
            "budget_min": self.budget_min,
            "meta": self.meta,
        }

    def save(self, path: str | Path) -> None:
        from repro.io.atomic import atomic_write_json

        atomic_write_json(path, self.to_json_dict())

    @classmethod
    def from_json_dict(cls, doc: dict) -> "HardnessModel":
        if not isinstance(doc, dict) or doc.get("version") != MODEL_VERSION:
            raise HardnessModelError(
                f"unsupported hardness model version {doc.get('version')!r}"
                if isinstance(doc, dict)
                else "hardness model document must be a JSON object"
            )
        names = tuple(doc.get("feature_names", ()))
        if names != FEATURE_NAMES:
            raise HardnessModelError(
                "hardness model feature layout does not match this build "
                f"(model has {len(names)} features, expected "
                f"{len(FEATURE_NAMES)}) — retrain with tools/train_hardness.py"
            )
        try:
            trees = [
                (int(f), float(t), float(left), float(right))
                for f, t, left, right in doc["trees"]
            ]
            model = cls(
                feature_names=names,
                base=float(doc["base"]),
                trees=trees,
                route_threshold=float(doc["route_threshold"]),
                budget_margin=float(doc["budget_margin"]),
                budget_min=int(doc["budget_min"]),
                meta=dict(doc.get("meta", {})),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise HardnessModelError(f"malformed hardness model: {exc}") from exc
        for feature, _, _, _ in model.trees:
            if not 0 <= feature < len(FEATURE_NAMES):
                raise HardnessModelError(
                    f"stump references feature {feature} outside the layout"
                )
        return model

    @classmethod
    def load(cls, path: str | Path) -> "HardnessModel":
        try:
            doc = json.loads(Path(path).read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise HardnessModelError(
                f"cannot read hardness model {path}: {exc}"
            ) from exc
        return cls.from_json_dict(doc)

    @classmethod
    def default(cls) -> "HardnessModel":
        """The shipped pre-trained model (cached after first load)."""
        global _DEFAULT_MODEL
        if _DEFAULT_MODEL is None:
            _DEFAULT_MODEL = cls.load(DEFAULT_MODEL_PATH)
        return _DEFAULT_MODEL


_DEFAULT_MODEL: Optional[HardnessModel] = None


# ----------------------------------------------------------------------
# Feature extraction
# ----------------------------------------------------------------------
class HardnessExtractor:
    """Deterministic per-fault feature vectors for one network.

    Per-net structural work (cones, reconvergence, histograms) is cached
    and shared by both polarities of a stem; only the SCOAP polarity
    features differ between ``net/sa0`` and ``net/sa1``.
    """

    def __init__(
        self, network: Network, measures: Optional[ScoapMeasures] = None
    ) -> None:
        self.network = network
        self.measures = (
            measures if measures is not None else compute_scoap(network)
        )
        self._levels = network.levels()
        self._outputs = set(network.outputs)
        self._net_cache: dict[str, list[float]] = {}

    def _structural_features(self, net: str) -> list[float]:
        """The polarity-independent tail of the feature vector."""
        cached = self._net_cache.get(net)
        if cached is not None:
            return cached
        network = self.network
        tfo = network.transitive_fanout([net])
        observing = [out for out in tfo if out in self._outputs]
        tfi = network.transitive_fanin(observing) if observing else set()
        level = self._levels[net]
        max_level = max((self._levels[n] for n in tfo), default=level)

        # Reconvergence: gates inside the fanout cone fed by 2+ in-cone
        # nets see the fault on multiple inputs at once — the structural
        # mechanism behind fault masking (and SCOAP's blind spot).
        reconv = 0
        histogram = {gtype: 0 for gtype in _HISTOGRAM_TYPES}
        for cone_net in tfo:
            gate = network.gate(cone_net)
            if gate.gate_type in histogram:
                histogram[gate.gate_type] += 1
            if cone_net != net:
                in_cone = sum(1 for src in gate.inputs if src in tfo)
                if in_cone >= 2:
                    reconv += 1
        cone_gates = max(1, len(tfo))

        features = [
            float(len(network.fanouts(net))),
            float(level),
            float(len(tfo)),
            float(max_level - level),
            float(len(observing)),
            float(len(tfi)),
            float(reconv),
            reconv / cone_gates,
        ] + [float(histogram[gtype]) for gtype in _HISTOGRAM_TYPES]
        self._net_cache[net] = features
        return features

    def features(self, fault: Fault) -> list[float]:
        """The full feature vector for one fault (see FEATURE_NAMES)."""
        measures = self.measures
        cc, cc_inf = _capped(
            measures.controllability(fault.net, 1 - fault.value)
        )
        co, co_inf = _capped(measures.co[fault.net])
        cost, _ = _capped(measures.detection_cost(fault.net, fault.value))
        return [
            float(fault.value),
            cc,
            cc_inf,
            co,
            co_inf,
            cost,
        ] + self._structural_features(fault.net)


# ----------------------------------------------------------------------
# The run-time predictor
# ----------------------------------------------------------------------
class HardnessPredictor:
    """Bind a :class:`HardnessModel` to one network.

    The engine-facing API: scores, ordering, routing, budgets, and shard
    cost weights, all memoised per fault.
    """

    def __init__(
        self,
        network: Network,
        model: Optional[HardnessModel] = None,
        measures: Optional[ScoapMeasures] = None,
    ) -> None:
        self.network = network
        self.model = model if model is not None else HardnessModel.default()
        self.extractor = HardnessExtractor(network, measures=measures)
        self._scores: dict[Fault, float] = {}

    def score(self, fault: Fault) -> float:
        """Predicted ``log1p(conflicts)`` (memoised)."""
        score = self._scores.get(fault)
        if score is None:
            score = self.model.predict(self.extractor.features(fault))
            self._scores[fault] = score
        return score

    def order(self, faults: Iterable[Fault]) -> list[Fault]:
        """Easiest-first by predicted hardness, ties broken on the fault
        itself so the order is deterministic across processes."""
        return sorted(faults, key=lambda f: (self.score(f), f))

    def is_hard(self, fault: Fault) -> bool:
        """True when the fault belongs to the predicted hard tail."""
        return self.score(fault) >= self.model.route_threshold

    def conflicts(self, fault: Fault) -> float:
        """Predicted conflict count (the memoised score, un-logged)."""
        return math.expm1(max(0.0, self.score(fault)))

    def budget(self, fault: Fault, ceiling: Optional[int]) -> Optional[int]:
        """The tight first-attempt conflict budget for ``fault``.

        ``margin * predicted_conflicts``, at least ``budget_min``, never
        above ``ceiling`` (the configured full budget).  Predicted-hard
        faults go straight to the ceiling: a tight budget would only
        delay the full-strength attempt they are known to need.
        """
        if ceiling is not None and ceiling <= self.model.budget_min:
            return ceiling
        if self.is_hard(fault):
            return ceiling
        predicted = self.conflicts(fault)
        tight = max(
            self.model.budget_min,
            int(math.ceil(self.model.budget_margin * (predicted + 1.0))),
        )
        if ceiling is not None:
            tight = min(tight, ceiling)
        return tight

    def cost(self, fault: Fault) -> float:
        """Shard-balancing work estimate (predicted conflicts + 1).

        Replaces the SCOAP x cone-size product in
        :func:`repro.atpg.parallel.shard_faults_by_cone`: the model's
        conflict estimate already folds instance size in through the
        cone features, and unlike SCOAP it prices the redundant tail
        correctly.
        """
        return self.conflicts(fault) + 1.0


# ----------------------------------------------------------------------
# Training (pure, deterministic; used by tools/train_hardness.py)
# ----------------------------------------------------------------------
def hardness_target(record_dict: dict) -> float:
    """The training target for one journal record: log1p(conflicts).

    Conflicts are the solver's deterministic effort currency (identical
    across hosts for the canonical compile order), which keeps training
    data machine-independent; solve_time_s stays in the journal as
    telemetry and for sanity-checking the conflict/time correlation.
    """
    return math.log1p(max(0, int(record_dict.get("conflicts", 0))))


def train_stumps(
    rows: Sequence[Sequence[float]],
    targets: Sequence[float],
    rounds: int = 80,
    learning_rate: float = 0.25,
    max_splits: int = 32,
    route_quantile: float = 0.75,
    budget_margin: float = 8.0,
    budget_min: int = 256,
    meta: Optional[dict] = None,
) -> HardnessModel:
    """Fit a gradient-boosted-stump ensemble by least squares.

    Deterministic given (rows, targets) order: candidate thresholds are
    midpoints between distinct sorted feature values (subsampled evenly
    to ``max_splits``), the best split is chosen by SSE reduction with
    ties broken on (feature index, threshold), and no randomness is
    used anywhere.
    """
    n = len(rows)
    if n == 0 or n != len(targets):
        raise ValueError("training needs matching, non-empty rows/targets")
    num_features = len(FEATURE_NAMES)
    for row in rows:
        if len(row) != num_features:
            raise ValueError(
                f"feature row has {len(row)} values, expected {num_features}"
            )

    base = sum(targets) / n
    predictions = [base] * n
    trees: list[tuple[int, float, float, float]] = []

    # Pre-sort row indices per feature once; every boosting round then
    # scans each feature in sorted order with prefix sums.
    order_by_feature = [
        sorted(range(n), key=lambda i: (rows[i][f], i))
        for f in range(num_features)
    ]
    split_positions_by_feature: list[list[int]] = []
    for f in range(num_features):
        ordered = order_by_feature[f]
        boundaries = [
            k + 1
            for k in range(n - 1)
            if rows[ordered[k]][f] < rows[ordered[k + 1]][f]
        ]
        if len(boundaries) > max_splits:
            stride = len(boundaries) / max_splits
            boundaries = [
                boundaries[int(k * stride)] for k in range(max_splits)
            ]
        split_positions_by_feature.append(boundaries)

    for _ in range(rounds):
        residuals = [targets[i] - predictions[i] for i in range(n)]
        total = sum(residuals)
        best: Optional[tuple[float, int, float, float, float]] = None
        for f in range(num_features):
            boundaries = split_positions_by_feature[f]
            if not boundaries:
                continue
            ordered = order_by_feature[f]
            prefix = 0.0
            boundary_iter = iter(boundaries)
            next_boundary = next(boundary_iter)
            for k in range(n):
                prefix += residuals[ordered[k]]
                if k + 1 != next_boundary:
                    continue
                left_n = k + 1
                right_n = n - left_n
                left_mean = prefix / left_n
                right_mean = (total - prefix) / right_n
                # SSE reduction of this split (up to the constant sum of
                # squared residuals): n_l*m_l^2 + n_r*m_r^2.
                gain = left_n * left_mean**2 + right_n * right_mean**2
                threshold = (
                    rows[ordered[k]][f] + rows[ordered[k + 1]][f]
                ) / 2.0
                candidate = (-gain, f, threshold, left_mean, right_mean)
                if best is None or candidate < best:
                    best = candidate
                next_boundary = next(boundary_iter, None)
                if next_boundary is None:
                    break
        if best is None:
            break
        _, f, threshold, left_mean, right_mean = best
        left = learning_rate * left_mean
        right = learning_rate * right_mean
        trees.append((f, threshold, left, right))
        for i in range(n):
            predictions[i] += left if rows[i][f] <= threshold else right

    scores = sorted(predictions)
    route_index = min(n - 1, max(0, int(route_quantile * (n - 1))))
    model = HardnessModel(
        base=base,
        trees=trees,
        route_threshold=scores[route_index],
        budget_margin=budget_margin,
        budget_min=budget_min,
        meta=dict(meta or {}),
    )
    return model


def ordering_quality(
    scores: Sequence[float], targets: Sequence[float]
) -> float:
    """How much of the achievable "hard last" mass an ordering captures.

    Sort faults by predicted score ascending and sum ``rank * target``:
    an ordering that puts expensive faults late scores high.  Normalised
    to [0, 1] between the worst (hard first) and best (hard last)
    orderings, so 0.5 is the expected value of a random shuffle — the
    trained model must beat that on held-out data (asserted by
    ``tools/train_hardness.py`` and the CI train smoke).
    """
    n = len(scores)
    if n != len(targets) or n == 0:
        raise ValueError("scores/targets must be non-empty and aligned")
    by_score = sorted(range(n), key=lambda i: (scores[i], i))
    achieved = sum(
        rank * targets[index] for rank, index in enumerate(by_score)
    )
    ordered_targets = sorted(targets)
    best = sum(rank * t for rank, t in enumerate(ordered_targets))
    worst = sum(
        (n - 1 - rank) * t for rank, t in enumerate(ordered_targets)
    )
    if best == worst:
        # Uniform targets: every ordering is equally good, which must
        # not read as "beats random" — report exactly the random value.
        return 0.5
    return (achieved - worst) / (best - worst)
