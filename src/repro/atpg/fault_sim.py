"""Parallel-pattern single-fault simulation.

Used to validate SAT-generated test patterns, to implement fault dropping
in the ATPG engine, and to measure fault coverage of pattern sets.  The
simulator packs an arbitrary number of patterns per Python integer word
(Python ints are unbounded, so the block width is a tuning knob, not a
machine-word limit) and, for each fault, re-evaluates only the fault's
fanout cone against cached good values (the standard single-fault
propagation optimisation).

The hot paths run through :class:`FaultSimulator`, which caches a
levelized evaluation schedule per fault site: the cone's gates in
topological order with their opcodes and fanins resolved once, so
simulating the same fault against another pattern block is a flat loop
with no membership tests against the full topological order and no
per-gate function-call dispatch.
"""

from __future__ import annotations

import random
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

from repro.atpg.faults import Fault
from repro.circuits.gates import GateType, evaluate_gate
from repro.circuits.network import Network
from repro.circuits.simulate import pack_patterns, simulate

#: Opcodes for the schedule's inline evaluator.  AND/OR/XOR of masked
#: words stay masked; the inverting variants complement via ``^ mask``.
_OP_AND, _OP_OR, _OP_XOR, _OP_NAND, _OP_NOR, _OP_XNOR, _OP_BUF, _OP_NOT = (
    range(8)
)

_OPCODES = {
    GateType.AND: _OP_AND,
    GateType.OR: _OP_OR,
    GateType.XOR: _OP_XOR,
    GateType.NAND: _OP_NAND,
    GateType.NOR: _OP_NOR,
    GateType.XNOR: _OP_XNOR,
    GateType.BUF: _OP_BUF,
    GateType.NOT: _OP_NOT,
}


@dataclass
class FaultSimResult:
    """Outcome of simulating a pattern block against a fault list."""

    detected: dict[Fault, int] = field(default_factory=dict)
    """Detected faults → bitmask of detecting patterns."""

    undetected: list[Fault] = field(default_factory=list)

    @property
    def coverage(self) -> float:
        """Fraction of simulated faults detected."""
        total = len(self.detected) + len(self.undetected)
        return len(self.detected) / total if total else 1.0


class FaultSimulator:
    """Cone simulator with per-fault-site levelized schedules.

    The schedule for a fault site is the site's transitive fanout in
    topological order, each gate pre-resolved to an (output net, opcode,
    fanin nets) triple.  Schedules are cached per site and reused for
    every pattern block, so repeated simulation of the same fault (the
    pattern-store dropping pass) costs one flat loop over the cone —
    width-agnostic: the good/faulty values are plain Python ints of any
    bit width, bounded by the caller's valid-pattern ``mask``.

    The cache keys off the network's topological-order cache identity,
    so mutating the network invalidates all schedules automatically.
    """

    def __init__(self, network: Network) -> None:
        self.network = network
        self._topo_ref: object = None
        self._positions: dict[str, int] = {}
        #: site -> (schedule triples, cone output nets, cone set)
        self._schedules: dict[
            str,
            tuple[
                list[tuple[str, int, tuple[str, ...]]],
                list[str],
                set[str],
            ],
        ] = {}

    def _refresh(self) -> None:
        """Drop cached schedules if the network mutated since last use."""
        topo = self.network._cache_topo
        if topo is None:
            self.network.topological_order()
            topo = self.network._cache_topo
        if topo is not self._topo_ref:
            self._topo_ref = topo
            self._positions = {net: i for i, net in enumerate(topo)}
            self._schedules.clear()

    def schedule(
        self, site: str
    ) -> tuple[
        list[tuple[str, int, tuple[str, ...]]], list[str], set[str]
    ]:
        """The levelized evaluation schedule for a fault on ``site``."""
        self._refresh()
        entry = self._schedules.get(site)
        if entry is None:
            network = self.network
            cone = network.transitive_fanout([site])
            positions = self._positions
            order = sorted(
                (net for net in cone if net != site),
                key=positions.__getitem__,
            )
            triples: list[tuple[str, int, tuple[str, ...]]] = []
            for net in order:
                gate = network.gate(net)
                triples.append(
                    (net, _OPCODES[gate.gate_type], tuple(gate.inputs))
                )
            outputs = [out for out in network.outputs if out in cone]
            entry = (triples, outputs, cone)
            self._schedules[site] = entry
        return entry

    def detect_mask(
        self, fault: Fault, good_values: Mapping[str, int], mask: int
    ) -> int:
        """Bitmask of patterns for which ``fault`` reaches an output.

        ``good_values`` holds the fault-free packed words per net for a
        block of patterns; ``mask`` is the block's valid-pattern mask.
        """
        stuck_word = mask if fault.value else 0
        if good_values[fault.net] == stuck_word:
            return 0  # fault never excited by these patterns
        triples, outputs, _cone = self.schedule(fault.net)
        faulty: dict[str, int] = {fault.net: stuck_word}
        fget = faulty.get
        good = good_values
        for net, op, srcs in triples:
            if op == _OP_AND or op == _OP_NAND:
                acc = mask
                for src in srcs:
                    word = fget(src)
                    acc &= good[src] if word is None else word
            elif op == _OP_OR or op == _OP_NOR:
                acc = 0
                for src in srcs:
                    word = fget(src)
                    acc |= good[src] if word is None else word
            elif op == _OP_XOR or op == _OP_XNOR:
                acc = 0
                for src in srcs:
                    word = fget(src)
                    acc ^= good[src] if word is None else word
            else:  # BUF / NOT
                src = srcs[0]
                word = fget(src)
                acc = good[src] if word is None else word
            if op >= _OP_NAND and op != _OP_BUF:  # NAND/NOR/XNOR/NOT
                acc ^= mask
            faulty[net] = acc
        detected = 0
        for out in outputs:
            detected |= faulty[out] ^ good[out]
        return detected & mask


def simulate_fault(
    network: Network,
    fault: Fault,
    good_values: Mapping[str, int],
    mask: int,
    cone: set[str] | None = None,
) -> int:
    """Bitmask of patterns for which ``fault`` is observable at an output.

    One-shot readable reference path (walks the full topological order);
    callers simulating many blocks or many faults should go through
    :class:`FaultSimulator` / :func:`fault_simulate`, which cache the
    cone schedules.

    Args:
        network: the good circuit.
        fault: the fault to inject.
        good_values: fault-free values per net (packed words).
        mask: valid-pattern mask.
        cone: optional precomputed transitive fanout of the fault site
            (callers simulating a fault against many pattern blocks cache
            this — recomputing it dominates small-cone simulations).
    """
    stuck_word = mask if fault.value else 0
    if good_values[fault.net] == stuck_word:
        return 0  # fault never excited by these patterns

    if cone is None:
        cone = network.transitive_fanout([fault.net])
    faulty: dict[str, int] = {fault.net: stuck_word}
    for net in network.topological_order():
        if net not in cone or net == fault.net:
            continue
        gate = network.gate(net)
        words = [
            faulty.get(src, good_values[src]) for src in gate.inputs
        ]
        faulty[net] = evaluate_gate(gate.gate_type, words) & mask

    detected = 0
    for out in network.outputs:
        if out in faulty:
            detected |= (faulty[out] ^ good_values[out]) & mask
    return detected


def fault_simulate(
    network: Network,
    faults: Sequence[Fault],
    patterns: Sequence[Mapping[str, int]],
    block_size: int = 64,
) -> FaultSimResult:
    """Simulate single-bit ``patterns`` against ``faults``.

    Patterns are packed ``block_size`` per word; detected faults are
    dropped from later blocks.  Any positive width is valid — Python
    ints carry the block, so wider blocks trade per-block overhead for
    bigger bit-parallel words.
    """
    if block_size < 1:
        raise ValueError(f"block_size must be >= 1, got {block_size}")
    result = FaultSimResult()
    for fault in faults:
        if not network.has_net(fault.net):
            raise ValueError(f"fault on unknown net {fault.net!r}")
    simulator = FaultSimulator(network)
    remaining = list(faults)
    for start in range(0, len(patterns), block_size):
        block = patterns[start : start + block_size]
        words = pack_patterns(block, network.inputs)
        mask = (1 << len(block)) - 1
        good_values = simulate(network, words, len(block))
        still: list[Fault] = []
        for fault in remaining:
            hits = simulator.detect_mask(fault, good_values, mask)
            if hits:
                result.detected[fault] = hits << start
            else:
                still.append(fault)
        remaining = still
    result.undetected = remaining
    return result


class PatternBlockStore:
    """Generated tests packed into parallel blocks for batched dropping.

    The engine's original dropping pass fault-simulated every remaining
    fault against each fresh test — one 1-wide simulation block per test,
    with a full good-circuit simulation and a cone simulation per
    remaining fault each time.  The store instead accumulates tests into
    ``block_size``-wide packed blocks whose good-circuit values are
    computed once and cached; asking whether a fault is already covered
    (:meth:`first_detection`) costs one fanout-cone simulation per
    *block* of patterns rather than one per pattern, and full-circuit
    good simulations happen once per block instead of once per test.

    Blocks are append-only, so detection answers are stable: the earliest
    detecting pattern index returned for a fault never changes as more
    patterns arrive, which is what makes the parallel engine's replay
    merge reproduce the sequential engine's drop attribution exactly.
    """

    def __init__(
        self, network: Network, block_size: int = 64
    ) -> None:
        if block_size < 1:
            raise ValueError("block_size must be >= 1")
        self.network = network
        self.block_size = block_size
        self.simulator = FaultSimulator(network)
        self._patterns: list[dict[str, int]] = []
        #: Closed blocks: (good value word per net, valid-pattern mask).
        self._closed: list[tuple[dict[str, int], int]] = []
        self._pending_good: tuple[dict[str, int], int] | None = None
        self.good_sims = 0
        self.cone_sims = 0

    def __len__(self) -> int:
        return len(self._patterns)

    def pattern(self, index: int) -> dict[str, int]:
        """The ``index``-th added pattern."""
        return self._patterns[index]

    @property
    def patterns(self) -> list[dict[str, int]]:
        """All stored patterns, in insertion order."""
        return list(self._patterns)

    def add(self, pattern: Mapping[str, int]) -> None:
        """Append a test pattern, closing the current block when full."""
        self._patterns.append(dict(pattern))
        self._pending_good = None
        if len(self._patterns) == (len(self._closed) + 1) * self.block_size:
            block = self._patterns[-self.block_size :]
            self._closed.append(self._simulate_block(block))

    def _simulate_block(
        self, block: Sequence[Mapping[str, int]]
    ) -> tuple[dict[str, int], int]:
        words = pack_patterns(block, self.network.inputs)
        mask = (1 << len(block)) - 1
        self.good_sims += 1
        return simulate(self.network, words, len(block)), mask

    def first_detection(
        self, fault: Fault, cone: set[str] | None = None
    ) -> int | None:
        """Index of the earliest stored pattern detecting ``fault``.

        Returns ``None`` if no stored pattern detects it.  ``cone`` is
        accepted for API compatibility; the store's simulator caches
        cone schedules itself.
        """
        if not self._patterns:
            return None
        detect = self.simulator.detect_mask
        for index, (good_values, mask) in enumerate(self._closed):
            self.cone_sims += 1
            hits = detect(fault, good_values, mask)
            if hits:
                return index * self.block_size + _lowest_bit(hits)
        pending = self._patterns[len(self._closed) * self.block_size :]
        if pending:
            if self._pending_good is None:
                self._pending_good = self._simulate_block(pending)
            good_values, mask = self._pending_good
            self.cone_sims += 1
            hits = detect(fault, good_values, mask)
            if hits:
                return len(self._closed) * self.block_size + _lowest_bit(hits)
        return None


def _lowest_bit(word: int) -> int:
    """Position of the least-significant set bit of a nonzero word."""
    return (word & -word).bit_length() - 1


def pattern_detects(
    network: Network, fault: Fault, pattern: Mapping[str, int]
) -> bool:
    """True iff the single ``pattern`` detects ``fault``."""
    outcome = fault_simulate(network, [fault], [pattern])
    return fault in outcome.detected


def random_pattern_coverage(
    network: Network,
    faults: Sequence[Fault],
    n_patterns: int,
    seed: int = 0,
    block_size: int = 64,
) -> FaultSimResult:
    """Coverage of ``n_patterns`` uniform random patterns."""
    rng = random.Random(seed)
    patterns = [
        {net: rng.getrandbits(1) for net in network.inputs}
        for _ in range(n_patterns)
    ]
    return fault_simulate(network, faults, patterns, block_size=block_size)
