"""Parallel-pattern single-fault simulation.

Used to validate SAT-generated test patterns, to implement fault dropping
in the ATPG engine, and to measure fault coverage of pattern sets.  The
simulator packs up to 64 patterns per Python integer word and, for each
fault, re-evaluates only the fault's fanout cone against cached good
values (the standard single-fault propagation optimisation).
"""

from __future__ import annotations

import random
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

from repro.atpg.faults import Fault
from repro.circuits.gates import evaluate_gate
from repro.circuits.network import Network
from repro.circuits.simulate import pack_patterns, simulate


@dataclass
class FaultSimResult:
    """Outcome of simulating a pattern block against a fault list."""

    detected: dict[Fault, int] = field(default_factory=dict)
    """Detected faults → bitmask of detecting patterns."""

    undetected: list[Fault] = field(default_factory=list)

    @property
    def coverage(self) -> float:
        """Fraction of simulated faults detected."""
        total = len(self.detected) + len(self.undetected)
        return len(self.detected) / total if total else 1.0


def simulate_fault(
    network: Network,
    fault: Fault,
    good_values: Mapping[str, int],
    mask: int,
) -> int:
    """Bitmask of patterns for which ``fault`` is observable at an output.

    Args:
        network: the good circuit.
        fault: the fault to inject.
        good_values: fault-free values per net (packed words).
        mask: valid-pattern mask.
    """
    stuck_word = mask if fault.value else 0
    if good_values[fault.net] == stuck_word:
        return 0  # fault never excited by these patterns

    cone = network.transitive_fanout([fault.net])
    faulty: dict[str, int] = {fault.net: stuck_word}
    for net in network.topological_order():
        if net not in cone or net == fault.net:
            continue
        gate = network.gate(net)
        words = [
            faulty.get(src, good_values[src]) for src in gate.inputs
        ]
        faulty[net] = evaluate_gate(gate.gate_type, words) & mask

    detected = 0
    for out in network.outputs:
        if out in faulty:
            detected |= (faulty[out] ^ good_values[out]) & mask
    return detected


def fault_simulate(
    network: Network,
    faults: Sequence[Fault],
    patterns: Sequence[Mapping[str, int]],
) -> FaultSimResult:
    """Simulate single-bit ``patterns`` against ``faults`` in 64-wide blocks."""
    result = FaultSimResult()
    remaining = list(faults)
    block_size = 64
    for start in range(0, len(patterns), block_size):
        block = patterns[start : start + block_size]
        words = pack_patterns(block, network.inputs)
        mask = (1 << len(block)) - 1
        good_values = simulate(network, words, len(block))
        still: list[Fault] = []
        for fault in remaining:
            if not network.has_net(fault.net):
                raise ValueError(f"fault on unknown net {fault.net!r}")
            hits = simulate_fault(network, fault, good_values, mask)
            if hits:
                shifted = 0
                bit = hits
                index = 0
                while bit:
                    if bit & 1:
                        shifted |= 1 << (start + index)
                    bit >>= 1
                    index += 1
                result.detected[fault] = shifted
            else:
                still.append(fault)
        remaining = still
    result.undetected = remaining
    return result


def pattern_detects(
    network: Network, fault: Fault, pattern: Mapping[str, int]
) -> bool:
    """True iff the single ``pattern`` detects ``fault``."""
    outcome = fault_simulate(network, [fault], [pattern])
    return fault in outcome.detected


def random_pattern_coverage(
    network: Network,
    faults: Sequence[Fault],
    n_patterns: int,
    seed: int = 0,
) -> FaultSimResult:
    """Coverage of ``n_patterns`` uniform random patterns."""
    rng = random.Random(seed)
    patterns = [
        {net: rng.getrandbits(1) for net in network.inputs}
        for _ in range(n_patterns)
    ]
    return fault_simulate(network, faults, patterns)
