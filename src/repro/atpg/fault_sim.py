"""Parallel-pattern single-fault simulation.

Used to validate SAT-generated test patterns, to implement fault dropping
in the ATPG engine, and to measure fault coverage of pattern sets.  The
simulator packs up to 64 patterns per Python integer word and, for each
fault, re-evaluates only the fault's fanout cone against cached good
values (the standard single-fault propagation optimisation).
"""

from __future__ import annotations

import random
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

from repro.atpg.faults import Fault
from repro.circuits.gates import evaluate_gate
from repro.circuits.network import Network
from repro.circuits.simulate import pack_patterns, simulate


@dataclass
class FaultSimResult:
    """Outcome of simulating a pattern block against a fault list."""

    detected: dict[Fault, int] = field(default_factory=dict)
    """Detected faults → bitmask of detecting patterns."""

    undetected: list[Fault] = field(default_factory=list)

    @property
    def coverage(self) -> float:
        """Fraction of simulated faults detected."""
        total = len(self.detected) + len(self.undetected)
        return len(self.detected) / total if total else 1.0


def simulate_fault(
    network: Network,
    fault: Fault,
    good_values: Mapping[str, int],
    mask: int,
    cone: set[str] | None = None,
) -> int:
    """Bitmask of patterns for which ``fault`` is observable at an output.

    Args:
        network: the good circuit.
        fault: the fault to inject.
        good_values: fault-free values per net (packed words).
        mask: valid-pattern mask.
        cone: optional precomputed transitive fanout of the fault site
            (callers simulating a fault against many pattern blocks cache
            this — recomputing it dominates small-cone simulations).
    """
    stuck_word = mask if fault.value else 0
    if good_values[fault.net] == stuck_word:
        return 0  # fault never excited by these patterns

    if cone is None:
        cone = network.transitive_fanout([fault.net])
    faulty: dict[str, int] = {fault.net: stuck_word}
    for net in network.topological_order():
        if net not in cone or net == fault.net:
            continue
        gate = network.gate(net)
        words = [
            faulty.get(src, good_values[src]) for src in gate.inputs
        ]
        faulty[net] = evaluate_gate(gate.gate_type, words) & mask

    detected = 0
    for out in network.outputs:
        if out in faulty:
            detected |= (faulty[out] ^ good_values[out]) & mask
    return detected


def fault_simulate(
    network: Network,
    faults: Sequence[Fault],
    patterns: Sequence[Mapping[str, int]],
) -> FaultSimResult:
    """Simulate single-bit ``patterns`` against ``faults`` in 64-wide blocks."""
    result = FaultSimResult()
    remaining = list(faults)
    block_size = 64
    for start in range(0, len(patterns), block_size):
        block = patterns[start : start + block_size]
        words = pack_patterns(block, network.inputs)
        mask = (1 << len(block)) - 1
        good_values = simulate(network, words, len(block))
        still: list[Fault] = []
        for fault in remaining:
            if not network.has_net(fault.net):
                raise ValueError(f"fault on unknown net {fault.net!r}")
            hits = simulate_fault(network, fault, good_values, mask)
            if hits:
                shifted = 0
                bit = hits
                index = 0
                while bit:
                    if bit & 1:
                        shifted |= 1 << (start + index)
                    bit >>= 1
                    index += 1
                result.detected[fault] = shifted
            else:
                still.append(fault)
        remaining = still
    result.undetected = remaining
    return result


class PatternBlockStore:
    """Generated tests packed into parallel blocks for batched dropping.

    The engine's original dropping pass fault-simulated every remaining
    fault against each fresh test — one 1-wide simulation block per test,
    with a full good-circuit simulation and a cone simulation per
    remaining fault each time.  The store instead accumulates tests into
    ``block_size``-wide packed blocks whose good-circuit values are
    computed once and cached; asking whether a fault is already covered
    (:meth:`first_detection`) costs one fanout-cone simulation per
    *block* of patterns rather than one per pattern, and full-circuit
    good simulations happen once per block instead of once per test.

    Blocks are append-only, so detection answers are stable: the earliest
    detecting pattern index returned for a fault never changes as more
    patterns arrive, which is what makes the parallel engine's replay
    merge reproduce the sequential engine's drop attribution exactly.
    """

    def __init__(
        self, network: Network, block_size: int = 64
    ) -> None:
        if block_size < 1:
            raise ValueError("block_size must be >= 1")
        self.network = network
        self.block_size = block_size
        self._patterns: list[dict[str, int]] = []
        #: Closed blocks: (good value word per net, valid-pattern mask).
        self._closed: list[tuple[dict[str, int], int]] = []
        self._pending_good: tuple[dict[str, int], int] | None = None
        self.good_sims = 0
        self.cone_sims = 0

    def __len__(self) -> int:
        return len(self._patterns)

    def pattern(self, index: int) -> dict[str, int]:
        """The ``index``-th added pattern."""
        return self._patterns[index]

    @property
    def patterns(self) -> list[dict[str, int]]:
        """All stored patterns, in insertion order."""
        return list(self._patterns)

    def add(self, pattern: Mapping[str, int]) -> None:
        """Append a test pattern, closing the current block when full."""
        self._patterns.append(dict(pattern))
        self._pending_good = None
        if len(self._patterns) == (len(self._closed) + 1) * self.block_size:
            block = self._patterns[-self.block_size :]
            self._closed.append(self._simulate_block(block))

    def _simulate_block(
        self, block: Sequence[Mapping[str, int]]
    ) -> tuple[dict[str, int], int]:
        words = pack_patterns(block, self.network.inputs)
        mask = (1 << len(block)) - 1
        self.good_sims += 1
        return simulate(self.network, words, len(block)), mask

    def first_detection(
        self, fault: Fault, cone: set[str] | None = None
    ) -> int | None:
        """Index of the earliest stored pattern detecting ``fault``.

        Returns ``None`` if no stored pattern detects it.  ``cone`` is
        the (optionally precomputed) transitive fanout of the fault site.
        """
        if not self._patterns:
            return None
        if cone is None:
            cone = self.network.transitive_fanout([fault.net])
        for index, (good_values, mask) in enumerate(self._closed):
            self.cone_sims += 1
            hits = simulate_fault(self.network, fault, good_values, mask, cone)
            if hits:
                return index * self.block_size + _lowest_bit(hits)
        pending = self._patterns[len(self._closed) * self.block_size :]
        if pending:
            if self._pending_good is None:
                self._pending_good = self._simulate_block(pending)
            good_values, mask = self._pending_good
            self.cone_sims += 1
            hits = simulate_fault(self.network, fault, good_values, mask, cone)
            if hits:
                return len(self._closed) * self.block_size + _lowest_bit(hits)
        return None


def _lowest_bit(word: int) -> int:
    """Position of the least-significant set bit of a nonzero word."""
    return (word & -word).bit_length() - 1


def pattern_detects(
    network: Network, fault: Fault, pattern: Mapping[str, int]
) -> bool:
    """True iff the single ``pattern`` detects ``fault``."""
    outcome = fault_simulate(network, [fault], [pattern])
    return fault in outcome.detected


def random_pattern_coverage(
    network: Network,
    faults: Sequence[Fault],
    n_patterns: int,
    seed: int = 0,
) -> FaultSimResult:
    """Coverage of ``n_patterns`` uniform random patterns."""
    rng = random.Random(seed)
    patterns = [
        {net: rng.getrandbits(1) for net in network.inputs}
        for _ in range(n_patterns)
    ]
    return fault_simulate(network, faults, patterns)
