"""Parallel-pattern single-fault simulation.

Used to validate SAT-generated test patterns, to implement fault dropping
in the ATPG engine, and to measure fault coverage of pattern sets.  The
simulator packs an arbitrary number of patterns per Python integer word
(Python ints are unbounded, so the block width is a tuning knob, not a
machine-word limit) and, for each fault, re-evaluates only the fault's
fanout cone against cached good values (the standard single-fault
propagation optimisation).

The hot paths run through :class:`FaultSimulator`, which *compiles* a
levelized evaluation schedule per fault site: the cone's gates in
topological order are lowered once into ``(op, dst_slot, src_slots)``
records over a dense local slot space, evaluated by a single
interpreter loop against a preallocated word buffer.  Inside the loop
a fanin read is one buffer index — no per-net dict hashing, no
faulty-vs-good membership probe (whether a fanin is inside the cone is
static, so the compiler resolves it to a slot at compile time).  A
fully flat ``array('q')`` opcode/operand stream was measured first and
is *slower* in CPython — every operand fetch from a typed array boxes
a fresh int (values >= 256 miss the small-int cache), and the
record-header decode costs more than tuple iteration — so the program
keeps tuple records whose operands are cached pointer reads.  The
program, slot buffer, and boundary-load list are cached per fault
site, so simulating the same fault against another pattern block — or
the complementary stuck-at fault of the same site against the same
block — reuses the compiled cone; the boundary good-value loads are
additionally skipped when the same good-value block is probed again
(both stuck-at polarities of a site, pattern-store sweeps).
"""

from __future__ import annotations

import random
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

from repro.atpg.faults import Fault
from repro.circuits.gates import GateType, evaluate_gate
from repro.circuits.network import Network
from repro.circuits.simulate import pack_patterns, simulate

#: Opcodes for the schedule's inline evaluator.  AND/OR/XOR of masked
#: words stay masked; the inverting variants complement via ``^ mask``.
_OP_AND, _OP_OR, _OP_XOR, _OP_NAND, _OP_NOR, _OP_XNOR, _OP_BUF, _OP_NOT = (
    range(8)
)

#: Probes of a fault site before its cone tiers up from the record
#: interpreter to a generated straight-line function (the ``compile``
#: cost only pays for itself on repeat probes).
_TIER_UP_HITS = 2

_OPCODES = {
    GateType.AND: _OP_AND,
    GateType.OR: _OP_OR,
    GateType.XOR: _OP_XOR,
    GateType.NAND: _OP_NAND,
    GateType.NOR: _OP_NOR,
    GateType.XNOR: _OP_XNOR,
    GateType.BUF: _OP_BUF,
    GateType.NOT: _OP_NOT,
}


@dataclass
class FaultSimResult:
    """Outcome of simulating a pattern block against a fault list."""

    detected: dict[Fault, int] = field(default_factory=dict)
    """Detected faults → bitmask of detecting patterns."""

    undetected: list[Fault] = field(default_factory=list)

    @property
    def coverage(self) -> float:
        """Fraction of simulated faults detected."""
        total = len(self.detected) + len(self.undetected)
        return len(self.detected) / total if total else 1.0


class _CompiledCone:
    """A fault site's fanout cone lowered to a slot program.

    ``prog`` holds one ``(op, dst_slot, src_slots)`` record per cone
    gate in topological order, all net names resolved to dense local
    slot indices at compile time (see the module docstring for why the
    records are tuples rather than a flat typed-array stream).
    ``loads`` lists ``(slot, topo_pos)`` pairs whose slots hold
    fault-free words — cone-boundary fanins plus one shadow slot per
    cone output (for the detection XOR) — read from the simulator's
    per-block topo-indexed good-value list, so a load is two list
    indexes, not a dict probe; ``buf`` is the preallocated word buffer
    the interpreter runs over (Python ints, so any block width works).
    ``last_good`` stamps the good-value mapping most recently loaded:
    probing the same block again (e.g. the complementary stuck-at
    polarity of this site) skips the boundary reloads entirely.
    """

    __slots__ = (
        "prog",
        "loads",
        "out_pairs",
        "site_slot",
        "buf",
        "n_gates",
        "n_word_ops",
        "last_good",
        "hits",
        "fn",
    )

    def __init__(
        self,
        prog: list[tuple[int, int, tuple[int, ...]]],
        loads: list[tuple[int, int]],
        out_pairs: list[tuple[int, int]],
        site_slot: int,
        n_slots: int,
        n_gates: int,
        n_word_ops: int,
    ) -> None:
        self.prog = prog
        self.loads = loads
        self.out_pairs = out_pairs
        self.site_slot = site_slot
        self.buf: list[int] = [0] * n_slots
        self.n_gates = n_gates
        self.n_word_ops = n_word_ops
        self.last_good: object = None
        #: Probe count; at :data:`_TIER_UP_HITS` the cone tiers up from
        #: the record interpreter to a generated straight-line function.
        self.hits = 0
        self.fn: object = None

    def codegen(self) -> object:
        """Lower the slot program to a straight-line Python function.

        Emits one assignment per cone gate (operands are local names
        or topo-indexed reads from the good-value list ``G``) plus a
        final detection OR, and ``exec``-compiles it.  Straight-line
        locals-based code drops the per-gate dispatch and per-fanin
        buffer indexing of the interpreter entirely; the one-time
        ``compile`` cost is why tier-up waits for repeat probes.
        Operand text is built from compile-time ints only — no net
        names reach the generated source.
        """
        pos_of = dict(self.loads)  # load slot -> topo position
        names = {self.site_slot: "stuck"}
        for slot, pos in self.loads:
            names[slot] = f"G[{pos}]"
        lines = ["def _cone(G, stuck, m):"]
        for op, dst, srcs in self.prog:
            terms = [names[s] for s in srcs]
            if op == _OP_AND:
                rhs = " & ".join(terms)
            elif op == _OP_NAND:
                rhs = "m ^ ({})".format(" & ".join(terms))
            elif op == _OP_OR:
                rhs = " | ".join(terms)
            elif op == _OP_NOR:
                rhs = "m ^ ({})".format(" | ".join(terms))
            elif op == _OP_XOR:
                rhs = " ^ ".join(terms)
            elif op == _OP_XNOR:
                rhs = "m ^ ({})".format(" ^ ".join(terms))
            elif op == _OP_BUF:
                rhs = terms[0]
            else:  # NOT
                rhs = f"m ^ {terms[0]}"
            name = names[dst] = f"v{dst}"
            lines.append(f"    {name} = {rhs}")
        if self.out_pairs:
            detect = " | ".join(
                f"({names[fs]} ^ G[{pos_of[gs]}])"
                for fs, gs in self.out_pairs
            )
        else:
            detect = "0"
        lines.append(f"    return {detect}")
        namespace: dict[str, object] = {}
        exec(  # noqa: S102 - source built from compile-time ints only
            compile("\n".join(lines), "<fsim-cone>", "exec"), namespace
        )
        return namespace["_cone"]


class FaultSimulator:
    """Cone simulator with per-fault-site compiled schedules.

    The schedule for a fault site is the site's transitive fanout in
    topological order, compiled once into a :class:`_CompiledCone`
    (see the module docstring) and reused for every pattern block —
    width-agnostic: the good/faulty values are plain Python ints of
    any bit width, bounded by the caller's valid-pattern ``mask``.

    The cache keys off the network's topological-order cache identity,
    so mutating the network invalidates all schedules automatically.

    Attributes:
        gate_evals: cone gate evaluations performed (one per program
            record interpreted) — a machine-independent work counter.
        word_ops: packed-word operations performed (one per fanin
            fold plus one per complement) — the numerator of the
            bench-suite's words-per-second throughput metric.
    """

    def __init__(self, network: Network) -> None:
        self.network = network
        self._topo_ref: object = None
        self._positions: dict[str, int] = {}
        #: site -> (schedule triples, cone output nets, cone set)
        self._schedules: dict[
            str,
            tuple[
                list[tuple[str, int, tuple[str, ...]]],
                list[str],
                set[str],
            ],
        ] = {}
        self._compiled: dict[str, _CompiledCone] = {}
        #: Identity-keyed single-entry cache: the last good-value
        #: mapping seen, flattened to a topo-position-indexed list.
        self._good_cache: tuple[object, list[int]] | None = None
        self.gate_evals = 0
        self.word_ops = 0

    def _refresh(self) -> None:
        """Drop cached schedules if the network mutated since last use."""
        topo = self.network._cache_topo
        if topo is None:
            self.network.topological_order()
            topo = self.network._cache_topo
        if topo is not self._topo_ref:
            self._topo_ref = topo
            self._positions = {net: i for i, net in enumerate(topo)}
            self._schedules.clear()
            self._compiled.clear()
            self._good_cache = None

    def schedule(
        self, site: str
    ) -> tuple[
        list[tuple[str, int, tuple[str, ...]]], list[str], set[str]
    ]:
        """The levelized evaluation schedule for a fault on ``site``."""
        self._refresh()
        entry = self._schedules.get(site)
        if entry is None:
            network = self.network
            cone = network.transitive_fanout([site])
            positions = self._positions
            order = sorted(
                (net for net in cone if net != site),
                key=positions.__getitem__,
            )
            triples: list[tuple[str, int, tuple[str, ...]]] = []
            for net in order:
                gate = network.gate(net)
                triples.append(
                    (net, _OPCODES[gate.gate_type], tuple(gate.inputs))
                )
            outputs = [out for out in network.outputs if out in cone]
            entry = (triples, outputs, cone)
            self._schedules[site] = entry
        return entry

    def compiled(self, site: str) -> _CompiledCone:
        """The compiled slot program for a fault on ``site``.

        Slots are assigned densely in first-use order: the site first,
        then each gate's fanins (boundary fanins — nets outside the
        cone — become load slots holding fault-free words) and its
        output net.  Whether a fanin carries a faulty or a fault-free
        word is decided here, once, instead of per word in the
        interpreter loop.
        """
        self._refresh()
        compiled = self._compiled.get(site)
        if compiled is None:
            triples, outputs, _cone = self.schedule(site)
            positions = self._positions
            slots: dict[str, int] = {site: 0}
            loads: list[tuple[int, int]] = []
            prog: list[tuple[int, int, tuple[int, ...]]] = []
            n_word_ops = 0
            for net, op, srcs in triples:
                src_slots: list[int] = []
                for src in srcs:
                    slot = slots.get(src)
                    if slot is None:
                        # Topological order puts every cone gate before
                        # its cone fanouts, so an unseen fanin is
                        # outside the cone: a fault-free boundary load.
                        slot = slots[src] = len(slots)
                        loads.append((slot, positions[src]))
                    src_slots.append(slot)
                dst = slots.get(net)
                if dst is None:
                    dst = slots[net] = len(slots)
                prog.append((op, dst, tuple(src_slots)))
                n_word_ops += len(src_slots)
                if op >= _OP_NAND and op != _OP_BUF:
                    n_word_ops += 1  # the complement
            n_slots = len(slots)
            out_pairs: list[tuple[int, int]] = []
            for out in outputs:
                # Shadow slot: the output's fault-free word, for the
                # detection XOR against the faulty word.
                out_pairs.append((slots[out], n_slots))
                loads.append((n_slots, positions[out]))
                n_slots += 1
            compiled = _CompiledCone(
                prog,
                loads,
                out_pairs,
                0,
                n_slots,
                len(triples),
                n_word_ops,
            )
            self._compiled[site] = compiled
        return compiled

    def detect_mask(
        self, fault: Fault, good_values: Mapping[str, int], mask: int
    ) -> int:
        """Bitmask of patterns for which ``fault`` reaches an output.

        ``good_values`` holds the fault-free packed words per net for a
        block of patterns; ``mask`` is the block's valid-pattern mask.
        Consecutive probes against the *same* ``good_values`` mapping
        (both polarities of a site, pattern-store sweeps) skip the
        boundary reloads — the mapping must not be mutated in between,
        which holds for every caller (:func:`simulate` returns a fresh
        dict per block and the pattern store keeps its block dicts
        immutable).
        """
        stuck_word = mask if fault.value else 0
        if good_values[fault.net] == stuck_word:
            return 0  # fault never excited by these patterns
        cone = self.compiled(fault.net)
        cached = self._good_cache
        if cached is None or cached[0] is not good_values:
            # Flatten the block's good values once; every cone probed
            # against this block reads by topo position.
            glist = [good_values[net] for net in self._topo_ref]
            self._good_cache = (good_values, glist)
        else:
            glist = cached[1]
        self.gate_evals += cone.n_gates
        self.word_ops += cone.n_word_ops
        fn = cone.fn
        if fn is None:
            cone.hits += 1
            if cone.hits >= _TIER_UP_HITS:
                fn = cone.fn = cone.codegen()
        if fn is not None:
            return fn(glist, stuck_word, mask) & mask
        # Cold tier: the record interpreter over the slot buffer.
        buf = cone.buf
        if cone.last_good is not good_values:
            for slot, pos in cone.loads:
                buf[slot] = glist[pos]
            cone.last_good = good_values
        buf[cone.site_slot] = stuck_word
        for op, dst, srcs in cone.prog:
            if op == _OP_AND or op == _OP_NAND:
                acc = mask
                for s in srcs:
                    acc &= buf[s]
            elif op == _OP_OR or op == _OP_NOR:
                acc = 0
                for s in srcs:
                    acc |= buf[s]
            elif op == _OP_BUF or op == _OP_NOT:
                acc = buf[srcs[0]]
            else:  # XOR / XNOR
                acc = 0
                for s in srcs:
                    acc ^= buf[s]
            if op >= _OP_NAND and op != _OP_BUF:  # NAND/NOR/XNOR/NOT
                acc ^= mask
            buf[dst] = acc
        detected = 0
        for fs, gs in cone.out_pairs:
            detected |= buf[fs] ^ buf[gs]
        return detected & mask


def simulate_fault(
    network: Network,
    fault: Fault,
    good_values: Mapping[str, int],
    mask: int,
    cone: set[str] | None = None,
) -> int:
    """Bitmask of patterns for which ``fault`` is observable at an output.

    One-shot readable reference path (walks the full topological order);
    callers simulating many blocks or many faults should go through
    :class:`FaultSimulator` / :func:`fault_simulate`, which cache the
    cone schedules.

    Args:
        network: the good circuit.
        fault: the fault to inject.
        good_values: fault-free values per net (packed words).
        mask: valid-pattern mask.
        cone: optional precomputed transitive fanout of the fault site
            (callers simulating a fault against many pattern blocks cache
            this — recomputing it dominates small-cone simulations).
    """
    stuck_word = mask if fault.value else 0
    if good_values[fault.net] == stuck_word:
        return 0  # fault never excited by these patterns

    if cone is None:
        cone = network.transitive_fanout([fault.net])
    faulty: dict[str, int] = {fault.net: stuck_word}
    for net in network.topological_order():
        if net not in cone or net == fault.net:
            continue
        gate = network.gate(net)
        words = [
            faulty.get(src, good_values[src]) for src in gate.inputs
        ]
        faulty[net] = evaluate_gate(gate.gate_type, words) & mask

    detected = 0
    for out in network.outputs:
        if out in faulty:
            detected |= (faulty[out] ^ good_values[out]) & mask
    return detected


def fault_simulate(
    network: Network,
    faults: Sequence[Fault],
    patterns: Sequence[Mapping[str, int]],
    block_size: int = 64,
) -> FaultSimResult:
    """Simulate single-bit ``patterns`` against ``faults``.

    Patterns are packed ``block_size`` per word; detected faults are
    dropped from later blocks.  Any positive width is valid — Python
    ints carry the block, so wider blocks trade per-block overhead for
    bigger bit-parallel words.
    """
    if block_size < 1:
        raise ValueError(f"block_size must be >= 1, got {block_size}")
    result = FaultSimResult()
    for fault in faults:
        if not network.has_net(fault.net):
            raise ValueError(f"fault on unknown net {fault.net!r}")
    simulator = FaultSimulator(network)
    remaining = list(faults)
    for start in range(0, len(patterns), block_size):
        block = patterns[start : start + block_size]
        words = pack_patterns(block, network.inputs)
        mask = (1 << len(block)) - 1
        good_values = simulate(network, words, len(block))
        still: list[Fault] = []
        for fault in remaining:
            hits = simulator.detect_mask(fault, good_values, mask)
            if hits:
                result.detected[fault] = hits << start
            else:
                still.append(fault)
        remaining = still
    result.undetected = remaining
    return result


class PatternBlockStore:
    """Generated tests packed into parallel blocks for batched dropping.

    The engine's original dropping pass fault-simulated every remaining
    fault against each fresh test — one 1-wide simulation block per test,
    with a full good-circuit simulation and a cone simulation per
    remaining fault each time.  The store instead accumulates tests into
    ``block_size``-wide packed blocks whose good-circuit values are
    computed once and cached; asking whether a fault is already covered
    (:meth:`first_detection`) costs one fanout-cone simulation per
    *block* of patterns rather than one per pattern, and full-circuit
    good simulations happen once per block instead of once per test.

    Blocks are append-only, so detection answers are stable: the earliest
    detecting pattern index returned for a fault never changes as more
    patterns arrive, which is what makes the parallel engine's replay
    merge reproduce the sequential engine's drop attribution exactly.
    """

    def __init__(
        self, network: Network, block_size: int = 64
    ) -> None:
        if block_size < 1:
            raise ValueError("block_size must be >= 1")
        self.network = network
        self.block_size = block_size
        self.simulator = FaultSimulator(network)
        self._patterns: list[dict[str, int]] = []
        #: Closed blocks: (good value word per net, valid-pattern mask).
        self._closed: list[tuple[dict[str, int], int]] = []
        self._pending_good: tuple[dict[str, int], int] | None = None
        self.good_sims = 0
        self.cone_sims = 0

    def __len__(self) -> int:
        return len(self._patterns)

    def pattern(self, index: int) -> dict[str, int]:
        """The ``index``-th added pattern."""
        return self._patterns[index]

    @property
    def patterns(self) -> list[dict[str, int]]:
        """All stored patterns, in insertion order."""
        return list(self._patterns)

    def add(self, pattern: Mapping[str, int]) -> None:
        """Append a test pattern, closing the current block when full."""
        self._patterns.append(dict(pattern))
        self._pending_good = None
        if len(self._patterns) == (len(self._closed) + 1) * self.block_size:
            block = self._patterns[-self.block_size :]
            self._closed.append(self._simulate_block(block))

    def _simulate_block(
        self, block: Sequence[Mapping[str, int]]
    ) -> tuple[dict[str, int], int]:
        words = pack_patterns(block, self.network.inputs)
        mask = (1 << len(block)) - 1
        self.good_sims += 1
        return simulate(self.network, words, len(block)), mask

    def first_detection(
        self, fault: Fault, cone: set[str] | None = None
    ) -> int | None:
        """Index of the earliest stored pattern detecting ``fault``.

        Returns ``None`` if no stored pattern detects it.  ``cone`` is
        accepted for API compatibility; the store's simulator caches
        cone schedules itself.
        """
        if not self._patterns:
            return None
        detect = self.simulator.detect_mask
        for index, (good_values, mask) in enumerate(self._closed):
            self.cone_sims += 1
            hits = detect(fault, good_values, mask)
            if hits:
                return index * self.block_size + _lowest_bit(hits)
        pending = self._patterns[len(self._closed) * self.block_size :]
        if pending:
            if self._pending_good is None:
                self._pending_good = self._simulate_block(pending)
            good_values, mask = self._pending_good
            self.cone_sims += 1
            hits = detect(fault, good_values, mask)
            if hits:
                return len(self._closed) * self.block_size + _lowest_bit(hits)
        return None


def _lowest_bit(word: int) -> int:
    """Position of the least-significant set bit of a nonzero word."""
    return (word & -word).bit_length() - 1


def pattern_detects(
    network: Network, fault: Fault, pattern: Mapping[str, int]
) -> bool:
    """True iff the single ``pattern`` detects ``fault``."""
    outcome = fault_simulate(network, [fault], [pattern])
    return fault in outcome.detected


def random_pattern_coverage(
    network: Network,
    faults: Sequence[Fault],
    n_patterns: int,
    seed: int = 0,
    block_size: int = 64,
) -> FaultSimResult:
    """Coverage of ``n_patterns`` uniform random patterns."""
    rng = random.Random(seed)
    patterns = [
        {net: rng.getrandbits(1) for net in network.inputs}
        for _ in range(n_patterns)
    ]
    return fault_simulate(network, faults, patterns, block_size=block_size)
