"""SAT-based test pattern generation (the TEGUS stand-in).

The flow of Larrabee [18] / Stephan et al. [24]: for each fault build the
ATPG-SAT circuit (Figure 3), translate to CNF, and hand it to a SAT
solver.  A satisfying assignment restricted to the primary inputs is a
test; an UNSAT answer proves the fault untestable (redundant).

The engine amortises the embarrassing per-fault redundancy of that loop:

* faults are ordered easiest-first by SCOAP detection cost, so cheap
  tests are generated early and drop as much of the hard tail as
  possible;
* fault dropping is *batched* — generated tests accumulate in packed
  bit-parallel blocks of configurable width
  (:class:`~repro.atpg.fault_sim.PatternBlockStore`; Python's arbitrary
  -precision ints make the word width a free parameter) and each
  candidate fault is checked against whole blocks right before its SAT
  call, which is drop-for-drop equivalent to the classic
  re-simulate-everything-per-test pass at a fraction of the cost;
* CNF encoding is incremental — per-gate clause blocks are memoised
  across miters (:class:`~repro.sat.tseitin.CnfEncodingCache`), so
  faults with overlapping fanin cones reuse clauses instead of
  re-running Tseitin from zero;
* SAT solving is incremental by default — one persistent
  assumption-based CDCL solver per observing-output cone
  (:class:`~repro.sat.incremental.IncrementalSatSolver`): the cone's
  good-circuit CNF is loaded once, each fault's miter delta is pushed
  as an activation-guarded clause group, and learned clauses, VSIDS
  activities, and saved phases survive across the fault batch
  (``solver_mode="fresh"`` restores per-fault cold starts);
* learned clauses are shared *across* cones — low-LBD clauses over a
  cone's good-circuit variables alone are base-entailed structural
  facts, promoted to a :class:`~repro.atpg.sharing.StructuralClauseStore`
  and injected into every sibling solver whose cone subsumes the
  origin's fanin (``share_learned="off"`` disables it);
* fanout cones are cached per net (both polarities of a stem share one
  traversal) and reused by miter construction and fault simulation.

Per-instance records (instance size, solve time, search effort) are kept
for every fault processed: they are exactly the data points of the
paper's Figure 1.  Per-stage timings and cache counters are aggregated
in :class:`EngineStats` for the perf trajectory.
"""

from __future__ import annotations

import enum
import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field
from typing import Optional

from repro.atpg.certify import (
    CERTIFY_MODES,
    RUNGS,
    CertificationError,
    EscalationLadder,
)
from repro.atpg.fault_sim import PatternBlockStore, fault_simulate
from repro.atpg.faults import Fault, collapse_faults
from repro.atpg.hardness import HardnessModel, HardnessPredictor
from repro.atpg.miter import (
    UnobservableFault,
    build_atpg_circuit,
    build_fault_delta,
)
from repro.atpg.scoap import order_faults
from repro.atpg.sharing import StructuralClauseStore
from repro.circuits.network import Network
from repro.circuits.validate import check_network
from repro.sat.caching import CachingBacktrackingSolver
from repro.sat.cdcl import CdclSolver
from repro.sat.cnf import CnfFormula
from repro.sat.dpll import DpllSolver
from repro.sat.incremental import IncrementalSatSolver
from repro.sat.result import SatResult, SatStatus
from repro.sat.tseitin import CnfEncodingCache


class FaultStatus(enum.Enum):
    """Classification of a fault after ATPG."""

    TESTED = "tested"  # SAT: test generated (and validated)
    UNTESTABLE = "untestable"  # UNSAT: provably redundant
    UNOBSERVABLE = "unobservable"  # no structural path to any output
    ABORTED = "aborted"  # resource limit
    DROPPED = "dropped"  # detected by an earlier pattern (fault dropping)


#: Machine-readable reasons attached to ABORTED records
#: (``AtpgRecord.abort_reason``) and the shared :class:`RunHealth`
#: telemetry — both live with the generic shard supervisor now
#: (:mod:`repro.atpg.supervisor`) and are re-exported here for
#: compatibility.  ``BUDGET`` is the per-fault conflict budget; the
#: others come from the run orchestration layer.
from repro.atpg.supervisor import (  # noqa: E402  (re-export)
    ABORT_BUDGET,
    ABORT_CERTIFICATION,
    ABORT_DEADLINE,
    ABORT_MEM,
    ABORT_SHARD_CRASHED,
    ABORT_SHARD_TIMEOUT,
    ABORT_SOLVER,
    RunHealth,
)


@dataclass
class AtpgRecord:
    """One Figure-1 data point: a single ATPG-SAT instance.

    ``solve_time`` is pure SAT search; miter construction and CNF
    encoding are reported separately so the perf trajectory can tell the
    stages apart.
    """

    fault: Fault
    status: FaultStatus
    num_variables: int = 0
    num_clauses: int = 0
    build_time: float = 0.0
    encode_time: float = 0.0
    solve_time: float = 0.0
    decisions: int = 0
    conflicts: int = 0
    propagations: int = 0
    test: Optional[dict[str, int]] = None
    abort_reason: Optional[str] = None
    #: Certification outcome (:mod:`repro.atpg.certify`): ``True`` the
    #: verdict passed its witness replay / DRUP or agreement check,
    #: ``False`` certification was attempted and failed on every ladder
    #: rung, ``None`` certification was off or inapplicable.
    certified: Optional[bool] = None


@dataclass
class EngineStats:
    """Aggregate perf counters for one ATPG run.

    Stage times partition the hot path: ``build`` (miter construction),
    ``encode`` (CNF translation), ``solve`` (SAT search), ``fsim``
    (fault-dropping simulation).  Cache counters come from the
    per-engine :class:`~repro.sat.tseitin.CnfEncodingCache`;
    ``replay_solves`` counts coordinator-side SAT calls the parallel
    engine needed during its reconciliation replay.
    """

    build_time: float = 0.0
    encode_time: float = 0.0
    solve_time: float = 0.0
    fsim_time: float = 0.0
    wall_time: float = 0.0
    sat_calls: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    good_sims: int = 0
    cone_sims: int = 0
    workers: int = 1
    shards: int = 1
    replay_solves: int = 0
    propagations: int = 0
    decisions: int = 0
    conflicts: int = 0
    #: Cross-fault structural clause sharing (:mod:`repro.atpg.sharing`):
    #: clauses promoted into the store, clause deliveries into sibling
    #: cone solvers, and SAT calls that ran with at least one shared
    #: clause active.
    shared_promoted: int = 0
    shared_injected: int = 0
    shared_active_solves: int = 0
    #: Hardness-guided scheduling (:mod:`repro.atpg.hardness`): SAT
    #: calls whose tight predicted conflict budget ran out and were
    #: re-solved at the full budget, and faults the predictor routed
    #: straight to a stronger escalation-ladder rung.
    budget_escalations: int = 0
    hard_routed: int = 0
    health: RunHealth = field(default_factory=RunHealth)

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of gate encodings served from the CNF cache."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def shared_hit_rate(self) -> float:
        """Fraction of SAT calls that ran with shared structural
        clauses active in their solver."""
        return (
            self.shared_active_solves / self.sat_calls
            if self.sat_calls
            else 0.0
        )

    def stage_times(self) -> dict[str, float]:
        """Per-stage wall times, keyed by stage name."""
        return {
            "build": self.build_time,
            "encode": self.encode_time,
            "solve": self.solve_time,
            "fsim": self.fsim_time,
        }

    def merge(self, other: "EngineStats") -> None:
        """Accumulate another run's counters (parallel shard merging).

        Stage times and call counters add; ``workers``/``shards`` are
        topology facts the coordinator sets explicitly, so they are left
        untouched here.
        """
        self.build_time += other.build_time
        self.encode_time += other.encode_time
        self.solve_time += other.solve_time
        self.fsim_time += other.fsim_time
        self.sat_calls += other.sat_calls
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses
        self.good_sims += other.good_sims
        self.cone_sims += other.cone_sims
        self.replay_solves += other.replay_solves
        self.propagations += other.propagations
        self.decisions += other.decisions
        self.conflicts += other.conflicts
        self.shared_promoted += other.shared_promoted
        self.shared_injected += other.shared_injected
        self.shared_active_solves += other.shared_active_solves
        self.budget_escalations += other.budget_escalations
        self.hard_routed += other.hard_routed
        self.health.merge(other.health)

    def solver_rates(self) -> dict[str, float]:
        """Search throughput per second of SAT solve time (the baseline
        currency for future solver PRs)."""
        solve = self.solve_time
        return {
            "propagations_per_sec": self.propagations / solve if solve else 0.0,
            "decisions_per_sec": self.decisions / solve if solve else 0.0,
            "conflicts_per_sec": self.conflicts / solve if solve else 0.0,
        }

    def as_dict(self) -> dict[str, float]:
        """JSON-ready view (used by ``repro atpg --bench-json``)."""
        return {
            "stage_times": self.stage_times(),
            "wall_time": self.wall_time,
            "sat_calls": self.sat_calls,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": self.cache_hit_rate,
            "good_sims": self.good_sims,
            "cone_sims": self.cone_sims,
            "workers": self.workers,
            "shards": self.shards,
            "replay_solves": self.replay_solves,
            "propagations": self.propagations,
            "decisions": self.decisions,
            "conflicts": self.conflicts,
            "shared_promoted": self.shared_promoted,
            "shared_injected": self.shared_injected,
            "shared_active_solves": self.shared_active_solves,
            "shared_hit_rate": self.shared_hit_rate,
            "budget_escalations": self.budget_escalations,
            "hard_routed": self.hard_routed,
            "health": self.health.as_dict(),
            **self.solver_rates(),
        }


@dataclass
class AtpgSummary:
    """Aggregate outcome of a full-circuit ATPG run.

    ``worker_stats`` holds the per-shard :class:`EngineStats` of a
    parallel run (stage timings included), so load imbalance and shard
    setup overhead are visible; empty for sequential runs.
    """

    circuit: str
    records: list[AtpgRecord] = field(default_factory=list)
    stats: EngineStats = field(default_factory=EngineStats)
    worker_stats: list[EngineStats] = field(default_factory=list)

    def by_status(self, status: FaultStatus) -> list[AtpgRecord]:
        return [r for r in self.records if r.status is status]

    def status_counts(self) -> dict[str, int]:
        """Record count per fault status (parity-test currency)."""
        return {
            status.value: len(self.by_status(status)) for status in FaultStatus
        }

    @property
    def fault_coverage(self) -> float:
        """Detected / total, counting untestable faults as excluded."""
        detected = sum(
            1
            for r in self.records
            if r.status in (FaultStatus.TESTED, FaultStatus.DROPPED)
        )
        testable = sum(
            1
            for r in self.records
            if r.status
            in (FaultStatus.TESTED, FaultStatus.DROPPED, FaultStatus.ABORTED)
        )
        return detected / testable if testable else 1.0

    def tests(self) -> list[dict[str, int]]:
        """The generated test patterns, one per TESTED fault.

        DROPPED records reference the pattern that covered them, so they
        are excluded here to avoid duplicates.
        """
        return [
            r.test
            for r in self.records
            if r.test is not None and r.status is FaultStatus.TESTED
        ]


def make_solver(
    name: str,
    max_conflicts: Optional[int] = None,
    deadline_at: Optional[float] = None,
    mem_budget_mb: Optional[float] = None,
):
    """The single SAT-backend factory shared by every ATPG engine.

    Args:
        name: one of ``cdcl``, ``dpll``, ``dpll-static``, ``caching``.
        max_conflicts: per-instance effort budget; scaled to the
            backend's native unit (decisions for DPLL, nodes for the
            caching solver).
        deadline_at: absolute ``time.monotonic()`` wall-clock cutoff for
            the search (CDCL only; the other backends rely on their
            node/decision budgets).
        mem_budget_mb: clause-database memory budget (CDCL only).

    Raises:
        ValueError: for unknown backend names.
    """
    if name == "cdcl":
        return CdclSolver(
            max_conflicts=max_conflicts,
            deadline_at=deadline_at,
            mem_budget_mb=mem_budget_mb,
        )
    if name in ("dpll", "dpll-static"):
        return DpllSolver(
            dynamic=(name == "dpll"),
            max_decisions=(
                None if max_conflicts is None else max_conflicts * 4
            ),
        )
    if name == "caching":
        return CachingBacktrackingSolver(max_nodes=max_conflicts)
    raise ValueError(f"unknown solver {name!r}")


#: LBD ceiling for promoting learned clauses into the shared structural
#: store.  Low-LBD ("glue") clauses are the ones worth transferring:
#: they encode tight cone facts, stay short, and survive DB reduction.
_STRUCTURAL_LBD_MAX = 4


@dataclass
class _ConeSolverEntry:
    """One persistent incremental solver per observing-output set.

    The base formula is the good-circuit CNF of ``relevant`` (the
    transitive fanin of the observing outputs); every fault observed by
    exactly these outputs pushes its miter delta onto this solver, so
    learned clauses, activities, and phases carry across the group.
    """

    solver: IncrementalSatSolver
    relevant: set[str]
    base_clauses: int


class AtpgEngine:
    """Test generator for single stuck-at faults on a circuit.

    Args:
        network: circuit under test (any gate alphabet the CNF encoder
            accepts; decompose first for the paper's exact setting).
        solver: one of ``cdcl`` (default), ``dpll``, ``dpll-static``,
            ``caching``.
        max_conflicts: per-fault effort budget (CDCL) — aborted faults are
            reported, not silently dropped.
        validate: structurally validate the network at construction
            (cyclic or undriven-net netlists raise
            :class:`~repro.circuits.validate.ValidationError` up front
            instead of a deep ``KeyError`` mid-run) and fault-simulate
            every generated test (defensive; adds time but catches
            encoder bugs).  ``validate_network=False`` skips just the
            structural check (the parallel engine uses it for workers
            whose network the coordinator already validated).
        drop_block_size: patterns packed per fault-dropping block.
        order: ``auto`` (SCOAP-order the default collapsed list, keep
            explicit lists as given), ``scoap``, ``hardness`` (learned
            predictor ordering, :mod:`repro.atpg.hardness`), or
            ``given``.  Ordering only moves the *schedule*: per-fault
            verdicts and coverage are order-independent.
        solver_mode: ``incremental`` (default) keeps one persistent
            assumption-based CDCL solver per observing-output cone —
            each fault's miter is pushed as an activation-guarded delta
            and learned clauses/VSIDS activities/saved phases survive
            across the fault batch.  ``fresh`` compiles and solves every
            miter from scratch.  Both modes agree on every fault's
            SAT/UNSAT verdict and on fault coverage; generated test
            *vectors* may differ (either mode's tests are validated).
            Non-CDCL backends always use the fresh path.
        encoding_cache: optional pre-warmed per-gate CNF cache to share
            (the parallel engine ships one to every worker).
        deadline: run-level wall-clock budget in seconds.  When a
            :meth:`run` exceeds it, remaining faults are recorded
            ABORTED with reason ``deadline_exceeded`` (periodic time
            checks inside the CDCL solve loop stop an in-flight search
            too) and the run returns cleanly with partial coverage.
        validate_network: override just the structural network check
            (defaults to ``validate``).
        certify: ``off`` (default), ``witness``, or ``full`` — route
            every verdict through the certification / self-healing
            escalation ladder (:mod:`repro.atpg.certify`): ``witness``
            certifies TESTABLE verdicts by fault-simulation replay,
            ``full`` additionally certifies REDUNDANT verdicts by a
            checked DRUP refutation (or cross-solver agreement).
            Certification failures, solver exceptions, and budget
            exhaustion re-solve on independent paths instead of
            crashing; disagreements land in ``stats.health``.
        mem_budget_mb: clause-database memory budget per SAT call
            (CDCL); an over-budget search aborts the fault with reason
            ``mem_budget_exceeded`` (and, under ``certify``, escalates).
        share_learned: ``cone`` (default) promotes guard-free low-LBD
            learned clauses — facts about the good circuit, valid for
            every fault — into a run-wide
            :class:`~repro.atpg.sharing.StructuralClauseStore` and
            pre-seeds sibling cones' solvers with the applicable ones
            (origin fanin ⊆ target fanin, see :mod:`repro.atpg.sharing`
            for the soundness argument).  ``off`` disables the exchange.
            Only the incremental CDCL path shares; verdicts are
            unaffected either way.
        budget_policy: ``fixed`` (default) gives every fault the full
            ``max_conflicts`` budget.  ``predicted`` gives each fault a
            tight budget derived from its predicted conflict count
            (:meth:`~repro.atpg.hardness.HardnessPredictor.budget`) and
            *escalates* to the full budget when the tight attempt comes
            back UNKNOWN — so a mispredicted fault costs one bounded
            extra solve while a genuinely hard fault can no longer pin a
            shard at the full budget repeatedly on doomed warm attempts.
            Escalation is budget-only (never applied to memory or
            deadline aborts), so final verdicts are identical to
            ``fixed``.
        hardness_model: the trained :class:`HardnessModel` (or a path to
            its JSON) used by ``order="hardness"``,
            ``budget_policy="predicted"``, and hard-fault ladder
            routing; ``None`` loads the shipped default model.
    """

    def __init__(
        self,
        network: Network,
        solver: str = "cdcl",
        max_conflicts: Optional[int] = 100_000,
        validate: bool = True,
        drop_block_size: int = 64,
        order: str = "auto",
        solver_mode: str = "incremental",
        encoding_cache: Optional[CnfEncodingCache] = None,
        deadline: Optional[float] = None,
        validate_network: Optional[bool] = None,
        certify: str = "off",
        mem_budget_mb: Optional[float] = None,
        share_learned: str = "cone",
        budget_policy: str = "fixed",
        hardness_model: Optional["HardnessModel | str"] = None,
    ) -> None:
        if order not in ("auto", "scoap", "hardness", "given"):
            raise ValueError(f"unknown fault order {order!r}")
        if solver_mode not in ("incremental", "fresh"):
            raise ValueError(f"unknown solver mode {solver_mode!r}")
        if budget_policy not in ("fixed", "predicted"):
            raise ValueError(f"unknown budget policy {budget_policy!r}")
        if share_learned not in ("off", "cone"):
            raise ValueError(f"unknown share_learned mode {share_learned!r}")
        if deadline is not None and deadline < 0:
            raise ValueError("deadline must be >= 0 seconds")
        if certify not in CERTIFY_MODES:
            raise ValueError(f"unknown certify mode {certify!r}")
        if mem_budget_mb is not None and mem_budget_mb <= 0:
            raise ValueError("mem_budget_mb must be > 0")
        structural = validate if validate_network is None else validate_network
        if structural:
            check_network(network)
        self.network = network
        self.solver_name = solver
        self.max_conflicts = max_conflicts
        self.validate = validate
        self.drop_block_size = drop_block_size
        self.order = order
        self.solver_mode = solver_mode
        self.deadline = deadline
        self.certify = certify
        self.mem_budget_mb = mem_budget_mb
        self.share_learned = share_learned
        self.budget_policy = budget_policy
        self.hardness_model = hardness_model
        self._hardness: Optional[HardnessPredictor] = None
        self._structural_store = (
            StructuralClauseStore() if share_learned == "cone" else None
        )
        self._ladder = (
            EscalationLadder(self, certify) if certify != "off" else None
        )
        self._deadline_at: Optional[float] = None
        self._encoding_cache = (
            encoding_cache if encoding_cache is not None else CnfEncodingCache()
        )
        self._cone_cache: dict[str, set[str]] = {}
        self._cone_solvers: dict[tuple[str, ...], _ConeSolverEntry] = {}
        self._topo: Optional[list[str]] = None

    @property
    def incremental(self) -> bool:
        """True when faults are solved on persistent per-cone solvers."""
        return self.solver_mode == "incremental" and self.solver_name == "cdcl"

    @property
    def hardness_guided(self) -> bool:
        """True when any scheduling decision consults the predictor."""
        return self.order == "hardness" or self.budget_policy == "predicted"

    def hardness_predictor(self) -> HardnessPredictor:
        """The per-network hardness predictor (built on first use)."""
        if self._hardness is None:
            model = self.hardness_model
            if model is None:
                model = HardnessModel.default()
            elif not isinstance(model, HardnessModel):
                model = HardnessModel.load(model)
            self._hardness = HardnessPredictor(self.network, model=model)
        return self._hardness

    def _fault_budget(self, fault: Fault) -> tuple[Optional[int], bool]:
        """(first-attempt conflict budget, whether escalation remains).

        Under the ``fixed`` policy every fault gets the full budget and
        there is nothing to escalate to.  Under ``predicted`` the first
        attempt runs on the predictor's tight budget; the second element
        says a full-budget retry is still meaningful if it aborts.
        """
        if self.budget_policy != "predicted":
            return self.max_conflicts, False
        budget = self.hardness_predictor().budget(fault, self.max_conflicts)
        escalatable = budget is not None and (
            self.max_conflicts is None or budget < self.max_conflicts
        )
        return budget, escalatable

    def _route_start_rung(self, fault: Fault) -> int:
        """The escalation-ladder rung this fault should start on.

        The cheap full-mode UNSAT certification is two *warm* rungs
        agreeing (primary + core-replay), so routing past them only pays
        when those rungs are doomed to burn their whole conflict budget
        and abort anyway.  That is exactly the faults the predictor
        prices above the configured ``max_conflicts``: for them the
        ladder starts at the proof-logged ``fresh-cdcl`` rung, replacing
        two full-budget warm aborts with the one cold solve the fault
        was always going to need.  Only the schedule moves — every rung
        agrees on verdicts, and a fresh-cdcl abort still climbs on to
        the DPLL reference exactly as an escalated one would.
        """
        if (
            self.certify == "full"
            and self.hardness_guided
            and self.max_conflicts is not None
        ):
            predictor = self.hardness_predictor()
            if predictor.conflicts(fault) > self.max_conflicts:
                return RUNGS.index("fresh-cdcl")
        return 0

    # ------------------------------------------------------------------
    def fault_cone(self, net: str) -> set[str]:
        """Cached transitive fanout of ``net`` (shared by both polarities
        of a stem fault, miter construction, and fault simulation)."""
        cone = self._cone_cache.get(net)
        if cone is None:
            cone = self.network.transitive_fanout([net])
            self._cone_cache[net] = cone
        return cone

    def generate_test(
        self, fault: Fault, stats: Optional[EngineStats] = None
    ) -> AtpgRecord:
        """Run ATPG-SAT for a single fault.

        With certification on, the verdict is produced (and on failure
        healed) by the escalation ladder; otherwise by the configured
        primary path directly.
        """
        stats = stats if stats is not None else EngineStats()
        if self._ladder is not None:
            return self._ladder.process(fault, stats)
        return self._primary_record(fault, stats)

    def _primary_record(self, fault: Fault, stats: EngineStats) -> AtpgRecord:
        """The engine's configured solve path (ladder rung 0)."""
        if self.incremental:
            return self._generate_test_incremental(fault, stats)
        return self._generate_test_fresh(fault, stats)

    def _generate_test_fresh(
        self, fault: Fault, stats: EngineStats
    ) -> AtpgRecord:
        """Cold-start path: build miter, compile, solve from scratch."""
        start = time.perf_counter()
        try:
            atpg = build_atpg_circuit(
                self.network, fault, tfo=self.fault_cone(fault.net)
            )
        except UnobservableFault:
            stats.build_time += time.perf_counter() - start
            return AtpgRecord(fault=fault, status=FaultStatus.UNOBSERVABLE)
        built = time.perf_counter()

        formula = atpg.formula(cache=self._encoding_cache)
        encoded = time.perf_counter()

        budget, escalatable = self._fault_budget(fault)
        result = self._solve(formula, max_conflicts=budget)
        sat_calls = 1
        decisions = result.stats.decisions
        conflicts = result.stats.conflicts
        propagations = result.stats.propagations
        if (
            escalatable
            and result.status is SatStatus.UNKNOWN
            and not result.stats.mem_limit_hit
            and not self._past_deadline()
        ):
            # Tight predicted budget exhausted: retry once at the full
            # budget, so final verdicts match the fixed policy exactly.
            stats.budget_escalations += 1
            result = self._solve(formula)
            sat_calls += 1
            decisions += result.stats.decisions
            conflicts += result.stats.conflicts
            propagations += result.stats.propagations
        solved = time.perf_counter()

        stats.build_time += built - start
        stats.encode_time += encoded - built
        stats.solve_time += solved - encoded
        stats.sat_calls += sat_calls
        stats.propagations += propagations
        stats.decisions += decisions
        stats.conflicts += conflicts

        record = AtpgRecord(
            fault=fault,
            status=FaultStatus.ABORTED,
            num_variables=formula.num_variables(),
            num_clauses=formula.num_clauses(),
            build_time=built - start,
            encode_time=encoded - built,
            solve_time=solved - encoded,
            decisions=decisions,
            conflicts=conflicts,
            propagations=propagations,
        )
        self._finish_record(record, result)
        return record

    def _generate_test_incremental(
        self, fault: Fault, stats: EngineStats
    ) -> AtpgRecord:
        """Hot path: push the fault's miter delta onto the persistent
        solver of its observing-output cone and solve under the delta's
        activation assumption."""
        start = time.perf_counter()
        tfo = self.fault_cone(fault.net)
        observing = tuple(
            out for out in self.network.outputs if out in tfo
        )
        if not observing:
            stats.build_time += time.perf_counter() - start
            return AtpgRecord(fault=fault, status=FaultStatus.UNOBSERVABLE)
        entry = self._cone_solver(observing, stats)
        delta = build_fault_delta(
            self.network,
            fault,
            tfo=tfo,
            relevant=entry.relevant,
            topo_order=self._topo_order(),
            cache=self._encoding_cache,
        )
        built = time.perf_counter()

        group = entry.solver.push_group(delta.clauses)
        num_variables = entry.solver.num_vars
        encoded = time.perf_counter()

        # Sharing work is billed to the solve stage on purpose: the
        # injection/drain cost is part of what the sharing trade buys.
        store = self._structural_store
        if store is not None:
            fresh = store.fresh_for(observing)
            if fresh:
                entry.solver.push_shared(fresh)
            if entry.solver.num_shared_clauses:
                stats.shared_active_solves += 1
        budget, escalatable = self._fault_budget(fault)
        result = entry.solver.solve(
            group,
            max_conflicts=budget,
            deadline_at=self._deadline_at,
            mem_budget_mb=self.mem_budget_mb,
            model_names=self.network.inputs,
        )
        sat_calls = 1
        decisions = result.stats.decisions
        conflicts = result.stats.conflicts
        propagations = result.stats.propagations
        if (
            escalatable
            and result.status is SatStatus.UNKNOWN
            and not result.stats.mem_limit_hit
            and not self._past_deadline()
        ):
            # Tight predicted budget exhausted: re-solve at the full
            # budget on the still-warm solver (the group is still
            # active, and the first attempt's learned clauses carry
            # over), so final verdicts match the fixed policy exactly.
            stats.budget_escalations += 1
            result = entry.solver.solve(
                group,
                max_conflicts=self.max_conflicts,
                deadline_at=self._deadline_at,
                mem_budget_mb=self.mem_budget_mb,
                model_names=self.network.inputs,
            )
            sat_calls += 1
            decisions += result.stats.decisions
            conflicts += result.stats.conflicts
            propagations += result.stats.propagations
        entry.solver.retire(group)
        if store is not None:
            # Drain *after* retire: the delta's variable names are
            # released by then, so clauses mentioning fault-specific
            # miter variables fail name translation and are filtered —
            # only clauses over the cone's good-circuit nets promote.
            drained = entry.solver.drain_structural()
            if drained:
                store.promote(observing, drained)
        solved = time.perf_counter()

        stats.build_time += built - start
        stats.encode_time += encoded - built
        stats.solve_time += solved - encoded
        stats.sat_calls += sat_calls
        stats.propagations += propagations
        stats.decisions += decisions
        stats.conflicts += conflicts

        record = AtpgRecord(
            fault=fault,
            status=FaultStatus.ABORTED,
            num_variables=num_variables,
            num_clauses=entry.base_clauses + group.num_clauses,
            build_time=built - start,
            encode_time=encoded - built,
            solve_time=solved - encoded,
            decisions=decisions,
            conflicts=conflicts,
            propagations=propagations,
        )
        self._finish_record(record, result)
        if record.test is not None:
            # Seed the cone's saved phases from the simulated net values
            # of the test just found: nearby faults need assignments that
            # differ only around the new fault site, so the next search
            # starts close to a known-good model.
            entry.solver.seed_phases(self.network.evaluate(record.test))
        return record

    def _finish_record(self, record: AtpgRecord, result: SatResult) -> None:
        """Map the SAT outcome onto the record (shared by both paths)."""
        if result.status is SatStatus.UNKNOWN:
            if result.stats.mem_limit_hit:
                record.abort_reason = ABORT_MEM
            elif self._past_deadline():
                record.abort_reason = ABORT_DEADLINE
            else:
                record.abort_reason = ABORT_BUDGET
        if result.status is SatStatus.UNSAT:
            record.status = FaultStatus.UNTESTABLE
        elif result.status is SatStatus.SAT:
            assert result.assignment is not None
            test = self._extract_test(result.assignment)
            if self.validate and self._ladder is None:
                # With certification on the ladder replays the witness
                # itself (and heals failures instead of raising).
                outcome = fault_simulate(self.network, [record.fault], [test])
                if record.fault not in outcome.detected:
                    raise CertificationError(
                        record.fault,
                        "witness",
                        "SAT model failed fault simulation — encoder or "
                        "solver bug",
                    )
            record.status = FaultStatus.TESTED
            record.test = test

    def _topo_order(self) -> list[str]:
        """The network's topological net order, computed once."""
        if self._topo is None:
            self._topo = self.network.topological_order()
        return self._topo

    def _cone_solver(
        self, observing: tuple[str, ...], stats: EngineStats
    ) -> _ConeSolverEntry:
        """Persistent solver for the faults observed by ``observing``,
        its base loaded with the good-circuit CNF of their fanin."""
        entry = self._cone_solvers.get(observing)
        if entry is None:
            setup_start = time.perf_counter()
            relevant = self.network.transitive_fanin(observing)
            clauses = []
            encode = self._encoding_cache.gate_clauses
            gate = self.network.gate
            for net in self._topo_order():
                if net in relevant:
                    clauses.extend(encode(gate(net)))
            solver = IncrementalSatSolver()
            solver.add_base(clauses)
            store = self._structural_store
            if store is not None:
                solver.enable_structural(_STRUCTURAL_LBD_MAX)
                store.register_cone(observing, frozenset(relevant))
            entry = _ConeSolverEntry(
                solver=solver, relevant=relevant, base_clauses=len(clauses)
            )
            self._cone_solvers[observing] = entry
            stats.encode_time += time.perf_counter() - setup_start
        return entry

    def _past_deadline(self) -> bool:
        """True when the active run deadline has expired."""
        return (
            self._deadline_at is not None
            and time.monotonic() >= self._deadline_at
        )

    def _solve(
        self,
        formula: CnfFormula,
        max_conflicts: Optional[int] = None,
    ) -> SatResult:
        return make_solver(
            self.solver_name,
            self.max_conflicts if max_conflicts is None else max_conflicts,
            deadline_at=self._deadline_at,
            mem_budget_mb=self.mem_budget_mb,
        ).solve(formula)

    def _extract_test(self, assignment: dict[str, int]) -> dict[str, int]:
        """Project a miter model onto the circuit's primary inputs.

        Inputs outside the miter (don't-cares) default to 0.
        """
        return {
            net: assignment.get(net, 0) & 1 for net in self.network.inputs
        }

    # ------------------------------------------------------------------
    def ordered_faults(
        self, faults: Optional[Sequence[Fault]] = None
    ) -> list[Fault]:
        """The fault list :meth:`run` would process, in processing order.

        The parallel engine uses this as the canonical order its replay
        merge reproduces.
        """
        explicit = faults is not None
        fault_list = list(faults) if explicit else collapse_faults(self.network)
        if self.order == "hardness":
            return self.hardness_predictor().order(fault_list)
        if self.order == "scoap" or (self.order == "auto" and not explicit):
            return order_faults(self.network, fault_list)
        return fault_list

    def run(
        self,
        faults: Optional[Sequence[Fault]] = None,
        fault_dropping: bool = True,
        deadline_at: Optional[float] = None,
        on_record: Optional[Callable[[AtpgRecord], None]] = None,
    ) -> AtpgSummary:
        """ATPG over a fault list (collapsed list by default).

        With ``fault_dropping``, each fault is checked against every
        previously generated test (packed into blocks) immediately
        before its SAT call; faults already covered are recorded as
        DROPPED with the earliest detecting test.  This drops exactly
        the faults the classic re-simulate-after-every-test pass would
        drop, without its per-test sweep over the remaining list.

        Args:
            deadline_at: absolute ``time.monotonic()`` deadline imposed
                by an orchestrator; defaults to the engine's own
                ``deadline`` budget counted from this call.  Once
                passed, every remaining fault is recorded ABORTED with
                reason ``deadline_exceeded`` and the run returns.
            on_record: per-record callback fired as each record is
                finalised (the checkpoint journal hook).
        """
        wall_start = time.perf_counter()
        if deadline_at is None and self.deadline is not None:
            deadline_at = time.monotonic() + self.deadline
        self._deadline_at = deadline_at
        ordered = self.ordered_faults(faults)
        summary = AtpgSummary(circuit=self.network.name)
        stats = summary.stats
        store = PatternBlockStore(
            self.network, block_size=self.drop_block_size
        )
        cache = self._encoding_cache
        hits0, misses0 = cache.hits, cache.misses
        share = self._structural_store
        promoted0 = share.stats.promoted if share is not None else 0
        injected0 = share.stats.injected if share is not None else 0

        try:
            for fault in ordered:
                if self._past_deadline():
                    stats.health.deadline_hit = True
                    record = AtpgRecord(
                        fault=fault,
                        status=FaultStatus.ABORTED,
                        abort_reason=ABORT_DEADLINE,
                    )
                    summary.records.append(record)
                    if on_record is not None:
                        on_record(record)
                    continue
                if fault_dropping and len(store):
                    fsim_start = time.perf_counter()
                    detected = store.first_detection(
                        fault, cone=self.fault_cone(fault.net)
                    )
                    stats.fsim_time += time.perf_counter() - fsim_start
                    if detected is not None:
                        record = AtpgRecord(
                            fault=fault,
                            status=FaultStatus.DROPPED,
                            test=store.pattern(detected),
                            # The drop *is* a fault-simulation detection
                            # of this fault by this pattern.
                            certified=(
                                True if self.certify != "off" else None
                            ),
                        )
                        summary.records.append(record)
                        if on_record is not None:
                            on_record(record)
                        continue
                record = self.generate_test(fault, stats=stats)
                summary.records.append(record)
                if on_record is not None:
                    on_record(record)
                if fault_dropping and record.test is not None:
                    store.add(record.test)
        finally:
            self._deadline_at = None

        stats.cache_hits = cache.hits - hits0
        stats.cache_misses = cache.misses - misses0
        stats.good_sims = store.good_sims
        stats.cone_sims = store.cone_sims
        if share is not None:
            stats.shared_promoted = share.stats.promoted - promoted0
            stats.shared_injected = share.stats.injected - injected0
            stats.health.shared_promoted = stats.shared_promoted
            stats.health.shared_injected = stats.shared_injected
        stats.health.count_aborts(summary.records)
        stats.health.count_certification(summary.records)
        stats.wall_time = time.perf_counter() - wall_start
        return summary
