"""SAT-based test pattern generation (the TEGUS stand-in).

The flow of Larrabee [18] / Stephan et al. [24]: for each fault build the
ATPG-SAT circuit (Figure 3), translate to CNF, and hand it to a SAT
solver.  A satisfying assignment restricted to the primary inputs is a
test; an UNSAT answer proves the fault untestable (redundant).  The
engine optionally performs fault dropping — each new test is
fault-simulated against the remaining fault list, TEGUS-style.

Per-instance records (instance size, solve time, search effort) are kept
for every fault processed: they are exactly the data points of the
paper's Figure 1.
"""

from __future__ import annotations

import enum
import time
from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.atpg.fault_sim import fault_simulate
from repro.atpg.faults import Fault, collapse_faults
from repro.atpg.miter import UnobservableFault, build_atpg_circuit
from repro.circuits.network import Network
from repro.sat.caching import CachingBacktrackingSolver
from repro.sat.cdcl import CdclSolver
from repro.sat.cnf import CnfFormula
from repro.sat.dpll import DpllSolver
from repro.sat.result import SatResult, SatStatus


class FaultStatus(enum.Enum):
    """Classification of a fault after ATPG."""

    TESTED = "tested"  # SAT: test generated (and validated)
    UNTESTABLE = "untestable"  # UNSAT: provably redundant
    UNOBSERVABLE = "unobservable"  # no structural path to any output
    ABORTED = "aborted"  # resource limit
    DROPPED = "dropped"  # detected by an earlier pattern (fault dropping)


@dataclass
class AtpgRecord:
    """One Figure-1 data point: a single ATPG-SAT instance."""

    fault: Fault
    status: FaultStatus
    num_variables: int = 0
    num_clauses: int = 0
    solve_time: float = 0.0
    decisions: int = 0
    conflicts: int = 0
    test: Optional[dict[str, int]] = None


@dataclass
class AtpgSummary:
    """Aggregate outcome of a full-circuit ATPG run."""

    circuit: str
    records: list[AtpgRecord] = field(default_factory=list)

    def by_status(self, status: FaultStatus) -> list[AtpgRecord]:
        return [r for r in self.records if r.status is status]

    @property
    def fault_coverage(self) -> float:
        """Detected / total, counting untestable faults as excluded."""
        detected = sum(
            1
            for r in self.records
            if r.status in (FaultStatus.TESTED, FaultStatus.DROPPED)
        )
        testable = sum(
            1
            for r in self.records
            if r.status
            in (FaultStatus.TESTED, FaultStatus.DROPPED, FaultStatus.ABORTED)
        )
        return detected / testable if testable else 1.0

    def tests(self) -> list[dict[str, int]]:
        """The generated test patterns, one per TESTED fault.

        DROPPED records reference the pattern that covered them, so they
        are excluded here to avoid duplicates.
        """
        return [
            r.test
            for r in self.records
            if r.test is not None and r.status is FaultStatus.TESTED
        ]


SolverFactory = Callable[[], object]


def _make_solver(name: str, **kwargs):
    if name == "cdcl":
        return CdclSolver(**kwargs)
    if name == "dpll":
        return DpllSolver(dynamic=True, **kwargs)
    if name == "dpll-static":
        return DpllSolver(dynamic=False, **kwargs)
    if name == "caching":
        return CachingBacktrackingSolver(**kwargs)
    raise ValueError(f"unknown solver {name!r}")


class AtpgEngine:
    """Test generator for single stuck-at faults on a circuit.

    Args:
        network: circuit under test (any gate alphabet the CNF encoder
            accepts; decompose first for the paper's exact setting).
        solver: one of ``cdcl`` (default), ``dpll``, ``dpll-static``,
            ``caching``.
        max_conflicts: per-fault effort budget (CDCL) — aborted faults are
            reported, not silently dropped.
        validate: fault-simulate every generated test (defensive; adds
            time but catches encoder bugs).
    """

    def __init__(
        self,
        network: Network,
        solver: str = "cdcl",
        max_conflicts: Optional[int] = 100_000,
        validate: bool = True,
    ) -> None:
        self.network = network
        self.solver_name = solver
        self.max_conflicts = max_conflicts
        self.validate = validate

    # ------------------------------------------------------------------
    def generate_test(self, fault: Fault) -> AtpgRecord:
        """Run ATPG-SAT for a single fault."""
        start = time.perf_counter()
        try:
            atpg = build_atpg_circuit(self.network, fault)
        except UnobservableFault:
            return AtpgRecord(fault=fault, status=FaultStatus.UNOBSERVABLE)

        formula = atpg.formula()
        result = self._solve(formula)
        elapsed = time.perf_counter() - start

        record = AtpgRecord(
            fault=fault,
            status=FaultStatus.ABORTED,
            num_variables=formula.num_variables(),
            num_clauses=formula.num_clauses(),
            solve_time=elapsed,
            decisions=result.stats.decisions,
            conflicts=result.stats.conflicts,
        )
        if result.status is SatStatus.UNSAT:
            record.status = FaultStatus.UNTESTABLE
        elif result.status is SatStatus.SAT:
            assert result.assignment is not None
            test = self._extract_test(result.assignment)
            if self.validate:
                outcome = fault_simulate(self.network, [fault], [test])
                if fault not in outcome.detected:
                    raise RuntimeError(
                        f"SAT model for {fault} failed fault simulation — "
                        "encoder or solver bug"
                    )
            record.status = FaultStatus.TESTED
            record.test = test
        return record

    def _solve(self, formula: CnfFormula) -> SatResult:
        if self.solver_name == "cdcl":
            solver = CdclSolver(max_conflicts=self.max_conflicts)
        elif self.solver_name in ("dpll", "dpll-static"):
            solver = DpllSolver(
                dynamic=(self.solver_name == "dpll"),
                max_decisions=(
                    None if self.max_conflicts is None else self.max_conflicts * 4
                ),
            )
        elif self.solver_name == "caching":
            solver = CachingBacktrackingSolver(max_nodes=self.max_conflicts)
        else:
            raise ValueError(f"unknown solver {self.solver_name!r}")
        return solver.solve(formula)

    def _extract_test(self, assignment: dict[str, int]) -> dict[str, int]:
        """Project a miter model onto the circuit's primary inputs.

        Inputs outside the miter (don't-cares) default to 0.
        """
        return {
            net: assignment.get(net, 0) & 1 for net in self.network.inputs
        }

    # ------------------------------------------------------------------
    def run(
        self,
        faults: Optional[Sequence[Fault]] = None,
        fault_dropping: bool = True,
    ) -> AtpgSummary:
        """ATPG over a fault list (collapsed list by default)."""
        if faults is None:
            faults = collapse_faults(self.network)
        summary = AtpgSummary(circuit=self.network.name)
        remaining = list(faults)
        while remaining:
            fault = remaining.pop(0)
            record = self.generate_test(fault)
            summary.records.append(record)
            if (
                fault_dropping
                and record.test is not None
                and remaining
            ):
                outcome = fault_simulate(self.network, remaining, [record.test])
                if outcome.detected:
                    dropped = set(outcome.detected)
                    remaining = [f for f in remaining if f not in dropped]
                    for covered in sorted(dropped):
                        summary.records.append(
                            AtpgRecord(
                                fault=covered,
                                status=FaultStatus.DROPPED,
                                test=record.test,
                            )
                        )
        return summary
