"""Construction of the ATPG-SAT circuit C_ψ^ATPG (paper Figure 3).

Given circuit C and fault ψ on net X:

* ``C_ψ^fo`` — the transitive fanout of X in the *faulted* circuit C_ψ,
  duplicated with fresh names; X itself becomes the stuck constant.
* ``C_ψ^sub`` — the subcircuit of the *good* circuit C induced by the
  transitive fanin of the transitive fanout of X (everything relevant to
  exciting and observing the fault).
* ``C_ψ^ATPG`` — C_ψ^sub and C_ψ^fo side by side, with the faulty cone
  tapping its side inputs directly from good-circuit nets, and one XOR
  per affected primary output.  CIRCUIT-SAT on this circuit ("at least
  one output is 1") is exactly ATPG-SAT(C, ψ).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.atpg.faults import Fault
from repro.circuits.gates import GateType
from repro.circuits.network import Gate, Network
from repro.sat.cnf import Clause, CnfFormula, pos
from repro.sat.tseitin import (
    CnfEncodingCache,
    circuit_sat_formula,
    gate_clauses,
)

#: Name prefix for the duplicated faulty-cone nets.
FAULTY_PREFIX = "flt$"
#: Name prefix for the XOR comparison outputs.
XOR_PREFIX = "xor$"


@dataclass
class AtpgCircuit:
    """The assembled ATPG-SAT circuit plus bookkeeping.

    Attributes:
        network: C_ψ^ATPG; its outputs are the XOR comparison nets.
        fault: the fault ψ this circuit tests.
        good_nets: nets of C_ψ^sub present in the miter (original names).
        faulty_nets: original names of nets duplicated into the faulty cone.
        observing_outputs: primary outputs of C reachable from the fault.
    """

    network: Network
    fault: Fault
    good_nets: tuple[str, ...]
    faulty_nets: tuple[str, ...]
    observing_outputs: tuple[str, ...]

    def formula(self, cache: CnfEncodingCache | None = None) -> CnfFormula:
        """The ATPG-SAT CNF: CIRCUIT-SAT on C_ψ^ATPG.

        With a ``cache``, per-gate clause blocks are shared with every
        other miter encoded through the same cache (faults with
        overlapping fanin cones reuse the good side's clauses verbatim).
        """
        return circuit_sat_formula(
            self.network, name=f"atpg({self.fault})", cache=cache
        )

    def faulty_name(self, net: str) -> str:
        """Miter-side name of the faulty copy of ``net``."""
        return FAULTY_PREFIX + net


class UnobservableFault(ValueError):
    """The fault site has no path to any primary output."""


def fault_cone_nets(network: Network, fault: Fault) -> set[str]:
    """Nets of the transitive fanout of the fault site (inclusive)."""
    return network.transitive_fanout([fault.net])


def sub_circuit(
    network: Network, fault: Fault, tfo: set[str] | None = None
) -> Network:
    """C_ψ^sub: TFI of the TFO of the fault site, as a circuit of C.

    Its outputs are the primary outputs of C that can observe ψ.

    Raises:
        UnobservableFault: if no primary output lies in the fanout of X.
    """
    if tfo is None:
        tfo = fault_cone_nets(network, fault)
    observing = [out for out in network.outputs if out in tfo]
    if not observing:
        raise UnobservableFault(
            f"fault {fault} cannot reach any primary output"
        )
    relevant = network.transitive_fanin(tfo)
    return network.subnetwork(
        relevant, outputs=observing, name=f"{network.name}.sub({fault})"
    )


def build_atpg_circuit(
    network: Network, fault: Fault, tfo: set[str] | None = None
) -> AtpgCircuit:
    """Assemble C_ψ^ATPG for ``fault`` on ``network``.

    Args:
        network: the good circuit.
        fault: the fault ψ to build the miter for.
        tfo: optional precomputed fanout cone of ``fault.net`` (engines
            cache cones per net — both polarities share one traversal).

    Raises:
        UnobservableFault: if the fault site reaches no primary output.
        ValueError: if the fault net does not exist.
    """
    if not network.has_net(fault.net):
        raise ValueError(f"fault on unknown net {fault.net!r}")

    if tfo is None:
        tfo = fault_cone_nets(network, fault)
    observing = [out for out in network.outputs if out in tfo]
    if not observing:
        raise UnobservableFault(
            f"fault {fault} cannot reach any primary output"
        )

    good = sub_circuit(network, fault, tfo=tfo)
    miter = Network(name=f"{network.name}.atpg({fault})")

    # Good side: copy C_ψ^sub verbatim.
    for net in good.topological_order():
        gate = good.gate(net)
        if gate.gate_type is GateType.INPUT:
            miter.add_input(net)
        else:
            miter.add_gate(net, gate.gate_type, gate.inputs)

    # Faulty side: duplicate the fanout cone with fresh names.  The fault
    # site becomes a constant; other cone gates read the faulty copy of
    # cone inputs and tap good-circuit nets otherwise.
    def faulty_name(net: str) -> str:
        return FAULTY_PREFIX + net

    cone_order = [net for net in good.topological_order() if net in tfo]
    for net in cone_order:
        if net == fault.net:
            const = GateType.CONST1 if fault.value else GateType.CONST0
            miter.add_gate(faulty_name(net), const, ())
            continue
        gate = good.gate(net)
        mapped = [
            faulty_name(src) if src in tfo else src for src in gate.inputs
        ]
        miter.add_gate(faulty_name(net), gate.gate_type, mapped)

    # Pairwise XOR of good and faulty outputs.
    xor_outputs = []
    for out in observing:
        xor_net = XOR_PREFIX + out
        miter.add_gate(xor_net, GateType.XOR, [out, faulty_name(out)])
        xor_outputs.append(xor_net)
    miter.set_outputs(xor_outputs)

    return AtpgCircuit(
        network=miter,
        fault=fault,
        good_nets=tuple(good.nets),
        faulty_nets=tuple(cone_order),
        observing_outputs=tuple(observing),
    )


def atpg_sat_formula(network: Network, fault: Fault) -> CnfFormula:
    """ATPG-SAT(C, ψ) as a CNF formula (Section 2's reduction)."""
    return build_atpg_circuit(network, fault).formula()


@dataclass
class FaultDelta:
    """Per-fault miter clauses against an already-loaded good circuit.

    The clauses cover only what :func:`build_atpg_circuit` adds *on top
    of* the good-circuit CNF: the duplicated faulty cone, the XOR
    comparators, and the detection assertion.  The incremental engine
    pushes them as one activation-guarded clause group onto a persistent
    solver whose base already holds the good-side clauses.

    Attributes:
        fault: the fault ψ the delta encodes.
        clauses: faulty-cone + XOR + output-assertion clauses.
        cone_nets: good-circuit names duplicated into the faulty cone.
        observing_outputs: primary outputs that can observe ψ.
    """

    fault: Fault
    clauses: list[Clause]
    cone_nets: tuple[str, ...]
    observing_outputs: tuple[str, ...]


def build_fault_delta(
    network: Network,
    fault: Fault,
    tfo: set[str],
    relevant: set[str],
    topo_order: Sequence[str],
    cache: CnfEncodingCache | None = None,
) -> FaultDelta:
    """Emit the miter clauses ``fault`` adds over the good-circuit CNF.

    Equivalent to encoding the faulty cone and XOR comparators of
    :func:`build_atpg_circuit`, minus the good side (assumed already
    present as gate clauses of every net in ``relevant``).  The cone is
    restricted to ``tfo ∩ relevant``: fanout branches that reach no
    observing output cannot affect the XOR comparators, and dropping
    them keeps every side input the faulty cone taps inside the
    constrained region.

    Args:
        network: the good circuit.
        fault: the fault ψ.
        tfo: precomputed fanout cone of ``fault.net`` (inclusive).
        relevant: nets whose good-side gate clauses the solver holds —
            the transitive fanin of the observing outputs.
        topo_order: a topological net order of ``network`` (cached by
            the caller; only cone members are visited).
        cache: optional shared per-gate CNF cache — faulty-cone gates of
            same-site faults and XOR comparators repeat across deltas.

    Raises:
        UnobservableFault: if the fault site reaches no primary output.
    """
    observing = tuple(out for out in network.outputs if out in tfo)
    if not observing:
        raise UnobservableFault(
            f"fault {fault} cannot reach any primary output"
        )
    encode = cache.gate_clauses if cache is not None else gate_clauses

    clauses: list[Clause] = []
    cone: list[str] = []
    for net in topo_order:
        if net not in tfo or net not in relevant:
            continue
        cone.append(net)
        if net == fault.net:
            const = GateType.CONST1 if fault.value else GateType.CONST0
            gate = Gate(FAULTY_PREFIX + net, const, ())
        else:
            source = network.gate(net)
            gate = Gate(
                FAULTY_PREFIX + net,
                source.gate_type,
                tuple(
                    FAULTY_PREFIX + src if src in tfo else src
                    for src in source.inputs
                ),
            )
        clauses.extend(encode(gate))

    for out in observing:
        xor_gate = Gate(
            XOR_PREFIX + out, GateType.XOR, (out, FAULTY_PREFIX + out)
        )
        clauses.extend(encode(xor_gate))
    clauses.append(frozenset({pos(XOR_PREFIX + out) for out in observing}))

    return FaultDelta(
        fault=fault,
        clauses=clauses,
        cone_nets=tuple(cone),
        observing_outputs=observing,
    )
