"""Result certification and the self-healing solver escalation ladder.

The whole reproduction rests on trusting per-fault SAT verdicts (the
paper's Figure 1 / Algorithm 1), yet every verdict is produced by a
hand-rolled CDCL core with learned-clause deletion, variable recycling,
and an incremental assumption layer — exactly the machinery where silent
wrong answers hide.  This module makes verdicts *checkable* and solver
failures *survivable*:

* **Witness certification** — a TESTABLE verdict is only accepted after
  its test pattern is replayed through the independent fault simulator
  (:mod:`repro.atpg.fault_sim`).  The simulator shares no code with the
  CNF encoder or any SAT solver, so a passing replay certifies the
  verdict end to end.
* **UNSAT certification** — a REDUNDANT verdict is certified by an
  independently *checked* DRUP refutation (:mod:`repro.sat.drup`),
  produced by re-solving the fault's miter on a fresh proof-logged
  :class:`~repro.sat.cdcl.CdclCore`.  Incremental-mode UNSATs cannot be
  proof-logged in place (variable recycling re-binds indices), which is
  why certification replays them on a fresh solver; when even the proof
  check fails, agreement of two *independent* solve paths (e.g. the
  incremental claim plus the DPLL reference) still certifies.
* **Self-healing escalation** — instead of crashing (or worse, silently
  journaling a wrong answer), a certification failure, solver exception,
  or memory/conflict budget exhaustion climbs an escalation ladder of
  independent solve paths: the engine's configured primary path → an
  assumption-core replay on the ladder's own fresh per-cone solvers →
  a fresh cold-start proof-logged CDCL → the DPLL reference.  Cross-path
  verdict disagreements are recorded in
  :class:`~repro.atpg.supervisor.RunHealth` (``disagreements``) and the
  healed verdict wins; only a fault that defeats *every* rung is
  recorded ABORTED with reason ``certification_failed``.

The ladder is deliberately conservative about what counts as certified:

==============  ========================================================
final verdict   certified when
==============  ========================================================
TESTED          witness replay detects the fault (both modes)
UNTESTABLE      ``full`` mode: checked DRUP proof, or two independent
                rungs agree UNSAT; ``witness`` mode: not certified
                (``certified is None`` — UNSAT checking is out of scope)
DROPPED         by construction (the drop *is* a fault-simulation hit)
others          nothing to certify (``certified is None``)
==============  ========================================================
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Optional

from repro.atpg.fault_sim import fault_simulate
from repro.atpg.faults import Fault
from repro.atpg.miter import (
    UnobservableFault,
    build_atpg_circuit,
    build_fault_delta,
)
from repro.atpg.supervisor import (
    ABORT_BUDGET,
    ABORT_CERTIFICATION,
    ABORT_DEADLINE,
    ABORT_MEM,
    ABORT_SOLVER,
)
from repro.circuits.network import Network
from repro.sat.cdcl import CdclCore
from repro.sat.compile import compile_formula
from repro.sat.drup import DrupLog, check_drup
from repro.sat.incremental import IncrementalSatSolver
from repro.sat.result import SatStatus

if TYPE_CHECKING:  # circular at runtime: engine imports this module
    from repro.atpg.engine import AtpgEngine, AtpgRecord, EngineStats

#: Valid values for the engine/CLI ``certify`` knob.
CERTIFY_MODES = ("off", "witness", "full")

#: Ladder rungs, in escalation order.  ``primary`` is whatever the
#: engine is configured to run (incremental per-cone solvers by
#: default).  ``core-replay`` re-solves the fault's assumption core on
#: the ladder's *own* per-cone solvers — fresh solver state (separate
#: learned database, activity, recycling history) over the same cone
#: encoding, which is exactly the cheap certification the incremental
#: mode needs: its dominant risk is state corruption (clause-DB
#: reduction, variable recycling, stale activation groups), and an
#: independent-state replay agreeing UNSAT rules that out at roughly the
#: cost of one warm incremental solve.  The rungs above it are also
#: *code*-independent of the primary path: ``fresh-cdcl`` is a
#: cold-start proof-logged core whose UNSATs carry a DRUP refutation
#: checked by :mod:`repro.sat.drup`, and ``dpll`` shares no CDCL code at
#: all.
RUNGS = ("primary", "core-replay", "fresh-cdcl", "dpll")


class CertificationError(RuntimeError):
    """A verdict failed certification (and could not be healed).

    Subclasses ``RuntimeError`` so callers that guarded against the
    engine's historical validation raise keep working.
    """

    def __init__(self, fault: Fault, kind: str, detail: str = "") -> None:
        self.fault = fault
        self.kind = kind
        self.detail = detail
        message = f"certification failed for {fault} ({kind})"
        if detail:
            message += f": {detail}"
        super().__init__(message)


def witness_ok(network: Network, fault: Fault, test: dict) -> bool:
    """True when ``test`` provably detects ``fault`` by fault simulation.

    This is the ground truth for TESTABLE verdicts: the simulator is
    independent of the CNF encoder and of every SAT solver.
    """
    return fault in fault_simulate(network, [fault], [test]).detected


class EscalationLadder:
    """Certify one fault's verdict, re-solving on failure (see module doc).

    Args:
        engine: the owning :class:`~repro.atpg.engine.AtpgEngine` —
            supplies the network, cone/encoding caches, budgets, and the
            primary solve path.
        mode: ``witness`` (certify TESTABLE only) or ``full`` (also
            certify REDUNDANT via DRUP / cross-solver agreement).
    """

    def __init__(self, engine: "AtpgEngine", mode: str) -> None:
        if mode not in ("witness", "full"):
            raise ValueError(f"unknown certify mode {mode!r}")
        self.engine = engine
        self.mode = mode
        #: observing-output cone -> (solver, relevant nets, base clauses)
        #: for the ``core-replay`` rung.  Never shared with the engine's
        #: own cone solvers: independent state is the entire point.
        self._replay_cones: dict[
            tuple[str, ...], tuple[IncrementalSatSolver, set[str], int]
        ] = {}

    # ------------------------------------------------------------------
    def process(self, fault: Fault, stats: "EngineStats") -> "AtpgRecord":
        """Solve + certify ``fault``, climbing the ladder as needed.

        Never raises for solver failures: the worst outcome is an
        ABORTED record with a machine-readable reason
        (``certification_failed`` / ``solver_error`` / budget reasons).
        """
        from repro.atpg.engine import AtpgRecord, FaultStatus

        engine = self.engine
        health = stats.health
        sat_claims = 0  # rungs that answered SAT (incl. bad witnesses)
        unsat_claims = 0  # rungs that answered UNSAT
        unsat_record: Optional["AtpgRecord"] = None
        aborted_record: Optional["AtpgRecord"] = None
        solver_error = False
        #: Whether advancing to the next rung is a failure-triggered
        #: escalation (counted) or routine UNSAT certification (not).
        failure_climb = False
        # Predicted-hard faults may be routed past the rungs that are
        # empirically doomed for them (engine._route_start_rung); the
        # skipped rungs are a scheduling choice, not escalations.
        start_rung = engine._route_start_rung(fault)
        if start_rung > 0:
            stats.hard_routed += 1

        for rung_index in range(start_rung, len(RUNGS)):
            rung = RUNGS[rung_index]
            if rung_index > start_rung:
                if engine._past_deadline():
                    break
                if failure_climb:
                    health.escalations += 1
            failure_climb = True
            try:
                record, proof_status = self._solve_rung(rung, fault, stats)
            except Exception:
                solver_error = True
                continue

            if record.status is FaultStatus.UNOBSERVABLE:
                return record  # structural fact, nothing to certify
            if record.status is FaultStatus.ABORTED:
                if record.abort_reason == ABORT_DEADLINE:
                    return record  # no time left to escalate
                aborted_record = record  # budget/mem: try the next rung
                continue

            if record.status is FaultStatus.TESTED:
                sat_claims += 1
                if record.test is not None and witness_ok(
                    engine.network, fault, record.test
                ):
                    record.certified = True
                    if unsat_claims:
                        health.disagreements += 1
                    return record
                continue  # invalid witness: escalate

            # UNTESTABLE
            unsat_claims += 1
            unsat_record = record
            if self.mode != "full":
                record.certified = None
                if sat_claims:
                    health.disagreements += 1
                return record
            if proof_status == "checked":
                record.certified = True
                if sat_claims:
                    health.disagreements += 1
                return record
            if unsat_claims >= 2:
                # Two independent solve paths agree UNSAT: certified by
                # agreement (the proof-logged rung's check failing on
                # the way here was already counted as an escalation).
                record.certified = True
                if sat_claims:
                    health.disagreements += 1
                return record
            # A lone unproved UNSAT claim: climb for corroboration.
            # Routine when coming from the primary path (its UNSATs are
            # never proof-logged); a failure when a proof check refused
            # this rung's own refutation.
            failure_climb = proof_status == "failed"
            continue

        # Ladder exhausted without a certified verdict.
        if unsat_record is not None:
            unsat_record.certified = False
            if sat_claims:
                health.disagreements += 1
            return unsat_record
        if sat_claims:
            # SAT answers whose witnesses all failed replay: journaling
            # any of them would be a silent wrong answer, so abort the
            # fault explicitly instead.
            record = AtpgRecord(
                fault=fault,
                status=FaultStatus.ABORTED,
                abort_reason=ABORT_CERTIFICATION,
            )
            record.certified = False
            return record
        if aborted_record is not None:
            return aborted_record
        if solver_error:
            return AtpgRecord(
                fault=fault,
                status=FaultStatus.ABORTED,
                abort_reason=ABORT_SOLVER,
            )
        if engine._past_deadline():
            return AtpgRecord(
                fault=fault,
                status=FaultStatus.ABORTED,
                abort_reason=ABORT_DEADLINE,
            )
        return AtpgRecord(
            fault=fault,
            status=FaultStatus.ABORTED,
            abort_reason=ABORT_SOLVER,
        )

    # ------------------------------------------------------------------
    def _solve_rung(
        self, rung: str, fault: Fault, stats: "EngineStats"
    ) -> tuple["AtpgRecord", Optional[str]]:
        """Run one ladder rung.

        Returns (record, proof_status) where proof_status is ``None``
        (no proof attempted), ``"checked"`` (UNSAT with a DRUP proof the
        checker accepted), or ``"failed"`` (UNSAT whose proof was
        rejected — treat with suspicion).
        """
        if rung == "primary":
            return self.engine._primary_record(fault, stats), None
        if rung == "core-replay":
            return self._replay_record(fault, stats)
        if rung == "fresh-cdcl":
            return self._fresh_record(
                fault, stats, with_proof=self.mode == "full"
            )
        return self._reference_record(fault, stats)

    def _replay_record(
        self, fault: Fault, stats: "EngineStats"
    ) -> tuple["AtpgRecord", Optional[str]]:
        """Assumption-core replay on the ladder's own per-cone solver.

        Same CDCL code as the primary incremental path, deliberately
        *different state*: a separate solver per observing cone with its
        own learned database, activities, and recycling history.  The
        incremental path's dominant failure mode is state corruption
        (clause-DB reduction, variable recycling, stale activation
        groups), so an independent-state replay agreeing UNSAT certifies
        against it at warm-solve cost — the checked-proof rung stays in
        reserve for disagreements and code-level bugs.
        """
        from repro.atpg.engine import AtpgRecord, FaultStatus

        engine = self.engine
        start = time.perf_counter()
        tfo = engine.fault_cone(fault.net)
        observing = tuple(
            out for out in engine.network.outputs if out in tfo
        )
        if not observing:
            stats.build_time += time.perf_counter() - start
            return (
                AtpgRecord(fault=fault, status=FaultStatus.UNOBSERVABLE),
                None,
            )
        solver, relevant, base_clauses = self._replay_solver(
            observing, stats
        )
        delta = build_fault_delta(
            engine.network,
            fault,
            tfo=tfo,
            relevant=relevant,
            topo_order=engine._topo_order(),
            cache=engine._encoding_cache,
        )
        built = time.perf_counter()

        group = solver.push_group(delta.clauses)
        num_variables = solver.num_vars
        encoded = time.perf_counter()

        result = solver.solve(
            group,
            max_conflicts=engine.max_conflicts,
            deadline_at=engine._deadline_at,
            mem_budget_mb=engine.mem_budget_mb,
            model_names=engine.network.inputs,
        )
        solver.retire(group)
        solved = time.perf_counter()

        stats.build_time += built - start
        stats.encode_time += encoded - built
        stats.solve_time += solved - encoded
        stats.sat_calls += 1
        stats.propagations += result.stats.propagations
        stats.decisions += result.stats.decisions
        stats.conflicts += result.stats.conflicts

        record = AtpgRecord(
            fault=fault,
            status=FaultStatus.ABORTED,
            num_variables=num_variables,
            num_clauses=base_clauses + group.num_clauses,
            build_time=built - start,
            encode_time=encoded - built,
            solve_time=solved - encoded,
            decisions=result.stats.decisions,
            conflicts=result.stats.conflicts,
            propagations=result.stats.propagations,
        )
        if result.status is SatStatus.SAT:
            assert result.assignment is not None
            record.status = FaultStatus.TESTED
            record.test = engine._extract_test(result.assignment)
        elif result.status is SatStatus.UNSAT:
            record.status = FaultStatus.UNTESTABLE
        else:
            record.abort_reason = self._unknown_reason(result.stats)
        return record, None

    def _replay_solver(
        self, observing: tuple[str, ...], stats: "EngineStats"
    ) -> tuple[IncrementalSatSolver, set[str], int]:
        """The ladder's persistent replay solver for one observing cone
        (built exactly like the engine's, but never shared with it)."""
        entry = self._replay_cones.get(observing)
        if entry is None:
            engine = self.engine
            setup_start = time.perf_counter()
            relevant = engine.network.transitive_fanin(observing)
            clauses = []
            encode = engine._encoding_cache.gate_clauses
            gate = engine.network.gate
            for net in engine._topo_order():
                if net in relevant:
                    clauses.extend(encode(gate(net)))
            solver = IncrementalSatSolver()
            solver.add_base(clauses)
            entry = (solver, relevant, len(clauses))
            self._replay_cones[observing] = entry
            stats.encode_time += time.perf_counter() - setup_start
        return entry

    def _miter_formula(self, fault: Fault, stats: "EngineStats"):
        """Build + encode the fault's miter (UnobservableFault passes
        through); returns (formula, compiled CNF, build_t, encode_t)."""
        engine = self.engine
        start = time.perf_counter()
        atpg = build_atpg_circuit(
            engine.network, fault, tfo=engine.fault_cone(fault.net)
        )
        built = time.perf_counter()
        formula = atpg.formula(cache=engine._encoding_cache)
        compiled = compile_formula(formula)
        encoded = time.perf_counter()
        stats.build_time += built - start
        stats.encode_time += encoded - built
        return formula, compiled, built - start, encoded - built

    def _fresh_record(
        self, fault: Fault, stats: "EngineStats", with_proof: bool
    ) -> tuple["AtpgRecord", Optional[str]]:
        """Independent re-solve on a cold proof-logged CDCL core."""
        from repro.atpg.engine import AtpgRecord, FaultStatus

        engine = self.engine
        try:
            _, compiled, build_time, encode_time = self._miter_formula(
                fault, stats
            )
        except UnobservableFault:
            return (
                AtpgRecord(fault=fault, status=FaultStatus.UNOBSERVABLE),
                None,
            )

        solve_start = time.perf_counter()
        proof = DrupLog() if with_proof else None
        core = CdclCore(proof=proof)
        for _ in range(compiled.num_vars):
            core.new_var()
        for clause in compiled.clauses:
            # Copy: the core permutes clause lists in place, and the
            # compiled clauses double as the checker's formula.
            if not core.add_clause(list(clause)):
                break
        if core.root_failed:
            status = SatStatus.UNSAT
            solver_stats = None
        else:
            status, solver_stats = core.solve(
                max_conflicts=engine.max_conflicts,
                deadline_at=engine._deadline_at,
                mem_budget_mb=engine.mem_budget_mb,
            )
        solve_time = time.perf_counter() - solve_start
        stats.solve_time += solve_time
        stats.sat_calls += 1
        if solver_stats is not None:
            stats.propagations += solver_stats.propagations
            stats.decisions += solver_stats.decisions
            stats.conflicts += solver_stats.conflicts

        record = AtpgRecord(
            fault=fault,
            status=FaultStatus.ABORTED,
            num_variables=compiled.num_vars,
            num_clauses=len(compiled.clauses),
            build_time=build_time,
            encode_time=encode_time,
            solve_time=solve_time,
            decisions=solver_stats.decisions if solver_stats else 0,
            conflicts=solver_stats.conflicts if solver_stats else 0,
            propagations=solver_stats.propagations if solver_stats else 0,
        )
        proof_status: Optional[str] = None
        if status is SatStatus.SAT:
            record.status = FaultStatus.TESTED
            record.test = engine._extract_test(
                compiled.decode_assignment(core.values)
            )
        elif status is SatStatus.UNSAT:
            record.status = FaultStatus.UNTESTABLE
            if with_proof:
                outcome = check_drup(compiled.clauses, proof)
                proof_status = "checked" if outcome.ok else "failed"
        else:
            record.abort_reason = self._unknown_reason(solver_stats)
        return record, proof_status

    def _reference_record(
        self, fault: Fault, stats: "EngineStats"
    ) -> tuple["AtpgRecord", Optional[str]]:
        """Last rung: the DPLL reference solver (no shared CDCL code)."""
        from repro.atpg.engine import AtpgRecord, FaultStatus, make_solver

        engine = self.engine
        try:
            formula, _, build_time, encode_time = self._miter_formula(
                fault, stats
            )
        except UnobservableFault:
            return (
                AtpgRecord(fault=fault, status=FaultStatus.UNOBSERVABLE),
                None,
            )
        solver = make_solver("dpll", engine.max_conflicts)
        solve_start = time.perf_counter()
        result = solver.solve(formula)
        solve_time = time.perf_counter() - solve_start
        stats.solve_time += solve_time
        stats.sat_calls += 1
        stats.propagations += result.stats.propagations
        stats.decisions += result.stats.decisions
        stats.conflicts += result.stats.conflicts

        record = AtpgRecord(
            fault=fault,
            status=FaultStatus.ABORTED,
            num_variables=formula.num_variables(),
            num_clauses=formula.num_clauses(),
            build_time=build_time,
            encode_time=encode_time,
            solve_time=solve_time,
            decisions=result.stats.decisions,
            conflicts=result.stats.conflicts,
            propagations=result.stats.propagations,
        )
        if result.status is SatStatus.SAT:
            record.status = FaultStatus.TESTED
            record.test = engine._extract_test(result.assignment or {})
        elif result.status is SatStatus.UNSAT:
            record.status = FaultStatus.UNTESTABLE
        else:
            record.abort_reason = self._unknown_reason(result.stats)
        return record, None

    def _unknown_reason(self, solver_stats) -> str:
        """Map an UNKNOWN answer to its machine-readable abort reason."""
        if solver_stats is not None and getattr(
            solver_stats, "mem_limit_hit", False
        ):
            return ABORT_MEM
        if self.engine._past_deadline():
            return ABORT_DEADLINE
        return ABORT_BUDGET
