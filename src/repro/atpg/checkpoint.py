"""Checkpoint journal: resumable ATPG runs over a JSONL record log.

A long unattended ATPG run can die for many reasons — run deadline,
OOM-killed worker, Ctrl-C, a machine reboot.  The checkpoint layer makes
those deaths cheap: per-fault :class:`~repro.atpg.engine.AtpgRecord`
results are appended to a JSON-lines journal *as shards complete*, and a
later run started with ``resume_from`` skips every fault whose verdict
is already journaled, re-dispatching only the remainder.  Because the
parallel coordinator replays the canonical fault order when merging
(see :mod:`repro.atpg.parallel`), a resumed run produces the same final
merge as an uninterrupted one.

Journal layout — one JSON object per line:

* line 1: a header ``{"type": "header", "version": 1, "circuit": ...,
  "config": {...}}``;
* then records ``{"type": "record", "net": ..., "value": ...,
  "status": ..., "test": ..., "abort_reason": ..., ...}``.

The format is append-only and crash-tolerant: a truncated trailing line
(the write the crash interrupted) is ignored on load, and duplicate
fault lines (a resumed run journaling into the same file) resolve to the
last occurrence.

Which journaled verdicts are *final* on resume:

* ``TESTED`` / ``UNTESTABLE`` / ``UNOBSERVABLE`` / ``DROPPED`` — kept
  (the replay merge re-validates dropping globally anyway);
* ``ABORTED`` with reason ``budget_exhausted`` / ``mem_budget_exceeded``
  — kept: the budgets are deterministic, re-running would abort again;
* ``ABORTED`` with an orchestration reason (deadline, shard timeout,
  worker crash) — **re-dispatched**: those faults never got their full
  budget, which is exactly what resuming is for.

A journal is *data crossing a trust boundary*: it may come from an older
run, a different solver build, or a corrupted disk.
:func:`verified_resumable_records` therefore re-simulates every
journaled TESTED pattern before trusting it — a cheap witness check —
and hands rejects back to the caller for re-dispatch instead of letting
a stale wrong verdict survive into the merged summary.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional, TextIO

from repro.atpg.engine import (
    ABORT_BUDGET,
    ABORT_MEM,
    AtpgRecord,
    AtpgSummary,
    FaultStatus,
)
from repro.atpg.faults import Fault

JOURNAL_VERSION = 1


def record_to_dict(record: AtpgRecord) -> dict:
    """JSON-ready view of one per-fault record (journal line payload)."""
    return {
        "type": "record",
        "net": record.fault.net,
        "value": record.fault.value,
        "status": record.status.value,
        "num_variables": record.num_variables,
        "num_clauses": record.num_clauses,
        "build_time": record.build_time,
        "encode_time": record.encode_time,
        "solve_time": record.solve_time,
        "decisions": record.decisions,
        "conflicts": record.conflicts,
        "propagations": record.propagations,
        "test": record.test,
        "abort_reason": record.abort_reason,
        "certified": record.certified,
    }


def record_from_dict(payload: dict) -> AtpgRecord:
    """Rebuild an :class:`AtpgRecord` from its journal line."""
    return AtpgRecord(
        fault=Fault(payload["net"], payload["value"]),
        status=FaultStatus(payload["status"]),
        num_variables=payload.get("num_variables", 0),
        num_clauses=payload.get("num_clauses", 0),
        build_time=payload.get("build_time", 0.0),
        encode_time=payload.get("encode_time", 0.0),
        solve_time=payload.get("solve_time", 0.0),
        decisions=payload.get("decisions", 0),
        conflicts=payload.get("conflicts", 0),
        # Added for predictor training data; old journals default to 0.
        propagations=payload.get("propagations", 0),
        test=payload.get("test"),
        abort_reason=payload.get("abort_reason"),
        certified=payload.get("certified"),
    )


def is_final(record: AtpgRecord) -> bool:
    """True when a journaled verdict need not be re-dispatched on
    resume (see the module docstring for the rule).  Budget reasons
    (conflict or memory) are deterministic — re-running would abort
    again — so they are final; orchestration reasons are not."""
    if record.status is not FaultStatus.ABORTED:
        return True
    return record.abort_reason in (ABORT_BUDGET, ABORT_MEM)


class CheckpointError(ValueError):
    """A journal could not be loaded (bad header, circuit mismatch)."""


def _failpoint(name: str) -> None:
    # Lazily bound: repro.service.__init__ imports modules that import
    # this one, so a top-level import would cycle.  Rebinds itself on
    # first use.
    global _failpoint
    from repro.service.failpoints import failpoint as _failpoint  # noqa: PLW0603

    _failpoint(name)


class CheckpointWriter:
    """Append-only JSONL journal of per-fault records.

    Safe to point at the journal being resumed: records are appended and
    duplicates resolve to the last line on load.  Every write is flushed
    so a killed run loses at most the line being written.

    Args:
        fence: optional write-side fencing guard (a callable raising
            when ownership is lost, with a ``.token`` attribute — see
            :class:`repro.service.lease.FenceGuard`).  When set, every
            append first proves ownership and every record line is
            stamped with the fencing token, so a journal tells exactly
            which lease generation settled each fault and a zombie
            writer dies at the append instead of corrupting the new
            owner's journal.

    Environmental write failures (``ENOSPC``/``EIO``) surface as
    :class:`repro.io.atomic.StorageError` so the service can land the
    job in FAILED-with-reason instead of a traceback.
    """

    def __init__(
        self,
        path: str | Path,
        circuit: str,
        config: Optional[dict] = None,
        fence=None,
    ) -> None:
        self.path = Path(path)
        self.circuit = circuit
        self.fence = fence
        new_file = not self.path.exists() or self.path.stat().st_size == 0
        if not new_file:
            # A journal killed mid-write ends in a torn partial line with
            # no newline.  Appending straight after it would glue the
            # first new record onto the torn fragment, losing both, so
            # start on a fresh line.
            with open(self.path, "rb") as fh:
                fh.seek(-1, 2)
                torn_tail = fh.read(1) != b"\n"
        self._fh: Optional[TextIO] = open(self.path, "a", encoding="utf-8")
        if not new_file and torn_tail:
            self._fh.write("\n")
            self._fh.flush()
        if new_file:
            self._write_line(
                {
                    "type": "header",
                    "version": JOURNAL_VERSION,
                    "circuit": circuit,
                    "config": config or {},
                }
            )

    def _write_line(self, payload: dict) -> None:
        assert self._fh is not None, "writer is closed"
        try:
            _failpoint("journal.append.pre_flush")
            self._fh.write(json.dumps(payload) + "\n")
            self._fh.flush()
            _failpoint("journal.append.post_flush")
        except OSError as exc:
            from repro.io.atomic import STORAGE_ERRNOS, StorageError

            if exc.errno in STORAGE_ERRNOS:
                raise StorageError("journal append", self.path, exc) from exc
            raise

    def write_record(self, record: AtpgRecord) -> None:
        """Journal one per-fault record (flushed immediately).

        With a fence installed, ownership is proven *before* the append
        (:class:`repro.service.lease.StaleTokenError` on loss) and the
        line carries the fencing token.
        """
        payload = record_to_dict(record)
        if self.fence is not None:
            self.fence()
            payload["fence"] = self.fence.token
        self._write_line(payload)

    def write_summary(self, summary: AtpgSummary) -> None:
        """Journal every record of a completed shard summary."""
        for record in summary.records:
            self.write_record(record)

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "CheckpointWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def load_checkpoint(
    path: str | Path, circuit: Optional[str] = None
) -> tuple[dict, dict[Fault, AtpgRecord]]:
    """Load a journal written by :class:`CheckpointWriter`.

    Args:
        path: the JSONL journal.
        circuit: when given, the journal header's circuit name must
            match (resuming against the wrong netlist is always a bug).

    Returns:
        (header, records) where records maps each journaled fault to its
        *last* journaled record.

    Raises:
        CheckpointError: missing/corrupt header or circuit mismatch.
    """
    path = Path(path)
    header: Optional[dict] = None
    records: dict[Fault, AtpgRecord] = {}
    with open(path, encoding="utf-8") as fh:
        for line_no, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError:
                # A truncated trailing line is the normal signature of a
                # killed run; anything torn mid-file is also unusable.
                continue
            if line_no == 1:
                if payload.get("type") != "header":
                    raise CheckpointError(
                        f"{path}: first journal line is not a header"
                    )
                if payload.get("version") != JOURNAL_VERSION:
                    raise CheckpointError(
                        f"{path}: unsupported journal version "
                        f"{payload.get('version')!r}"
                    )
                header = payload
                continue
            if payload.get("type") != "record":
                continue
            record = record_from_dict(payload)
            records[record.fault] = record
    if header is None:
        raise CheckpointError(f"{path}: journal has no header")
    if circuit is not None and header.get("circuit") != circuit:
        raise CheckpointError(
            f"{path}: journal is for circuit "
            f"{header.get('circuit')!r}, not {circuit!r}"
        )
    return header, records


def resumable_records(
    path: str | Path, circuit: Optional[str] = None
) -> dict[Fault, AtpgRecord]:
    """The journaled records a resumed run can treat as settled."""
    _, records = load_checkpoint(path, circuit=circuit)
    return {
        fault: record
        for fault, record in records.items()
        if is_final(record)
    }


class ResumeParityWarning(UserWarning):
    """Resuming in incremental solver mode: coverage and verdicts match
    an uninterrupted run, but test *vectors* may differ (persistent
    per-cone solver state depends on the fault subsequence actually
    solved).  ``fresh`` mode resumes bit-identically."""


class ResumeRejectedRecordsWarning(UserWarning):
    """Journaled TESTED records whose patterns failed witness replay
    were rejected at the resume trust boundary and re-dispatched."""


def verified_resumable_records(
    path: str | Path,
    network,
    circuit: Optional[str] = None,
) -> tuple[dict[Fault, AtpgRecord], list[AtpgRecord]]:
    """Settled journal records, with TESTED patterns witness-checked.

    Every journaled TESTED record's pattern is replayed through fault
    simulation against ``network`` — the journal crosses a trust
    boundary, so a stale or corrupt wrong verdict must not survive into
    a resumed run's summary.  Verified TESTED records come back with
    ``certified=True``.

    Args:
        network: the :class:`~repro.circuits.network.Network` being
            resumed (ground truth for the witness replay).
        circuit: forwarded to :func:`load_checkpoint` header validation.

    Returns:
        ``(verified, rejected)`` — the records safe to treat as settled,
        and the TESTED records that failed replay (their faults must be
        re-dispatched; each is also an implicit cross-run disagreement).
    """
    from repro.atpg.fault_sim import fault_simulate

    settled = resumable_records(path, circuit=circuit)
    verified: dict[Fault, AtpgRecord] = {}
    rejected: list[AtpgRecord] = []
    for fault, record in settled.items():
        if record.status is not FaultStatus.TESTED:
            verified[fault] = record
            continue
        if record.test is not None and fault in fault_simulate(
            network, [fault], [record.test]
        ).detected:
            record.certified = True
            verified[fault] = record
        else:
            rejected.append(record)
    return verified, rejected
