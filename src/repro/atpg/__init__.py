"""ATPG substrate: faults, miters, SAT-based generation, fault simulation."""

from repro.atpg.compaction import (
    coverage_of,
    greedy_cover_compaction,
    reverse_order_compaction,
)
from repro.atpg.checkpoint import (
    CheckpointError,
    CheckpointWriter,
    load_checkpoint,
    resumable_records,
)
from repro.atpg.engine import (
    ABORT_BUDGET,
    ABORT_DEADLINE,
    ABORT_SHARD_CRASHED,
    ABORT_SHARD_TIMEOUT,
    AtpgEngine,
    AtpgRecord,
    AtpgSummary,
    EngineStats,
    FaultStatus,
    RunHealth,
    make_solver,
)
from repro.atpg.supervisor import (
    FailedShard,
    ShardSupervisor,
    SupervisorReport,
)
from repro.atpg.fault_sim import (
    FaultSimResult,
    PatternBlockStore,
    fault_simulate,
    pattern_detects,
    random_pattern_coverage,
    simulate_fault,
)
from repro.atpg.parallel import (
    ParallelAtpgEngine,
    shard_faults_by_cone,
)
from repro.atpg.faults import (
    Fault,
    collapse_faults,
    detectable_outputs,
    equivalence_classes,
    faults_on,
    full_fault_list,
    inject_fault,
)
from repro.atpg.podem import PodemEngine, PodemResult, PodemStatus
from repro.atpg.miter import (
    AtpgCircuit,
    UnobservableFault,
    atpg_sat_formula,
    build_atpg_circuit,
    fault_cone_nets,
    sub_circuit,
)

__all__ = [
    "ABORT_BUDGET",
    "ABORT_DEADLINE",
    "ABORT_SHARD_CRASHED",
    "ABORT_SHARD_TIMEOUT",
    "AtpgCircuit",
    "AtpgEngine",
    "AtpgRecord",
    "AtpgSummary",
    "CheckpointError",
    "CheckpointWriter",
    "EngineStats",
    "FailedShard",
    "Fault",
    "FaultSimResult",
    "FaultStatus",
    "ParallelAtpgEngine",
    "PatternBlockStore",
    "RunHealth",
    "ShardSupervisor",
    "SupervisorReport",
    "load_checkpoint",
    "resumable_records",
    "PodemEngine",
    "PodemResult",
    "PodemStatus",
    "UnobservableFault",
    "atpg_sat_formula",
    "build_atpg_circuit",
    "collapse_faults",
    "coverage_of",
    "detectable_outputs",
    "equivalence_classes",
    "fault_cone_nets",
    "fault_simulate",
    "faults_on",
    "full_fault_list",
    "greedy_cover_compaction",
    "inject_fault",
    "make_solver",
    "pattern_detects",
    "random_pattern_coverage",
    "shard_faults_by_cone",
    "reverse_order_compaction",
    "simulate_fault",
]
