"""Test-set compaction.

ATPG engines emit one pattern per targeted fault; production test sets
are then *compacted* because tester time is expensive.  Two standard
techniques, both exact about preserving coverage:

* :func:`reverse_order_compaction` — fault-simulate the patterns in
  reverse generation order with fault dropping; patterns that detect
  nothing new are discarded (static compaction).
* :func:`greedy_cover_compaction` — build the full pattern×fault
  detection matrix and greedily pick the pattern covering the most
  remaining faults (set-cover heuristic; usually smaller, costs more
  simulation).
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.atpg.fault_sim import fault_simulate
from repro.atpg.faults import Fault
from repro.circuits.network import Network

Pattern = Mapping[str, int]


def detected_faults(
    network: Network, faults: Sequence[Fault], pattern: Pattern
) -> set[Fault]:
    """Faults from ``faults`` detected by a single pattern."""
    outcome = fault_simulate(network, list(faults), [pattern])
    return set(outcome.detected)


def reverse_order_compaction(
    network: Network,
    faults: Sequence[Fault],
    patterns: Sequence[Pattern],
) -> list[Pattern]:
    """Static compaction by reverse-order fault simulation.

    Later patterns (generated for the hard faults) tend to detect many
    easy faults incidentally, making earlier patterns redundant —
    the classic observation behind reverse-order compaction.

    Returns:
        A subsequence of ``patterns`` with identical fault coverage.
    """
    remaining = set(faults)
    kept: list[Pattern] = []
    for pattern in reversed(list(patterns)):
        if not remaining:
            break
        hits = detected_faults(network, sorted(remaining), pattern)
        if hits:
            kept.append(pattern)
            remaining -= hits
    kept.reverse()
    return kept


def greedy_cover_compaction(
    network: Network,
    faults: Sequence[Fault],
    patterns: Sequence[Pattern],
) -> list[Pattern]:
    """Set-cover compaction over the full detection matrix.

    Returns:
        A subset of ``patterns`` (original order) with identical
        coverage, chosen greedily by marginal detection count.
    """
    fault_list = list(faults)
    matrix: list[set[Fault]] = []
    covered_any: set[Fault] = set()
    for pattern in patterns:
        hits = detected_faults(network, fault_list, pattern)
        matrix.append(hits)
        covered_any |= hits

    chosen: list[int] = []
    remaining = set(covered_any)
    while remaining:
        best_index = max(
            range(len(patterns)),
            key=lambda i: (len(matrix[i] & remaining), -i),
        )
        gain = matrix[best_index] & remaining
        if not gain:  # pragma: no cover - remaining ⊆ covered_any
            break
        chosen.append(best_index)
        remaining -= gain
    chosen.sort()
    return [patterns[i] for i in chosen]


def coverage_of(
    network: Network, faults: Sequence[Fault], patterns: Sequence[Pattern]
) -> float:
    """Fraction of ``faults`` detected by ``patterns``."""
    if not faults:
        return 1.0
    outcome = fault_simulate(network, list(faults), list(patterns))
    return outcome.coverage
