"""SCOAP testability measures (Goldstein; cf. Fujiwara [10]).

Controllability CC0/CC1 — the cost of setting a net to 0/1 — and
observability CO — the cost of propagating a net's value to an output —
computed by the classic recurrences:

* CC of a PI is 1; of a constant, 1 for its value and ∞ for the other.
* AND: CC1 = Σ CC1(inputs)+1, CC0 = min CC0(input)+1 (dually OR; the
  inverting types swap their output polarities; XOR enumerates parities).
* CO of an output net is 0; through an AND gate input, CO(input) =
  CO(output) + Σ CC1(side inputs) + 1, and so on.

Used here to guide PODEM's backtrace (choosing the *easiest* input
rather than the first open one) and as a cheap per-fault difficulty
predictor to compare against the cut-width account.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterable
from dataclasses import dataclass

from repro.atpg.faults import Fault
from repro.circuits.gates import GateType
from repro.circuits.network import Network

#: Sentinel for "uncontrollable" (constants' impossible value).
INFINITY = float("inf")


@dataclass
class ScoapMeasures:
    """Per-net SCOAP values for one circuit."""

    cc0: dict[str, float]
    cc1: dict[str, float]
    co: dict[str, float]

    def controllability(self, net: str, value: int) -> float:
        """CC0 or CC1 of ``net``."""
        return self.cc1[net] if value else self.cc0[net]

    def detection_cost(self, net: str, stuck_value: int) -> float:
        """SCOAP estimate of testing net/sa-``stuck_value``:
        cost of driving the opposite value plus observing the net."""
        return self.controllability(net, 1 - stuck_value) + self.co[net]


def _gate_controllability(
    gate_type: GateType, in0: list[float], in1: list[float]
) -> tuple[float, float]:
    """(CC0, CC1) of a gate output from its input controllabilities."""
    if gate_type is GateType.BUF:
        return in0[0], in1[0]
    if gate_type is GateType.NOT:
        return in1[0], in0[0]
    if gate_type in (GateType.AND, GateType.NAND):
        c_all1 = sum(in1) + 1
        c_any0 = min(in0) + 1
        if gate_type is GateType.AND:
            return c_any0, c_all1
        return c_all1, c_any0
    if gate_type in (GateType.OR, GateType.NOR):
        c_all0 = sum(in0) + 1
        c_any1 = min(in1) + 1
        if gate_type is GateType.OR:
            return c_all0, c_any1
        return c_any1, c_all0
    if gate_type in (GateType.XOR, GateType.XNOR):
        best = {0: INFINITY, 1: INFINITY}
        n = len(in0)
        for combo in itertools.product((0, 1), repeat=n):
            parity = sum(combo) & 1
            cost = sum(
                in1[i] if combo[i] else in0[i] for i in range(n)
            ) + 1
            best[parity] = min(best[parity], cost)
        if gate_type is GateType.XNOR:
            best = {0: best[1], 1: best[0]}
        return best[0], best[1]
    raise ValueError(f"no controllability rule for {gate_type!r}")


def compute_scoap(network: Network) -> ScoapMeasures:
    """Compute CC0/CC1/CO for every net of ``network``."""
    cc0: dict[str, float] = {}
    cc1: dict[str, float] = {}

    for net in network.topological_order():
        gate = network.gate(net)
        gtype = gate.gate_type
        if gtype is GateType.INPUT:
            cc0[net] = cc1[net] = 1.0
        elif gtype is GateType.CONST0:
            cc0[net], cc1[net] = 1.0, INFINITY
        elif gtype is GateType.CONST1:
            cc0[net], cc1[net] = INFINITY, 1.0
        else:
            in0 = [cc0[src] for src in gate.inputs]
            in1 = [cc1[src] for src in gate.inputs]
            cc0[net], cc1[net] = _gate_controllability(gtype, in0, in1)

    co: dict[str, float] = {net: INFINITY for net in network.nets}
    for out in network.outputs:
        co[out] = 0.0
    for net in reversed(network.topological_order()):
        gate = network.gate(net)
        gtype = gate.gate_type
        if gtype.is_source:
            continue
        base = co[net]
        if base == INFINITY:
            continue
        for index, src in enumerate(gate.inputs):
            side = [s for k, s in enumerate(gate.inputs) if k != index]
            if gtype in (GateType.BUF, GateType.NOT):
                cost = base + 1
            elif gtype in (GateType.AND, GateType.NAND):
                cost = base + sum(cc1[s] for s in side) + 1
            elif gtype in (GateType.OR, GateType.NOR):
                cost = base + sum(cc0[s] for s in side) + 1
            elif gtype in (GateType.XOR, GateType.XNOR):
                cost = base + sum(min(cc0[s], cc1[s]) for s in side) + 1
            else:  # pragma: no cover - exhaustive
                raise ValueError(f"no observability rule for {gtype!r}")
            if cost < co[src]:
                co[src] = cost

    return ScoapMeasures(cc0=cc0, cc1=cc1, co=co)


def order_faults(
    network: Network,
    faults: Iterable[Fault],
    measures: ScoapMeasures | None = None,
) -> list[Fault]:
    """Faults sorted easiest-first by SCOAP detection cost.

    Dropping-oriented ordering for the ATPG engines: tests for easy
    faults tend to be cheap to generate and to cover many other faults,
    so generating them first maximises how much of the hard tail is
    fault-dropped instead of SAT-solved.  Ties (and infinite costs)
    break on the fault itself, keeping the order deterministic.
    """
    if measures is None:
        measures = compute_scoap(network)
    return sorted(
        faults,
        key=lambda f: (measures.detection_cost(f.net, f.value), f),
    )


def hardest_faults(
    network: Network, top: int = 10
) -> list[tuple[str, int, float]]:
    """The ``top`` faults with the highest SCOAP detection cost.

    Returns:
        (net, stuck value, cost) triples, most expensive first; faults
        with infinite cost (provably unexcitable/unobservable under
        SCOAP's approximation) come first of all.
    """
    measures = compute_scoap(network)
    scored = [
        (net, value, measures.detection_cost(net, value))
        for net in network.nets
        for value in (0, 1)
    ]
    # Equal costs tie-break on (net, value) so the selection is a pure
    # function of the circuit — independent of net insertion order and
    # of PYTHONHASHSEED.
    scored.sort(key=lambda item: (-item[2], item[0], item[1]))
    return scored[:top]
