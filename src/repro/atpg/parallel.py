"""Parallel batched ATPG: shard the fault list across worker processes.

The paper's Figure-1 experiment is embarrassingly parallel — thousands
of independent ATPG-SAT instances — so the fan-out itself is easy.  The
two things worth being careful about are *cache locality* and
*determinism*:

* **Sharding by fanout cone.**  Faults whose fanout cones overlap build
  miters that share most of their gates, so a worker processing them
  back-to-back gets high hit rates from its per-process
  :class:`~repro.sat.tseitin.CnfEncodingCache`.  Faults are therefore
  grouped by the primary outputs that can observe them and whole groups
  are packed onto shards (greedy LPT on estimated cone work), instead of
  striping faults round-robin.

* **Deterministic reconciliation of fault dropping.**  Each worker
  fault-drops only within its shard, so the raw union of worker records
  depends on the sharding.  The coordinator fixes this with a *replay
  merge*: it walks the canonical sequential fault order, re-checking
  each fault against the tests kept so far (batched, via
  :class:`~repro.atpg.fault_sim.PatternBlockStore`) and taking the
  worker's SAT result otherwise.  An ATPG-SAT *verdict* depends only on
  (circuit, fault) — never on dropping history — so statuses and
  coverage always match the sequential engine.  In ``fresh`` solver
  mode the *model* is history-independent too and the replay reproduces
  the sequential records exactly: same statuses, same tests, same drop
  attributions, regardless of worker count.  In ``incremental`` mode
  (the default) each worker's persistent solver state depends on its
  shard, so test vectors (and hence the TESTED/DROPPED split) can
  differ from a sequential run — coverage, UNSAT proofs, and test
  validity are unaffected.  The only sequential SAT calls the
  coordinator ever redoes itself are for faults a worker dropped
  in-shard that the global replay does not drop (counted as
  ``replay_solves``; rare in practice).

Execution is *supervised* (:mod:`repro.atpg.supervisor`): shards run in
single-purpose forked workers with per-shard wall-clock timeouts, crash
detection, bounded retry with automatic shard splitting, and graceful
degradation to in-process execution when forking is unavailable or the
pool keeps dying.  Whatever happens, :meth:`ParallelAtpgEngine.run`
terminates with a *complete* :class:`AtpgSummary`: faults whose shards
could not be run are recorded ABORTED with a machine-readable reason
(``shard_timeout`` / ``shard_crashed`` / ``deadline_exceeded``) and the
supervision counters land in ``summary.stats.health``.  Per-fault
results can be journaled to a JSONL checkpoint as shards complete and a
killed run resumed from it (:mod:`repro.atpg.checkpoint`).

``ParallelAtpgEngine`` falls back to in-process execution when
``workers <= 1`` or the platform cannot fork, so results (and tests)
never depend on the platform.
"""

from __future__ import annotations

import multiprocessing
import time
import warnings
from collections.abc import Sequence
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Optional

from repro.atpg.checkpoint import (
    CheckpointWriter,
    ResumeParityWarning,
    ResumeRejectedRecordsWarning,
    verified_resumable_records,
)
from repro.atpg.engine import (
    ABORT_DEADLINE,
    AtpgEngine,
    AtpgRecord,
    AtpgSummary,
    EngineStats,
    FaultStatus,
)
from repro.atpg.fault_sim import PatternBlockStore
from repro.atpg.faults import Fault
from repro.atpg.scoap import INFINITY, compute_scoap
from repro.atpg.supervisor import ShardSupervisor
from repro.circuits.network import Network
from repro.sat.tseitin import CnfEncodingCache


@dataclass
class _ShardJob:
    """Everything a worker needs to run one shard (must pickle)."""

    network: Network
    faults: list[Fault]
    solver: str
    max_conflicts: Optional[int]
    validate: bool
    drop_block_size: int
    fault_dropping: bool
    solver_mode: str
    encoding_cache: Optional[CnfEncodingCache]
    deadline_at: Optional[float] = None
    certify: str = "off"
    mem_budget_mb: Optional[float] = None
    share_learned: str = "cone"
    budget_policy: str = "fixed"
    #: The coordinator's resolved HardnessModel (a plain dataclass, so
    #: it pickles); workers must not re-load it from disk independently.
    hardness_model: Optional[object] = None


def _run_shard(job: _ShardJob, on_record=None) -> AtpgSummary:
    """Worker entry point: sequential ATPG over one shard."""
    engine = AtpgEngine(
        job.network,
        solver=job.solver,
        max_conflicts=job.max_conflicts,
        validate=job.validate,
        drop_block_size=job.drop_block_size,
        order="given",  # shards arrive pre-ordered canonically
        solver_mode=job.solver_mode,
        encoding_cache=job.encoding_cache,
        # The coordinator validated the network once already.
        validate_network=False,
        certify=job.certify,
        mem_budget_mb=job.mem_budget_mb,
        share_learned=job.share_learned,
        budget_policy=job.budget_policy,
        hardness_model=job.hardness_model,
    )
    return engine.run(
        faults=job.faults,
        fault_dropping=job.fault_dropping,
        deadline_at=job.deadline_at,
        on_record=on_record,
    )


def _split_shard(job: _ShardJob) -> list[_ShardJob]:
    """Halve a failing shard (canonical fault order preserved) so the
    supervisor can isolate a poisonous fault by bisection."""
    if len(job.faults) < 2:
        return [job]
    mid = len(job.faults) // 2
    return [
        replace(job, faults=job.faults[:mid]),
        replace(job, faults=job.faults[mid:]),
    ]


def shard_faults_by_cone(
    network: Network,
    faults: Sequence[Fault],
    num_shards: int,
    predictor=None,
) -> list[list[Fault]]:
    """Partition ``faults`` into cone-coherent, load-balanced shards.

    Faults are grouped by the set of primary outputs observing them (a
    cheap proxy for "miters share gates"); groups are then packed onto
    shards greedily, heaviest first, by estimated work.  Without a
    ``predictor``, a fault's work estimate multiplies its SCOAP
    detection cost (how hard exciting and propagating it is — the
    per-fault *search* effort predictor) with the TFI size of its fanout
    cone (the per-fault *instance* size), so a group of few-but-hard
    faults weighs as much as one of many-but-trivial faults; weighting
    by fault count alone left a visible solve-time imbalance between
    workers.  With a :class:`~repro.atpg.hardness.HardnessPredictor`,
    the learned per-fault conflict estimate replaces that product — it
    already folds instance size in through the cone features and,
    unlike SCOAP, prices the redundant tail correctly.  Within each
    shard the original fault order is preserved, so workers process
    their slice in canonical order, keeping the replay merge
    deterministic.
    """
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    rank = {fault: index for index, fault in enumerate(faults)}
    outputs = set(network.outputs)
    scoap = compute_scoap(network) if predictor is None else None
    inf_cost = 1.0
    if scoap is not None:
        # Finite stand-in for SCOAP's infinities (provably unexcitable /
        # unobservable under its approximation): costlier than any
        # finite fault, but not so large one such fault swamps the LPT
        # packing.
        finite = [
            cost
            for fault in faults
            if (cost := scoap.detection_cost(fault.net, fault.value))
            < INFINITY
        ]
        inf_cost = 2.0 * max(finite, default=1.0)

    groups: dict[tuple[str, ...], list[Fault]] = {}
    weights: dict[tuple[str, ...], float] = {}
    net_keys: dict[str, tuple[str, ...]] = {}
    net_sizes: dict[str, int] = {}
    for fault in faults:
        key = net_keys.get(fault.net)
        if key is None:
            cone = network.transitive_fanout([fault.net])
            key = tuple(sorted(out for out in cone if out in outputs))
            net_keys[fault.net] = key
            net_sizes[fault.net] = len(network.transitive_fanin(cone))
        if predictor is not None:
            weight = predictor.cost(fault)
        else:
            cost = scoap.detection_cost(fault.net, fault.value)
            if cost >= INFINITY:
                cost = inf_cost
            weight = cost * net_sizes[fault.net]
        groups.setdefault(key, []).append(fault)
        weights[key] = weights.get(key, 0.0) + weight

    shards: list[list[Fault]] = [[] for _ in range(num_shards)]
    loads = [0] * num_shards
    # Heaviest group first onto the least-loaded shard (LPT); ties break
    # on the group key so the sharding is deterministic.
    for key in sorted(groups, key=lambda k: (-weights[k], k)):
        target = min(range(num_shards), key=lambda i: (loads[i], i))
        shards[target].extend(groups[key])
        loads[target] += weights[key]
    for shard in shards:
        shard.sort(key=lambda fault: rank[fault])
    return [shard for shard in shards if shard]


class ParallelAtpgEngine:
    """Fault-parallel ATPG with sequential-identical results.

    Args:
        network: circuit under test.
        workers: worker process count; ``None`` uses the CPU count,
            ``1`` (or platforms without ``fork``) runs in-process.
        shards_per_worker: shard granularity multiplier — more shards
            smooth load imbalance at a small cache-locality cost.
        solver / max_conflicts / validate / drop_block_size /
            solver_mode: forwarded to the per-worker :class:`AtpgEngine`.
        min_faults_per_shard: never split below this many faults per
            shard — small fault lists run on fewer shards (often one, in
            process) because fork/merge overhead would dominate.
        warm_start: pre-encode every network gate into a shared
            :class:`CnfEncodingCache` shipped to each worker, so workers
            skip the cold Tseitin pass over the circuit.
        deadline: run-level wall-clock budget in seconds.  Past it, the
            supervisor stops dispatching, terminates running workers,
            and the remaining faults are recorded ABORTED with reason
            ``deadline_exceeded``.
        shard_timeout: per-shard wall-clock budget in seconds; a shard
            exceeding it is terminated, retried, and eventually split
            (``None`` = unlimited).
        max_shard_attempts: dispatch attempts per shard before the
            supervisor splits it (and, for single-fault shards, gives
            up and records the fault ABORTED).
        certify / mem_budget_mb / share_learned: forwarded to every
            per-worker (and the coordinator) :class:`AtpgEngine` — see
            its docstring.  Structural clause sharing is per-process:
            workers share across the cones of their own shard (cone
            grouping keeps sibling cones together, so locality is
            mostly preserved); nothing crosses process boundaries.
        order / budget_policy / hardness_model: hardness-guided
            scheduling knobs (see :class:`AtpgEngine`).  ``order``
            applies on the coordinator (it fixes the canonical fault
            order the replay merge reproduces; workers always process
            their shard slice as given); ``budget_policy`` is forwarded
            to every worker; with either hardness feature active, shard
            balancing weighs faults by predicted cost instead of
            SCOAP x cone size.
    """

    def __init__(
        self,
        network: Network,
        workers: Optional[int] = None,
        shards_per_worker: int = 1,
        solver: str = "cdcl",
        max_conflicts: Optional[int] = 100_000,
        validate: bool = True,
        drop_block_size: int = 64,
        solver_mode: str = "incremental",
        min_faults_per_shard: int = 32,
        warm_start: bool = True,
        deadline: Optional[float] = None,
        shard_timeout: Optional[float] = None,
        max_shard_attempts: int = 2,
        certify: str = "off",
        mem_budget_mb: Optional[float] = None,
        share_learned: str = "cone",
        order: str = "auto",
        budget_policy: str = "fixed",
        hardness_model: Optional[object] = None,
    ) -> None:
        if workers is None:
            workers = multiprocessing.cpu_count()
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if shards_per_worker < 1:
            raise ValueError("shards_per_worker must be >= 1")
        if min_faults_per_shard < 1:
            raise ValueError("min_faults_per_shard must be >= 1")
        if deadline is not None and deadline < 0:
            raise ValueError("deadline must be >= 0 seconds")
        if shard_timeout is not None and shard_timeout <= 0:
            raise ValueError("shard_timeout must be > 0 seconds")
        self.network = network
        self.workers = workers
        self.shards_per_worker = shards_per_worker
        self.solver = solver
        self.max_conflicts = max_conflicts
        self.validate = validate
        self.drop_block_size = drop_block_size
        self.solver_mode = solver_mode
        self.min_faults_per_shard = min_faults_per_shard
        self.warm_start = warm_start
        self.deadline = deadline
        self.shard_timeout = shard_timeout
        self.max_shard_attempts = max_shard_attempts
        self.certify = certify
        self.mem_budget_mb = mem_budget_mb
        self.share_learned = share_learned
        self.budget_policy = budget_policy
        #: Worker entry point; tests monkeypatch this with chaos
        #: variants (crashing / hanging shards) to exercise supervision.
        self._shard_runner = _run_shard
        # Coordinator-side engine: canonical ordering, replay fallback
        # SAT calls, and cone caching for the replay's drop checks.
        self._coordinator = AtpgEngine(
            network,
            solver=solver,
            max_conflicts=max_conflicts,
            validate=validate,
            drop_block_size=drop_block_size,
            solver_mode=solver_mode,
            certify=certify,
            mem_budget_mb=mem_budget_mb,
            share_learned=share_learned,
            order=order,
            budget_policy=budget_policy,
            hardness_model=hardness_model,
        )

    # ------------------------------------------------------------------
    @staticmethod
    def can_fork() -> bool:
        """True if this platform supports fork-based worker pools."""
        return "fork" in multiprocessing.get_all_start_methods()

    def _jobs(
        self,
        shards: list[list[Fault]],
        fault_dropping: bool,
        deadline_at: Optional[float] = None,
    ) -> list[_ShardJob]:
        cache: Optional[CnfEncodingCache] = None
        if self.warm_start:
            # Encode every gate once here; each worker starts from a
            # copy of the warm cache instead of a cold Tseitin pass.
            cache = CnfEncodingCache()
            for gate in self.network.gates():
                cache.gate_clauses(gate)
        return [
            _ShardJob(
                network=self.network,
                faults=shard,
                solver=self.solver,
                max_conflicts=self.max_conflicts,
                validate=self.validate,
                drop_block_size=self.drop_block_size,
                fault_dropping=fault_dropping,
                solver_mode=self.solver_mode,
                encoding_cache=cache,
                deadline_at=deadline_at,
                certify=self.certify,
                mem_budget_mb=self.mem_budget_mb,
                share_learned=self.share_learned,
                budget_policy=self.budget_policy,
                hardness_model=(
                    self._coordinator.hardness_predictor().model
                    if self._coordinator.hardness_guided
                    else None
                ),
            )
            for shard in shards
        ]

    def run(
        self,
        faults: Optional[Sequence[Fault]] = None,
        fault_dropping: bool = True,
        resume_from: Optional[str | Path] = None,
        checkpoint_to: Optional[str | Path] = None,
        checkpoint_fence=None,
    ) -> AtpgSummary:
        """ATPG over a fault list, fanned out across supervised workers.

        In ``fresh`` solver mode the records match ``AtpgEngine.run`` on
        the same arguments exactly (statuses, tests, drop attributions);
        in ``incremental`` mode coverage and SAT/UNSAT verdicts match
        while test vectors may differ (see the module docstring).

        Args:
            resume_from: JSONL checkpoint journal of an earlier
                (interrupted) run; faults with settled journaled
                verdicts are not re-dispatched and the final merge
                matches an uninterrupted run's.
            checkpoint_to: journal per-fault records here as shards
                complete (may equal ``resume_from`` to continue the same
                journal).
            checkpoint_fence: optional write-side ownership guard for
                the journal (see
                :class:`~repro.atpg.checkpoint.CheckpointWriter`); the
                service passes its lease's
                :class:`~repro.service.lease.FenceGuard` so a run whose
                job was stolen dies at the next append instead of
                interleaving with the new owner's journal.

        The returned summary is always *complete*: every requested fault
        has a record, with orchestration casualties (crashed / timed-out
        shards, deadline) marked ABORTED and a machine-readable
        ``abort_reason``; supervision counters are in
        ``summary.stats.health``.
        """
        wall_start = time.perf_counter()
        deadline_at = (
            time.monotonic() + self.deadline
            if self.deadline is not None
            else None
        )
        ordered = self._coordinator.ordered_faults(faults)

        settled: dict[Fault, AtpgRecord] = {}
        resume_rejects: list[AtpgRecord] = []
        if resume_from is not None:
            wanted = set(ordered)
            verified, resume_rejects = verified_resumable_records(
                resume_from, self.network, circuit=self.network.name
            )
            settled = {
                fault: record
                for fault, record in verified.items()
                if fault in wanted
            }
            if resume_rejects:
                warnings.warn(
                    f"{len(resume_rejects)} journaled TESTED record(s) "
                    "failed witness replay at the resume trust boundary "
                    "and will be re-solved",
                    ResumeRejectedRecordsWarning,
                    stacklevel=2,
                )
            if settled and self.solver_mode == "incremental":
                warnings.warn(
                    "resuming in incremental solver mode: coverage and "
                    "SAT/UNSAT verdicts match an uninterrupted run, but "
                    "test vectors may differ (use solver_mode='fresh' "
                    "for bit-identical resume)",
                    ResumeParityWarning,
                    stacklevel=2,
                )
        remaining = [fault for fault in ordered if fault not in settled]

        num_shards = max(
            1,
            min(
                self.workers * self.shards_per_worker,
                len(remaining),
                max(1, len(remaining) // self.min_faults_per_shard),
            ),
        )
        shards = (
            shard_faults_by_cone(
                self.network,
                remaining,
                num_shards,
                predictor=(
                    self._coordinator.hardness_predictor()
                    if self._coordinator.hardness_guided
                    else None
                ),
            )
            if remaining
            else []
        )
        jobs = self._jobs(shards, fault_dropping, deadline_at)
        use_pool = self.workers > 1 and self.can_fork() and len(jobs) > 1

        writer: Optional[CheckpointWriter] = None
        try:
            if checkpoint_to is not None:
                writer = CheckpointWriter(
                    checkpoint_to,
                    circuit=self.network.name,
                    fence=checkpoint_fence,
                    config={
                        "solver": self.solver,
                        "solver_mode": self.solver_mode,
                        "max_conflicts": self.max_conflicts,
                        "fault_dropping": fault_dropping,
                        "certify": self.certify,
                        "mem_budget_mb": self.mem_budget_mb,
                    },
                )
            report = self._supervise(jobs, use_pool, deadline_at, writer)
        finally:
            if writer is not None:
                writer.close()

        summary = self._merge(
            ordered,
            report.results,
            fault_dropping=fault_dropping,
            settled=settled,
            failed=report.failed,
            deadline_at=deadline_at,
        )
        summary.stats.health.merge(report.health)
        # A journaled TESTED verdict the simulator refutes is a
        # cross-run solver disagreement, caught at the trust boundary.
        summary.stats.health.disagreements += len(resume_rejects)
        summary.stats.health.count_aborts(summary.records)
        summary.stats.health.count_certification(summary.records)
        summary.stats.workers = self.workers if use_pool else 1
        summary.stats.shards = len(shards)
        summary.stats.wall_time = time.perf_counter() - wall_start
        return summary

    # ------------------------------------------------------------------
    def _supervise(
        self,
        jobs: list[_ShardJob],
        use_pool: bool,
        deadline_at: Optional[float],
        writer: Optional[CheckpointWriter],
    ):
        """Run the shard jobs under a :class:`ShardSupervisor`."""
        journaled: set[int] = set()

        def fallback(job: _ShardJob) -> AtpgSummary:
            # In-process execution journals per fault (there is no
            # shard-completion message to wait for), and marks its
            # summary so on_result does not journal it twice.
            on_record = writer.write_record if writer is not None else None
            shard_summary = self._shard_runner(job, on_record=on_record)
            journaled.add(id(shard_summary))
            return shard_summary

        def on_result(shard_summary: AtpgSummary) -> None:
            if writer is not None and id(shard_summary) not in journaled:
                writer.write_summary(shard_summary)

        supervisor = ShardSupervisor(
            self._shard_runner,
            fallback_fn=fallback,
            split_job=_split_shard,
            workers=min(self.workers, max(1, len(jobs))),
            shard_timeout=self.shard_timeout,
            max_attempts=self.max_shard_attempts,
            deadline_at=deadline_at,
            use_processes=use_pool,
            mark_degraded=self.workers > 1 and not self.can_fork(),
            on_result=on_result,
        )
        return supervisor.run(jobs)

    # ------------------------------------------------------------------
    def _merge(
        self,
        ordered: Sequence[Fault],
        worker_summaries: Sequence[AtpgSummary],
        fault_dropping: bool,
        settled: Optional[dict[Fault, AtpgRecord]] = None,
        failed: Sequence = (),
        deadline_at: Optional[float] = None,
    ) -> AtpgSummary:
        """Replay the canonical order to reconcile cross-shard dropping.

        ``settled`` records (from a resumed checkpoint) and ABORTED
        placeholders for ``failed`` shards enter the replay exactly like
        worker records, so the merge stays deterministic no matter how
        the run was interrupted or degraded.
        """
        by_fault: dict[Fault, AtpgRecord] = dict(settled or {})
        stats = EngineStats()
        for worker_summary in worker_summaries:
            stats.merge(worker_summary.stats)
            for record in worker_summary.records:
                by_fault[record.fault] = record
        for failure in failed:
            for fault in failure.job.faults:
                if fault not in by_fault:
                    by_fault[fault] = AtpgRecord(
                        fault=fault,
                        status=FaultStatus.ABORTED,
                        abort_reason=failure.reason,
                    )

        summary = AtpgSummary(
            circuit=self.network.name,
            stats=stats,
            worker_stats=[ws.stats for ws in worker_summaries],
        )
        store = PatternBlockStore(
            self.network, block_size=self.drop_block_size
        )
        coordinator = self._coordinator
        coordinator._deadline_at = deadline_at
        try:
            for fault in ordered:
                if fault_dropping and len(store):
                    fsim_start = time.perf_counter()
                    detected = store.first_detection(
                        fault, cone=coordinator.fault_cone(fault.net)
                    )
                    stats.fsim_time += time.perf_counter() - fsim_start
                    if detected is not None:
                        summary.records.append(
                            AtpgRecord(
                                fault=fault,
                                status=FaultStatus.DROPPED,
                                test=store.pattern(detected),
                                certified=(
                                    True if self.certify != "off" else None
                                ),
                            )
                        )
                        continue
                record = by_fault.get(fault)
                if record is None or record.status is FaultStatus.DROPPED:
                    # In-shard drop (or lost record) that the global
                    # replay does not drop: the sequential engine would
                    # have solved it, so solve it here to stay
                    # bit-identical — unless the run deadline already
                    # passed, in which case it is a deadline abort like
                    # any other undispatched fault.
                    if coordinator._past_deadline():
                        stats.health.deadline_hit = True
                        record = AtpgRecord(
                            fault=fault,
                            status=FaultStatus.ABORTED,
                            abort_reason=ABORT_DEADLINE,
                        )
                    else:
                        record = coordinator.generate_test(fault, stats=stats)
                        stats.replay_solves += 1
                summary.records.append(record)
                if fault_dropping and record.test is not None:
                    store.add(record.test)
        finally:
            coordinator._deadline_at = None

        stats.good_sims += store.good_sims
        stats.cone_sims += store.cone_sims
        return summary
