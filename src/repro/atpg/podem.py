"""PODEM: path-oriented decision making — the structural ATPG baseline.

The classic pre-SAT algorithm (Goel 1981), implemented over the same
:class:`Network`/:class:`Fault` substrate as the SAT engine so the two
can be compared head-to-head.  Five-valued logic is represented as a pair
of three-valued simulations (good, faulty); decisions are made only at
primary inputs, objectives are backtraced through the easiest gate input
(SCOAP-free: first-unassigned), and the search is bounded by a backtrack
budget.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.atpg.faults import Fault
from repro.circuits.gates import GateType
from repro.circuits.network import Network

_X = None  # unassigned / unknown in 3-valued logic


class PodemStatus(enum.Enum):
    """Outcome of a PODEM run for one fault."""

    TESTED = "tested"
    UNTESTABLE = "untestable"
    ABORTED = "aborted"


@dataclass
class PodemResult:
    """Result record: status, test pattern (if any) and search effort."""

    status: PodemStatus
    test: Optional[dict[str, int]] = None
    backtracks: int = 0
    decisions: int = 0


def _eval3(gate_type: GateType, values: list[Optional[int]]) -> Optional[int]:
    """Three-valued gate evaluation (X = None)."""
    if gate_type is GateType.BUF:
        return values[0]
    if gate_type is GateType.NOT:
        return None if values[0] is None else 1 - values[0]
    if gate_type is GateType.CONST0:
        return 0
    if gate_type is GateType.CONST1:
        return 1
    if gate_type in (GateType.AND, GateType.NAND):
        if any(v == 0 for v in values):
            result = 0
        elif all(v == 1 for v in values):
            result = 1
        else:
            return _X
        return 1 - result if gate_type is GateType.NAND else result
    if gate_type in (GateType.OR, GateType.NOR):
        if any(v == 1 for v in values):
            result = 1
        elif all(v == 0 for v in values):
            result = 0
        else:
            return _X
        return 1 - result if gate_type is GateType.NOR else result
    if gate_type in (GateType.XOR, GateType.XNOR):
        if any(v is None for v in values):
            return _X
        result = 0
        for v in values:
            result ^= v
        return 1 - result if gate_type is GateType.XNOR else result
    raise ValueError(f"unsupported gate {gate_type!r}")


#: Controlling input value per gate type (None = no controlling value).
_CONTROLLING = {
    GateType.AND: 0,
    GateType.NAND: 0,
    GateType.OR: 1,
    GateType.NOR: 1,
}

#: Whether the gate inverts its base function.
_INVERTS = {
    GateType.NAND: True,
    GateType.NOR: True,
    GateType.NOT: True,
    GateType.XNOR: True,
}


class PodemEngine:
    """PODEM test generator.

    Args:
        network: circuit under test.
        max_backtracks: abort threshold per fault.
        use_scoap: guide backtrace by SCOAP controllability (choose the
            cheapest open input for the required value) instead of the
            first open input.  Completeness is unaffected — only the
            exploration order changes.
    """

    def __init__(
        self,
        network: Network,
        max_backtracks: int = 10_000,
        use_scoap: bool = False,
    ) -> None:
        self.network = network
        self.max_backtracks = max_backtracks
        self._topo = network.topological_order()
        self._scoap = None
        if use_scoap:
            from repro.atpg.scoap import compute_scoap

            self._scoap = compute_scoap(network)

    # ------------------------------------------------------------------
    def generate_test(self, fault: Fault) -> PodemResult:
        """Attempt to generate a test for ``fault``."""
        pi_values: dict[str, int] = {}
        decisions: list[tuple[str, int, bool]] = []  # (pi, value, flipped)
        result = PodemResult(status=PodemStatus.UNTESTABLE)

        while True:
            good, faulty = self._simulate(pi_values, fault)
            if self._fault_at_output(good, faulty):
                test = {
                    net: pi_values.get(net, 0) for net in self.network.inputs
                }
                return PodemResult(
                    status=PodemStatus.TESTED,
                    test=test,
                    backtracks=result.backtracks,
                    decisions=result.decisions,
                )

            objective = self._pick_objective(fault, good, faulty)
            if objective is not None:
                pi, value = self._backtrace(objective, good)
                if pi is not None:
                    result.decisions += 1
                    pi_values[pi] = value
                    decisions.append((pi, value, False))
                    continue
                objective = None  # objective unreachable: treat as failure

            # No viable objective: backtrack.
            flipped = False
            while decisions:
                pi, value, was_flipped = decisions.pop()
                del pi_values[pi]
                if not was_flipped:
                    result.backtracks += 1
                    if result.backtracks > self.max_backtracks:
                        return PodemResult(
                            status=PodemStatus.ABORTED,
                            backtracks=result.backtracks,
                            decisions=result.decisions,
                        )
                    pi_values[pi] = 1 - value
                    decisions.append((pi, 1 - value, True))
                    flipped = True
                    break
            if not flipped:
                return PodemResult(
                    status=PodemStatus.UNTESTABLE,
                    backtracks=result.backtracks,
                    decisions=result.decisions,
                )

    # ------------------------------------------------------------------
    def _simulate(
        self, pi_values: dict[str, int], fault: Fault
    ) -> tuple[dict[str, Optional[int]], dict[str, Optional[int]]]:
        """Three-valued good and faulty simulations under partial PIs."""
        good: dict[str, Optional[int]] = {}
        faulty: dict[str, Optional[int]] = {}
        for net in self._topo:
            gate = self.network.gate(net)
            if gate.gate_type is GateType.INPUT:
                good[net] = pi_values.get(net, _X)
            else:
                good[net] = _eval3(
                    gate.gate_type, [good[src] for src in gate.inputs]
                )
            if net == fault.net:
                faulty[net] = fault.value
            elif gate.gate_type is GateType.INPUT:
                faulty[net] = pi_values.get(net, _X)
            else:
                faulty[net] = _eval3(
                    gate.gate_type, [faulty[src] for src in gate.inputs]
                )
        return good, faulty

    def _fault_at_output(self, good, faulty) -> bool:
        return any(
            good[out] is not None
            and faulty[out] is not None
            and good[out] != faulty[out]
            for out in self.network.outputs
        )

    def _pick_objective(
        self, fault: Fault, good, faulty
    ) -> Optional[tuple[str, int]]:
        """Next (net, value) objective, or None if provably stuck.

        Phase 1 — activation: the good value at the fault site must be
        the complement of the stuck value.  Phase 2 — propagation: pick a
        D-frontier gate and set one of its X inputs non-controlling.
        """
        site_good = good[fault.net]
        if site_good is None:
            return fault.net, 1 - fault.value
        if site_good == fault.value:
            return None  # activation contradicted: dead branch

        # D-frontier: gates with a fault-effect input and X output.
        for net in self._topo:
            gate = self.network.gate(net)
            if gate.gate_type.is_source:
                continue
            if good[net] is not None and faulty[net] is not None:
                if good[net] != faulty[net]:
                    continue  # effect already propagated past here
            has_effect_input = any(
                good[src] is not None
                and faulty[src] is not None
                and good[src] != faulty[src]
                for src in gate.inputs
            )
            output_open = good[net] is None or faulty[net] is None
            if has_effect_input and output_open:
                control = _CONTROLLING.get(gate.gate_type)
                for src in gate.inputs:
                    if good[src] is None:
                        target = 1 if control is None else 1 - control
                        return src, target
                # All side inputs set: objective is further downstream.
        return None

    def _backtrace(
        self, objective: tuple[str, int], good
    ) -> tuple[Optional[str], int]:
        """Map an internal objective to a PI assignment (Goel's backtrace)."""
        net, value = objective
        guard = 0
        while True:
            guard += 1
            if guard > len(self._topo) + 8:
                return None, 0
            gate = self.network.gate(net)
            if gate.gate_type is GateType.INPUT:
                return net, value
            if gate.gate_type.is_source:
                return None, 0  # constants cannot be justified
            if _INVERTS.get(gate.gate_type, False):
                value = 1 - value
            open_inputs = [src for src in gate.inputs if good[src] is None]
            if not open_inputs:
                return None, 0
            if self._scoap is not None:
                open_inputs = sorted(
                    open_inputs,
                    key=lambda src: self._scoap.controllability(src, value),
                )
            if gate.gate_type in (GateType.XOR, GateType.XNOR):
                # Parity: aim the first open input at the needed parity of
                # the assigned rest (approximate; simulation validates).
                assigned = [good[s] for s in gate.inputs if good[s] is not None]
                parity = 0
                for bit in assigned:
                    parity ^= bit
                net = open_inputs[0]
                value = value ^ parity
                continue
            net = open_inputs[0]
        # Unreachable.

    # ------------------------------------------------------------------
    def run(self, faults: list[Fault]) -> dict[Fault, PodemResult]:
        """PODEM over a fault list."""
        return {fault: self.generate_test(fault) for fault in faults}
