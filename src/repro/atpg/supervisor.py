"""Supervised shard execution: the resilient layer under parallel ATPG.

The paper's tail argument (Figure 1) is exactly why orchestration needs
supervision: *most* ATPG-SAT shards finish fast, but a run that fans a
fault list across worker processes must survive the rare shard that
hangs on a cubic-tail instance, a worker killed by the OS, or a platform
without ``fork`` — and still terminate with an answer for every fault.

:class:`ShardSupervisor` dispatches shard jobs to single-purpose forked
worker processes and supervises them:

* **per-shard wall-clock timeouts** — a shard that exceeds its budget is
  terminated and counted as ``shard_timeout``;
* **crash detection** — a worker that exits without delivering a result
  (killed, segfaulted, ``os._exit``) is counted as ``shard_crashed``;
* **bounded retry with shard splitting** — a failed shard is retried
  after a jittered exponential backoff delay (immediate re-dispatch
  hammers a machine that is already sick; the chosen delays land in
  ``RunHealth.backoff_delays``); on repeat failure it is split in half
  and the halves are re-queued, so one poisonous fault ends up isolated
  (and aborted) instead of taking its whole shard down;
* **graceful degradation** — when forking is unavailable or the pool
  keeps dying (several consecutive failures with no success), remaining
  jobs run in-process through ``fallback_fn``;
* **run deadline** — once ``deadline_at`` passes, running workers are
  terminated and queued jobs are reported back unrun (reason
  ``deadline_exceeded``) instead of being dispatched;
* **interrupt safety** — KeyboardInterrupt (or any exception) tears the
  worker processes down with ``terminate()``/``join()`` before
  re-raising, so Ctrl-C leaves no orphans.

The supervisor is deliberately generic over the *unit of work*: it only
needs ``worker_fn(job) -> result``, ``split_job(job) -> [jobs]`` and
``faults_of(job)`` for failure accounting, so the same machinery runs
ATPG shards, cut-width analysis shards
(:mod:`repro.core.width_pipeline`), and the chaos-test stand-ins of
``tests/atpg/test_supervisor.py``.  The failure vocabulary
(:data:`ABORT_SHARD_TIMEOUT` & co.) and the :class:`RunHealth` counters
live here for the same reason — they describe shard orchestration, not
any particular workload.
"""

from __future__ import annotations

import multiprocessing
import random
import time
from collections import deque
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field
from multiprocessing.connection import wait as _wait_connections
from typing import Any, Optional

#: Machine-readable failure reasons for work the supervisor could not
#: complete (also attached to ABORTED ATPG records as ``abort_reason``).
#: ``ABORT_BUDGET`` is produced by the solving layer, not the
#: supervisor, but belongs to the same vocabulary.
ABORT_BUDGET = "budget_exhausted"
ABORT_DEADLINE = "deadline_exceeded"
ABORT_SHARD_TIMEOUT = "shard_timeout"
ABORT_SHARD_CRASHED = "shard_crashed"
ABORT_MEM = "mem_budget_exceeded"
ABORT_SOLVER = "solver_error"
ABORT_CERTIFICATION = "certification_failed"

#: Supervisor poll granularity (seconds): the upper bound on how stale a
#: timeout/deadline check can be while workers are busy.
_TICK = 0.05


@dataclass
class RunHealth:
    """Robustness telemetry for one supervised run.

    Counts the orchestration events that distinguish a clean run from a
    degraded one: shard retries, timed-out / crashed workers, automatic
    shard splits, the in-process degraded-mode flag, whether the
    run-level deadline fired, and a histogram of abort reasons over the
    run's final records.
    """

    retries: int = 0
    timed_out_shards: int = 0
    crashed_shards: int = 0
    shard_splits: int = 0
    degraded: bool = False
    deadline_hit: bool = False
    abort_reasons: dict[str, int] = field(default_factory=dict)
    #: Jittered exponential-backoff delays (seconds) applied before each
    #: shard retry, in the order they were chosen.  Purely diagnostic —
    #: ``retries`` already marks the run unclean; the delays say how
    #: much re-dispatch pressure the backoff absorbed.
    backoff_delays: list[float] = field(default_factory=list)
    #: Result-certification telemetry (:mod:`repro.atpg.certify`).
    #: ``certified``/``uncertified`` tally final records whose
    #: certification passed/failed (recomputed over final records, like
    #: ``abort_reasons``); ``escalations`` counts failure-triggered
    #: climbs of the solver escalation ladder; ``disagreements`` counts
    #: faults where independent solve paths returned contradicting
    #: verdicts (any one is a solver bug caught and healed).
    certified: int = 0
    uncertified: int = 0
    disagreements: int = 0
    escalations: int = 0
    #: Cross-fault structural clause sharing telemetry
    #: (:mod:`repro.atpg.sharing`): clauses promoted into the run's
    #: shared store and clause deliveries into sibling cone solvers.
    #: Informational — sharing is normal operation, so these do not
    #: affect :attr:`clean`.
    shared_promoted: int = 0
    shared_injected: int = 0

    @property
    def clean(self) -> bool:
        """True when no supervision event fired during the run."""
        return not (
            self.retries
            or self.timed_out_shards
            or self.crashed_shards
            or self.shard_splits
            or self.degraded
            or self.deadline_hit
            or self.abort_reasons
            or self.uncertified
            or self.disagreements
            or self.escalations
        )

    def count_aborts(self, records: Sequence[Any]) -> None:
        """Recompute the abort-reason histogram from final records.

        Any record collection works: a record counts as aborted when its
        ``status`` (if it has one) stringifies to ``"aborted"``, or —
        for status-less workloads like the width pipeline — when it
        carries a truthy ``abort_reason``.
        """
        reasons: dict[str, int] = {}
        for record in records:
            status = getattr(record, "status", None)
            if status is not None:
                if getattr(status, "value", status) != "aborted":
                    continue
                reason = getattr(record, "abort_reason", None) or "unknown"
            else:
                reason = getattr(record, "abort_reason", None)
                if not reason:
                    continue
            reasons[reason] = reasons.get(reason, 0) + 1
        self.abort_reasons = reasons

    def count_certification(self, records: Sequence[Any]) -> None:
        """Recompute certified/uncertified tallies from final records.

        A record with ``certified is True`` passed its witness replay or
        DRUP/agreement check; ``certified is False`` means certification
        was attempted and failed on every ladder rung; ``certified is
        None`` (certification off, or statuses with nothing to certify)
        counts as neither.
        """
        self.certified = sum(
            1 for r in records if getattr(r, "certified", None) is True
        )
        self.uncertified = sum(
            1 for r in records if getattr(r, "certified", None) is False
        )

    def merge(self, other: "RunHealth") -> None:
        """Accumulate another run's supervision counters.

        ``abort_reasons`` and the ``certified``/``uncertified`` tallies
        are *not* merged: they are recomputed over the final merged
        records by whoever owns the summary, so shard-level counts never
        double-count.  ``escalations``/``disagreements`` are events and
        add up.
        """
        self.retries += other.retries
        self.backoff_delays.extend(other.backoff_delays)
        self.timed_out_shards += other.timed_out_shards
        self.crashed_shards += other.crashed_shards
        self.shard_splits += other.shard_splits
        self.degraded = self.degraded or other.degraded
        self.deadline_hit = self.deadline_hit or other.deadline_hit
        self.disagreements += other.disagreements
        self.escalations += other.escalations
        self.shared_promoted += other.shared_promoted
        self.shared_injected += other.shared_injected

    def as_dict(self) -> dict:
        """JSON-ready view (the ``health`` block of ``--bench-json``)."""
        return {
            "retries": self.retries,
            "backoff_delays": list(self.backoff_delays),
            "timed_out_shards": self.timed_out_shards,
            "crashed_shards": self.crashed_shards,
            "shard_splits": self.shard_splits,
            "degraded": self.degraded,
            "deadline_hit": self.deadline_hit,
            "abort_reasons": dict(self.abort_reasons),
            "certified": self.certified,
            "uncertified": self.uncertified,
            "disagreements": self.disagreements,
            "escalations": self.escalations,
            "shared_promoted": self.shared_promoted,
            "shared_injected": self.shared_injected,
        }




@dataclass
class FailedShard:
    """A shard the supervisor gave up on (or never dispatched)."""

    job: Any
    reason: str  # ABORT_SHARD_TIMEOUT / ABORT_SHARD_CRASHED / ABORT_DEADLINE
    detail: str = ""


@dataclass
class SupervisorReport:
    """Everything a coordinator needs to finish the run.

    ``results`` holds successful shard results in completion order;
    ``failed`` the shards whose faults must be marked ABORTED (with the
    machine-readable reason); ``health`` the supervision counters.
    """

    results: list = field(default_factory=list)
    failed: list[FailedShard] = field(default_factory=list)
    health: RunHealth = field(default_factory=RunHealth)


@dataclass
class _Attempt:
    """One queued unit of work plus its failure history."""

    job: Any
    attempts: int = 0
    #: ``time.monotonic()`` before which this attempt must not be
    #: dispatched (retry backoff); 0.0 = immediately dispatchable.
    not_before: float = 0.0


class _Running:
    """A live worker process executing one attempt."""

    __slots__ = ("process", "conn", "attempt", "started", "result")

    def __init__(self, process, conn, attempt: _Attempt) -> None:
        self.process = process
        self.conn = conn
        self.attempt = attempt
        self.started = time.monotonic()
        self.result = None


def _child_main(worker_fn, job, conn) -> None:
    """Worker process body: run the shard, ship the result, exit.

    Any exception escaping ``worker_fn`` makes the child exit without
    sending, which the parent observes as a crash — the same signature
    as a SIGKILL, so one recovery path covers both.
    """
    result = worker_fn(job)
    conn.send(result)
    conn.close()


class ShardSupervisor:
    """Run shard jobs under supervision (see module docstring).

    Args:
        worker_fn: executed in a forked child per shard; its return
            value must be picklable.
        fallback_fn: executed *in-process* in degraded mode; defaults to
            ``worker_fn``.  Parallel ATPG passes the plain sequential
            shard runner here so a dying pool still finishes the run.
        split_job: splits a failed job into smaller jobs (return a list
            with >= 2 entries, or a single-entry/empty list when the job
            is atomic and must be abandoned).
        faults_of: extracts the fault list of a job (failure reporting).
        workers: maximum concurrent worker processes.
        shard_timeout: per-shard wall-clock budget in seconds (None =
            unlimited).
        max_attempts: dispatch attempts per job before it is split.
        deadline_at: absolute ``time.monotonic()`` run deadline; when it
            passes, running workers are terminated and queued jobs are
            reported as ``deadline_exceeded``.
        max_consecutive_failures: failures with no intervening success
            before the supervisor stops trusting the pool and degrades
            to in-process execution.
        retry_backoff_base: first-retry backoff delay in seconds.  A
            failed shard is re-queued with a jittered exponential delay
            (``base * 2^(attempts-1)``, capped, scaled by a jitter in
            [0.5, 1.0]) instead of immediate re-dispatch, so a sick
            machine (OOM pressure, thrashing disk) is not hammered by a
            tight crash-retry loop.  ``0`` restores immediate retries.
        retry_backoff_cap: upper bound in seconds on any single backoff
            delay.
        retry_jitter_seed: seed for the jitter PRNG (default 0 keeps
            delay sequences reproducible run to run; pass ``None`` for
            entropy-seeded jitter in fleet deployments where
            synchronized retry stampedes are the thing to avoid).
        use_processes: False forces in-process execution from the start
            (the ``workers <= 1`` / cannot-fork path).
        mark_degraded: record ``health.degraded`` even for planned
            in-process execution (used when the caller *wanted* a pool
            but the platform cannot fork).
        on_result: callback fired in the parent as each shard result
            arrives (the checkpoint-journal hook).
    """

    def __init__(
        self,
        worker_fn: Callable[[Any], Any],
        *,
        fallback_fn: Optional[Callable[[Any], Any]] = None,
        split_job: Optional[Callable[[Any], Sequence[Any]]] = None,
        faults_of: Callable[[Any], Sequence[Any]] = lambda job: job.faults,
        workers: int = 1,
        shard_timeout: Optional[float] = None,
        max_attempts: int = 2,
        deadline_at: Optional[float] = None,
        max_consecutive_failures: int = 3,
        use_processes: bool = True,
        mark_degraded: bool = False,
        on_result: Optional[Callable[[Any], None]] = None,
        retry_backoff_base: float = 0.05,
        retry_backoff_cap: float = 2.0,
        retry_jitter_seed: Optional[int] = 0,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if retry_backoff_base < 0:
            raise ValueError("retry_backoff_base must be >= 0")
        if retry_backoff_cap < 0:
            raise ValueError("retry_backoff_cap must be >= 0")
        self.worker_fn = worker_fn
        self.fallback_fn = fallback_fn if fallback_fn is not None else worker_fn
        self.split_job = split_job
        self.faults_of = faults_of
        self.workers = workers
        self.shard_timeout = shard_timeout
        self.max_attempts = max_attempts
        self.deadline_at = deadline_at
        self.max_consecutive_failures = max_consecutive_failures
        self.use_processes = use_processes
        self.mark_degraded = mark_degraded
        self.on_result = on_result
        self.retry_backoff_base = retry_backoff_base
        self.retry_backoff_cap = retry_backoff_cap
        self._jitter = random.Random(retry_jitter_seed)

    # ------------------------------------------------------------------
    def run(self, jobs: Sequence[Any]) -> SupervisorReport:
        """Execute ``jobs`` to completion; never raises for worker
        failures (only for coordinator-side bugs or interrupts)."""
        report = SupervisorReport()
        report.health.degraded = self.mark_degraded
        pending: deque[_Attempt] = deque(_Attempt(job) for job in jobs)
        running: list[_Running] = []
        consecutive_failures = 0
        degraded = not self.use_processes
        ctx = (
            multiprocessing.get_context("fork")
            if self.use_processes
            else None
        )

        try:
            while pending or running:
                now = time.monotonic()
                if self.deadline_at is not None and now >= self.deadline_at:
                    report.health.deadline_hit = True
                    self._drain_at_deadline(pending, running, report)
                    break

                if degraded and not running:
                    self._run_in_process(pending.popleft(), report)
                    continue

                if not degraded:
                    self._launch_ready(ctx, pending, running, now)

                if not running and pending:
                    # Every queued attempt is in retry backoff: sleep
                    # toward the nearest release instead of busy-spinning
                    # through an empty poll.
                    soonest = min(a.not_before for a in pending)
                    delay = min(_TICK, max(0.0, soonest - time.monotonic()))
                    if delay > 0:
                        time.sleep(delay)
                    continue

                events = self._poll(running)
                for kind, entry in events:
                    running.remove(entry)
                    if kind == "result":
                        consecutive_failures = 0
                        report.results.append(entry.result)
                        if self.on_result is not None:
                            self.on_result(entry.result)
                    else:
                        consecutive_failures += 1
                        self._handle_failure(entry, kind, pending, report)
                        if (
                            consecutive_failures
                            >= self.max_consecutive_failures
                        ):
                            degraded = True
                            report.health.degraded = True
        finally:
            for entry in running:
                if entry.process.is_alive():
                    entry.process.terminate()
            for entry in running:
                entry.process.join()
                entry.conn.close()

        return report

    # ------------------------------------------------------------------
    def _launch_ready(
        self,
        ctx,
        pending: deque,
        running: list["_Running"],
        now: float,
    ) -> None:
        """Fill free worker slots with dispatchable attempts, leaving
        attempts still inside their retry backoff window queued."""
        scan = len(pending)
        while scan and pending and len(running) < self.workers:
            scan -= 1
            attempt = pending.popleft()
            if attempt.not_before > now:
                pending.append(attempt)
                continue
            running.append(self._launch(ctx, attempt))

    def _backoff_delay(self, attempts: int) -> float:
        """Jittered exponential backoff for re-dispatch number
        ``attempts`` (1-based): ``base * 2^(attempts-1)`` capped at
        ``retry_backoff_cap``, scaled by a jitter in [0.5, 1.0] so
        sibling retries do not re-land in lockstep."""
        if self.retry_backoff_base <= 0:
            return 0.0
        raw = min(
            self.retry_backoff_cap,
            self.retry_backoff_base * (2.0 ** (attempts - 1)),
        )
        return raw * (0.5 + 0.5 * self._jitter.random())

    def _launch(self, ctx, attempt: _Attempt) -> _Running:
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        process = ctx.Process(
            target=_child_main,
            args=(self.worker_fn, attempt.job, child_conn),
            daemon=True,
        )
        process.start()
        child_conn.close()  # child's end lives in the child now
        return _Running(process, parent_conn, attempt)

    def _poll(self, running: list[_Running]) -> list[tuple[str, _Running]]:
        """Wait one tick for worker events.

        Returns (kind, entry) pairs where kind is ``result``,
        ``crashed``, or ``timed_out``; a ``result`` entry carries the
        received value in ``entry.result``.
        """
        if not running:
            return []
        waitables = [r.conn for r in running] + [
            r.process.sentinel for r in running
        ]
        timeout = _TICK
        if self.shard_timeout is not None:
            now = time.monotonic()
            nearest = min(r.started + self.shard_timeout for r in running)
            timeout = max(0.0, min(timeout, nearest - now))
        ready = set(_wait_connections(waitables, timeout))

        events: list[tuple[str, _Running]] = []
        now = time.monotonic()
        for entry in running:
            if entry.conn in ready or entry.conn.poll():
                try:
                    entry.result = entry.conn.recv()
                    events.append(("result", entry))
                except (EOFError, OSError):
                    events.append(("crashed", entry))
                entry.process.join()
                entry.conn.close()
            elif entry.process.sentinel in ready:
                # Child exited without delivering a result.
                entry.process.join()
                entry.conn.close()
                events.append(("crashed", entry))
            elif (
                self.shard_timeout is not None
                and now - entry.started >= self.shard_timeout
            ):
                entry.process.terminate()
                entry.process.join()
                entry.conn.close()
                events.append(("timed_out", entry))
        return events

    def _handle_failure(
        self,
        entry: _Running,
        kind: str,
        pending: deque,
        report: SupervisorReport,
    ) -> None:
        attempt = entry.attempt
        if kind == "timed_out":
            report.health.timed_out_shards += 1
            reason = ABORT_SHARD_TIMEOUT
            detail = f"exceeded shard timeout of {self.shard_timeout}s"
        else:
            report.health.crashed_shards += 1
            reason = ABORT_SHARD_CRASHED
            detail = f"worker exited with code {entry.process.exitcode}"

        attempt.attempts += 1
        if attempt.attempts < self.max_attempts:
            report.health.retries += 1
            delay = self._backoff_delay(attempt.attempts)
            attempt.not_before = time.monotonic() + delay if delay else 0.0
            report.health.backoff_delays.append(delay)
            pending.append(attempt)
            return
        pieces = (
            list(self.split_job(attempt.job))
            if self.split_job is not None
            else []
        )
        if len(pieces) >= 2:
            # Isolate the poison: each half restarts its attempt budget.
            report.health.shard_splits += 1
            for piece in pieces:
                pending.append(_Attempt(piece))
            return
        report.failed.append(FailedShard(attempt.job, reason, detail))

    def _run_in_process(
        self, attempt: _Attempt, report: SupervisorReport
    ) -> None:
        """Degraded mode: one in-process attempt, no hang protection."""
        try:
            result = self.fallback_fn(attempt.job)
        except Exception as exc:  # KeyboardInterrupt still propagates
            report.health.crashed_shards += 1
            report.failed.append(
                FailedShard(
                    attempt.job,
                    ABORT_SHARD_CRASHED,
                    f"in-process shard raised {type(exc).__name__}: {exc}",
                )
            )
            return
        report.results.append(result)
        if self.on_result is not None:
            self.on_result(result)

    def _drain_at_deadline(
        self,
        pending: deque,
        running: list[_Running],
        report: SupervisorReport,
    ) -> None:
        """Deadline fired: stop everything, report the faults unrun."""
        for entry in running:
            if entry.process.is_alive():
                entry.process.terminate()
            entry.process.join()
            entry.conn.close()
            report.failed.append(
                FailedShard(
                    entry.attempt.job,
                    ABORT_DEADLINE,
                    "terminated at run deadline",
                )
            )
        running.clear()
        while pending:
            report.failed.append(
                FailedShard(
                    pending.popleft().job,
                    ABORT_DEADLINE,
                    "not dispatched before run deadline",
                )
            )
