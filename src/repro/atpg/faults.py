"""Single stuck-at fault model (paper Section 2).

A fault ψ = ψ(X, B) pins net X of circuit C to the constant B.  Faults are
modelled at nets (stems); :func:`full_fault_list` enumerates both
polarities on every net, and :func:`collapse_faults` applies the standard
structural equivalence rules so the ATPG experiments process one
representative per equivalence class (as any practical tool does):

* a BUF output fault is equivalent to the same-polarity input fault;
* a NOT output fault is equivalent to the opposite-polarity input fault;
* an AND output s-a-0 is equivalent to s-a-0 on any single-fanout input
  stem (dually OR output s-a-1 / input s-a-1; NAND/NOR with inversion).
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro.circuits.gates import GateType
from repro.circuits.network import Network


@dataclass(frozen=True, order=True)
class Fault:
    """A single stuck-at fault: net ``net`` stuck at ``value``."""

    net: str
    value: int

    def __post_init__(self) -> None:
        if self.value not in (0, 1):
            raise ValueError(f"stuck-at value must be 0 or 1, got {self.value}")

    def __str__(self) -> str:
        return f"{self.net}/sa{self.value}"


def full_fault_list(network: Network) -> list[Fault]:
    """Both stuck-at faults on every driven net, in deterministic order."""
    faults: list[Fault] = []
    for net in network.topological_order():
        faults.append(Fault(net, 0))
        faults.append(Fault(net, 1))
    return faults


#: Gate-type → (controlling output value, equivalent input value, inverted?)
_EQUIVALENCE_RULES = {
    GateType.AND: (0, 0, False),
    GateType.OR: (1, 1, False),
    GateType.NAND: (1, 0, True),
    GateType.NOR: (0, 1, True),
}


class _UnionFind:
    """Union-find over fault objects for equivalence collapsing."""

    def __init__(self) -> None:
        self._parent: dict[Fault, Fault] = {}

    def find(self, item: Fault) -> Fault:
        parent = self._parent.setdefault(item, item)
        if parent is item:
            return item
        root = self.find(parent)
        self._parent[item] = root
        return root

    def union(self, a: Fault, b: Fault) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            # Deterministic representative: the smaller fault.
            if (rb.net, rb.value) < (ra.net, ra.value):
                ra, rb = rb, ra
            self._parent[rb] = ra


def equivalence_classes(network: Network) -> dict[Fault, list[Fault]]:
    """Structural fault-equivalence classes of the full fault list."""
    uf = _UnionFind()
    for fault in full_fault_list(network):
        uf.find(fault)

    for net in network.nets:
        gate = network.gate(net)
        gtype = gate.gate_type
        if gtype is GateType.BUF:
            (src,) = gate.inputs
            if len(network.fanouts(src)) == 1:
                uf.union(Fault(net, 0), Fault(src, 0))
                uf.union(Fault(net, 1), Fault(src, 1))
        elif gtype is GateType.NOT:
            (src,) = gate.inputs
            if len(network.fanouts(src)) == 1:
                uf.union(Fault(net, 0), Fault(src, 1))
                uf.union(Fault(net, 1), Fault(src, 0))
        elif gtype in _EQUIVALENCE_RULES:
            out_value, in_value, _ = _EQUIVALENCE_RULES[gtype]
            for src in gate.inputs:
                if len(network.fanouts(src)) == 1:
                    uf.union(Fault(net, out_value), Fault(src, in_value))

    classes: dict[Fault, list[Fault]] = {}
    for fault in full_fault_list(network):
        classes.setdefault(uf.find(fault), []).append(fault)
    return classes


def collapse_faults(network: Network) -> list[Fault]:
    """One representative fault per structural equivalence class."""
    return sorted(equivalence_classes(network))


def inject_fault(network: Network, fault: Fault) -> Network:
    """The faulted circuit C_ψ: ``fault.net`` replaced by a constant.

    The returned network is a copy; the original is untouched.  The
    faulted net keeps its name so downstream naming stays aligned.
    """
    if not network.has_net(fault.net):
        raise ValueError(f"fault on unknown net {fault.net!r}")
    faulty = network.copy(name=f"{network.name}#{fault}")
    const = GateType.CONST1 if fault.value else GateType.CONST0
    faulty.replace_gate(fault.net, const, ())
    return faulty


def detectable_outputs(network: Network, fault: Fault) -> list[str]:
    """Primary outputs in the transitive fanout of the fault site."""
    reach = network.transitive_fanout([fault.net])
    return [out for out in network.outputs if out in reach]


def faults_on(nets: Iterable[str]) -> list[Fault]:
    """Both polarities on each given net."""
    result = []
    for net in nets:
        result.append(Fault(net, 0))
        result.append(Fault(net, 1))
    return result
