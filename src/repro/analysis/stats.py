"""Small statistics helpers for experiment reports."""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np


@dataclass
class Summary:
    """Five-number-style summary of a sample."""

    count: int
    mean: float
    median: float
    p90: float
    p99: float
    minimum: float
    maximum: float


def summarize(values: Sequence[float]) -> Summary:
    """Summary statistics of ``values`` (empty input yields zeros)."""
    if not values:
        return Summary(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
    arr = np.asarray(values, float)
    return Summary(
        count=len(arr),
        mean=float(arr.mean()),
        median=float(np.median(arr)),
        p90=float(np.percentile(arr, 90)),
        p99=float(np.percentile(arr, 99)),
        minimum=float(arr.min()),
        maximum=float(arr.max()),
    )


def fraction_below(values: Sequence[float], threshold: float) -> float:
    """Fraction of samples strictly below ``threshold``."""
    if not values:
        return 0.0
    arr = np.asarray(values, float)
    return float((arr < threshold).mean())


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Plain-text aligned table for experiment reports."""
    cells = [[str(h) for h in headers]] + [
        [str(c) for c in row] for row in rows
    ]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for index, row in enumerate(cells):
        lines.append(
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        )
        if index == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)
