"""ASCII scatter plots for terminal-rendered figures.

The paper's Figures 1 and 8 are scatter plots with fitted curves; in a
text-only reproduction environment we render them as character rasters,
optionally overlaying a fitted model so the "log curve hugs the data"
claim is visible at a glance.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Sequence


def scatter(
    x: Sequence[float],
    y: Sequence[float],
    *,
    width: int = 72,
    height: int = 20,
    log_x: bool = False,
    overlay: Callable[[float], float] | None = None,
    x_label: str = "x",
    y_label: str = "y",
    title: str = "",
) -> str:
    """Render points (and an optional fitted curve) as ASCII art.

    Args:
        x, y: the data (equal length, non-empty).
        width, height: raster size in characters.
        log_x: use a logarithmic x axis (the paper's Figure 8 style).
        overlay: a model ``f(x) -> y`` drawn with ``*`` characters.
        x_label, y_label, title: annotations.

    Raises:
        ValueError: on empty/mismatched data or non-positive x with
            ``log_x``.
    """
    if not x or len(x) != len(y):
        raise ValueError("x and y must be equal-length and non-empty")
    if log_x and min(x) <= 0:
        raise ValueError("log_x requires positive x values")

    def tx(value: float) -> float:
        return math.log(value) if log_x else value

    x_min, x_max = min(tx(v) for v in x), max(tx(v) for v in x)
    y_min, y_max = min(y), max(y)
    if x_max == x_min:
        x_max = x_min + 1.0
    if y_max == y_min:
        y_max = y_min + 1.0

    def column(value: float) -> int:
        return round((tx(value) - x_min) / (x_max - x_min) * (width - 1))

    def row(value: float) -> int:
        return (height - 1) - round(
            (value - y_min) / (y_max - y_min) * (height - 1)
        )

    raster = [[" "] * width for _ in range(height)]

    if overlay is not None:
        for col in range(width):
            t = x_min + (x_max - x_min) * col / (width - 1)
            raw = math.exp(t) if log_x else t
            value = overlay(raw)
            if y_min <= value <= y_max:
                raster[row(value)][col] = "*"

    for xv, yv in zip(x, y):
        raster[row(yv)][column(xv)] = "o"

    lines = []
    if title:
        lines.append(title)
    top = f"{y_max:g}"
    bottom = f"{y_min:g}"
    pad = max(len(top), len(bottom))
    for index, raster_row in enumerate(raster):
        label = top if index == 0 else bottom if index == height - 1 else ""
        lines.append(f"{label:>{pad}} |" + "".join(raster_row))
    axis = "-" * width
    lines.append(f"{'':>{pad}} +{axis}")
    left = f"{math.exp(x_min):g}" if log_x else f"{x_min:g}"
    right = f"{math.exp(x_max):g}" if log_x else f"{x_max:g}"
    scale = " (log x)" if log_x else ""
    lines.append(
        f"{'':>{pad}}  {left}{' ' * max(1, width - len(left) - len(right))}"
        f"{right}"
    )
    lines.append(f"{'':>{pad}}  {x_label}{scale} vs {y_label}"
                 + ("   o=data *=fit" if overlay else "   o=data"))
    return "\n".join(lines)


def histogram(
    values: Sequence[float],
    *,
    bins: int = 12,
    width: int = 50,
    title: str = "",
) -> str:
    """A horizontal ASCII histogram."""
    if not values:
        raise ValueError("no values")
    lo, hi = min(values), max(values)
    if hi == lo:
        hi = lo + 1.0
    counts = [0] * bins
    for value in values:
        index = min(bins - 1, int((value - lo) / (hi - lo) * bins))
        counts[index] += 1
    peak = max(counts)
    lines = [title] if title else []
    for index, count in enumerate(counts):
        left = lo + (hi - lo) * index / bins
        bar = "#" * round(count / peak * width) if peak else ""
        lines.append(f"{left:>10.3g} | {bar} {count}")
    return "\n".join(lines)
