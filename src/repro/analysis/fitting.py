"""Least-squares curve fitting (paper Section 5.2.2).

The paper fits linear (y = ax + b), logarithmic (y = a·log x + b) and
power (y = a·x^b) curves to the (circuit size, cut-width) scatter and
reports that the log curve gives the best least-squares fit.  We
reproduce exactly that model-selection step.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np


@dataclass
class FitResult:
    """A fitted model with its residual quality."""

    model: str  # "linear" | "log" | "power"
    a: float
    b: float
    sse: float  # sum of squared errors in y-space
    r_squared: float

    def predict(self, x: float) -> float:
        """Model prediction at ``x``."""
        if self.model == "linear":
            return self.a * x + self.b
        if self.model == "log":
            return self.a * math.log(max(x, 1e-12)) + self.b
        if self.model == "power":
            return self.a * (max(x, 1e-12) ** self.b)
        raise ValueError(f"unknown model {self.model!r}")


def _sse_and_r2(y: np.ndarray, predictions: np.ndarray) -> tuple[float, float]:
    residual = y - predictions
    sse = float(np.dot(residual, residual))
    total = float(np.dot(y - y.mean(), y - y.mean()))
    r_squared = 1.0 - sse / total if total > 0 else 1.0
    return sse, r_squared


def fit_linear(x: Sequence[float], y: Sequence[float]) -> FitResult:
    """Least-squares fit of y = a·x + b."""
    xa, ya = np.asarray(x, float), np.asarray(y, float)
    a, b = np.polyfit(xa, ya, 1)
    sse, r2 = _sse_and_r2(ya, a * xa + b)
    return FitResult("linear", float(a), float(b), sse, r2)


def fit_log(x: Sequence[float], y: Sequence[float]) -> FitResult:
    """Least-squares fit of y = a·log(x) + b (natural log)."""
    xa, ya = np.asarray(x, float), np.asarray(y, float)
    if np.any(xa <= 0):
        raise ValueError("log fit requires positive x values")
    lx = np.log(xa)
    a, b = np.polyfit(lx, ya, 1)
    sse, r2 = _sse_and_r2(ya, a * lx + b)
    return FitResult("log", float(a), float(b), sse, r2)


def fit_power(x: Sequence[float], y: Sequence[float]) -> FitResult:
    """Fit of y = a·x^b via log-log linear regression.

    Data points with non-positive y are dropped for the regression (they
    carry no information in log space) but still count towards the SSE,
    which is evaluated in the original y-space as the paper's
    least-squares comparison requires.
    """
    xa, ya = np.asarray(x, float), np.asarray(y, float)
    if np.any(xa <= 0):
        raise ValueError("power fit requires positive x values")
    keep = ya > 0
    if keep.sum() < 2:
        raise ValueError("power fit needs at least two positive y values")
    coeff_b, log_a = np.polyfit(np.log(xa[keep]), np.log(ya[keep]), 1)
    a = math.exp(log_a)
    predictions = a * xa**coeff_b
    sse, r2 = _sse_and_r2(ya, predictions)
    return FitResult("power", float(a), float(coeff_b), sse, r2)


def best_fit(x: Sequence[float], y: Sequence[float]) -> FitResult:
    """The paper's model selection: lowest SSE among linear/log/power."""
    candidates = []
    for fitter in (fit_linear, fit_log, fit_power):
        try:
            candidates.append(fitter(x, y))
        except ValueError:
            continue
    if not candidates:
        raise ValueError("no model could be fitted")
    return min(candidates, key=lambda fit: fit.sse)


def all_fits(x: Sequence[float], y: Sequence[float]) -> dict[str, FitResult]:
    """All three fits keyed by model name (missing ones omitted)."""
    results: dict[str, FitResult] = {}
    for fitter in (fit_linear, fit_log, fit_power):
        try:
            fit = fitter(x, y)
        except ValueError:
            continue
        results[fit.model] = fit
    return results
