"""Analysis helpers: curve fitting and summary statistics."""

from repro.analysis.ascii_plot import histogram, scatter
from repro.analysis.fitting import (
    FitResult,
    all_fits,
    best_fit,
    fit_linear,
    fit_log,
    fit_power,
)
from repro.analysis.stats import Summary, format_table, fraction_below, summarize

__all__ = [
    "FitResult",
    "Summary",
    "all_fits",
    "best_fit",
    "fit_linear",
    "fit_log",
    "fit_power",
    "format_table",
    "fraction_below",
    "histogram",
    "scatter",
    "summarize",
]
