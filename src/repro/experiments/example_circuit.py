"""The paper's running example (Figures 4–7).

Reconstructs the Figure 4(a) circuit — nets a…i, gates f(b,c), g(d,e),
h(a,f), i(h,g), single output i — and reproduces every claim the paper
makes about it:

* Figure 5: the caching-based backtracking tree under ordering A, with
  cache hits pruning repeated sub-formulas;
* Figure 6: cut-width 3 under ordering A versus a larger width under the
  naive ordering B;
* Figure 7: the stuck-at-1 fault on net f yields an ATPG circuit whose
  Lemma 4.2 ordering achieves cut-width ≤ 2·W(A)+2 (the paper reports 4).

(The OCR'd clause polarities of Formula 4.1 are inconsistent; we use a
self-consistent gate assignment with identical topology — see DESIGN.md.)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.atpg.faults import Fault
from repro.atpg.miter import build_atpg_circuit
from repro.circuits.gates import GateType
from repro.circuits.network import Network
from repro.core.bounds import lemma_4_2_bound, theorem_4_1_bound
from repro.core.dcsf import dcsf_counts_along_order
from repro.core.hypergraph import circuit_hypergraph, cut_profile, cut_width_under_order
from repro.core.ordering import miter_cutwidth_under_fault_ordering
from repro.sat.caching import CachingBacktrackingSolver
from repro.sat.tseitin import circuit_sat_formula

#: Ordering A of Figure 5/6 (good: follows the circuit structure).
ORDERING_A = ["b", "c", "f", "a", "h", "d", "e", "g", "i"]
#: Ordering B of Figure 6 (bad: inputs first, mixing the two cones).
ORDERING_B = ["a", "b", "c", "d", "e", "f", "g", "h", "i"]
#: The example fault: net f stuck-at-1 (Section 4's running example).
EXAMPLE_FAULT = Fault("f", 1)


def example_circuit() -> Network:
    """The Figure 4(a) circuit."""
    network = Network("fig4a")
    for name in "abcde":
        network.add_input(name)
    network.add_gate("f", GateType.OR, ["b", "c"])
    network.add_gate("g", GateType.NAND, ["d", "e"])
    network.add_gate("h", GateType.AND, ["a", "f"])
    network.add_gate("i", GateType.OR, ["h", "g"])
    network.set_outputs(["i"])
    return network


@dataclass
class ExampleReport:
    """All measured quantities for the running example."""

    width_a: int
    width_b: int
    profile_a: list[int]
    profile_b: list[int]
    solver_nodes: int
    solver_cache_hits: int
    solver_sat: bool
    theorem_4_1_rhs: int
    dcsf_per_depth: list[int]
    miter_width: int
    lemma_4_2_rhs: int

    def render(self) -> str:
        lines = [
            "Running example (Figures 4-7)",
            f"  W(C, A) = {self.width_a}   profile {self.profile_a}",
            f"  W(C, B) = {self.width_b}   profile {self.profile_b}",
            f"  caching backtracking under A: nodes={self.solver_nodes} "
            f"cache_hits={self.solver_cache_hits} sat={self.solver_sat}",
            f"  Theorem 4.1 bound n*2^(2*kfo*W) = {self.theorem_4_1_rhs} "
            f">= nodes ({self.solver_nodes})",
            f"  DCSFs per depth under A: {self.dcsf_per_depth}",
            f"  fault {EXAMPLE_FAULT}: W(C_psi^ATPG, h_psi) = "
            f"{self.miter_width} <= 2W+2 = {self.lemma_4_2_rhs}",
        ]
        return "\n".join(lines)


def run_example() -> ExampleReport:
    """Measure every Figure 4–7 quantity on the running example."""
    network = example_circuit()
    graph = circuit_hypergraph(network)
    formula = circuit_sat_formula(network)
    k_fo = max(1, network.max_fanout())

    width_a = cut_width_under_order(graph, ORDERING_A)
    width_b = cut_width_under_order(graph, ORDERING_B)

    solver = CachingBacktrackingSolver(order=ORDERING_A, collect_trace=True)
    result = solver.solve(formula)

    atpg = build_atpg_circuit(network, EXAMPLE_FAULT)
    miter_width = miter_cutwidth_under_fault_ordering(atpg, ORDERING_A)

    return ExampleReport(
        width_a=width_a,
        width_b=width_b,
        profile_a=cut_profile(graph, ORDERING_A),
        profile_b=cut_profile(graph, ORDERING_B),
        solver_nodes=result.stats.nodes,
        solver_cache_hits=result.stats.cache_hits,
        solver_sat=result.is_sat,
        theorem_4_1_rhs=theorem_4_1_bound(
            formula.num_variables(), k_fo, width_a
        ),
        dcsf_per_depth=dcsf_counts_along_order(formula, ORDERING_A),
        miter_width=miter_width,
        lemma_4_2_rhs=lemma_4_2_bound(width_a),
    )
