"""Section 6: BDD width bounds versus cut-width bounds.

Quantifies the paper's contrast on concrete circuits:

* the McMillan BDD bound ``n · 2^(w_f · 2^(w_r))`` under a topological
  and under an MLA ordering of the circuit elements;
* the paper's backtracking bound ``n · 2^(2·k_fo·W)``;
* actual BDD sizes and actual caching-backtracking tree sizes.

The doubly-exponential reverse-width dependence means MLA orderings
(which freely mix directions) can make the BDD bound astronomically
worse while the cut-width bound improves — the paper's core point that
the two results "characterize different entities altogether".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bdd.circuit_bdd import BddSizeLimitExceeded, output_bdd_size
from repro.bdd.width_bounds import directed_widths, mcmillan_bound
from repro.circuits.network import Network
from repro.core.bounds import theorem_4_1_bound
from repro.core.hypergraph import circuit_hypergraph, cut_width_under_order
from repro.core.mla import min_cut_linear_arrangement
from repro.sat.caching import CachingBacktrackingSolver
from repro.sat.tseitin import circuit_sat_formula


@dataclass
class BddComparisonRow:
    """One circuit's side-by-side bound comparison."""

    circuit: str
    num_nets: int
    cutwidth: int
    backtracking_bound: int
    backtracking_nodes: int
    forward_width_topo: int
    reverse_width_topo: int
    mcmillan_bound_topo: int
    forward_width_mla: int
    reverse_width_mla: int
    mcmillan_log2_mla: float
    bdd_size: int | None


@dataclass
class BddComparisonReport:
    """All rows of the Section 6 comparison."""

    rows: list[BddComparisonRow] = field(default_factory=list)

    def render(self) -> str:
        lines = ["Section 6: BDD bounds vs cut-width bounds"]
        for row in self.rows:
            bdd = "overflow" if row.bdd_size is None else str(row.bdd_size)
            lines.extend(
                [
                    f"  {row.circuit} (nets={row.num_nets})",
                    f"    W={row.cutwidth}  backtracking bound="
                    f"{row.backtracking_bound}  actual nodes="
                    f"{row.backtracking_nodes}",
                    f"    topo widths wf={row.forward_width_topo} "
                    f"wr={row.reverse_width_topo}  McMillan bound="
                    f"{row.mcmillan_bound_topo}",
                    f"    MLA widths wf={row.forward_width_mla} "
                    f"wr={row.reverse_width_mla}  log2(McMillan)="
                    f"{row.mcmillan_log2_mla:.0f}",
                    f"    actual BDD size={bdd}",
                ]
            )
        return "\n".join(lines)


def compare_circuit(network: Network, *, seed: int = 0) -> BddComparisonRow:
    """Build one comparison row for a single-output circuit cone."""
    graph = circuit_hypergraph(network)
    mla = min_cut_linear_arrangement(graph, seed=seed)
    cutwidth = cut_width_under_order(graph, mla.order)
    k_fo = max(1, network.max_fanout())

    formula = circuit_sat_formula(network)
    solver = CachingBacktrackingSolver(order=mla.order)
    result = solver.solve(formula)

    topo_widths = directed_widths(network, network.topological_order())
    mla_widths = directed_widths(network, mla.order)

    try:
        bdd_size: int | None = output_bdd_size(network, max_nodes=500_000)
    except BddSizeLimitExceeded:
        bdd_size = None

    # log2 of the MLA-order McMillan bound, computed without materialising
    # the doubly-exponential integer.
    mcmillan_log2_mla = mla_widths.forward * float(1 << min(mla_widths.reverse, 60))

    return BddComparisonRow(
        circuit=network.name,
        num_nets=len(network.nets),
        cutwidth=cutwidth,
        backtracking_bound=theorem_4_1_bound(
            formula.num_variables(), k_fo, cutwidth
        ),
        backtracking_nodes=result.stats.nodes,
        forward_width_topo=topo_widths.forward,
        reverse_width_topo=topo_widths.reverse,
        mcmillan_bound_topo=mcmillan_bound(len(network.inputs), topo_widths),
        forward_width_mla=mla_widths.forward,
        reverse_width_mla=mla_widths.reverse,
        mcmillan_log2_mla=mcmillan_log2_mla,
        bdd_size=bdd_size,
    )


def run_bdd_comparison(networks: list[Network] | None = None) -> BddComparisonReport:
    """Compare bounds across a default set of structured circuits."""
    if networks is None:
        from repro.circuits.decompose import tech_decompose
        from repro.gen.structured import (
            binary_tree_circuit,
            comparator,
            parity_tree,
            ripple_carry_adder,
        )

        networks = [
            tech_decompose(binary_tree_circuit(4)),
            tech_decompose(parity_tree(8)),
            tech_decompose(ripple_carry_adder(4)).output_cone("c4"),
            tech_decompose(comparator(4)).output_cone("greater"),
        ]
    report = BddComparisonReport()
    for network in networks:
        report.rows.append(compare_circuit(network))
    return report
