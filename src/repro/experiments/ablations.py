"""Ablation studies for the design choices the analysis rests on.

* **Caching ablation** (Section 4.1's modelling choice): Algorithm 1 with
  the sub-formula cache versus plain simple backtracking, measured in
  visited tree nodes on the same formulas under the same ordering.
* **Ordering ablation** (Section 5.2.1's MLA choice): cut-width and
  solver effort under the MLA ordering versus topological versus random
  orderings — quantifying how much of the "easiness" the ordering buys.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.circuits.network import Network
from repro.core.hypergraph import circuit_hypergraph, cut_width_under_order
from repro.core.mla import min_cut_linear_arrangement
from repro.sat.backtracking import SimpleBacktrackingSolver
from repro.sat.caching import CachingBacktrackingSolver
from repro.sat.tseitin import circuit_sat_formula


@dataclass
class CachingAblationRow:
    """Tree sizes with and without the sub-formula cache."""

    circuit: str
    order: str
    cached_nodes: int
    uncached_nodes: int
    cache_hits: int

    @property
    def speedup(self) -> float:
        """Node-count ratio uncached/cached (≥ 1 when caching helps)."""
        return self.uncached_nodes / max(1, self.cached_nodes)


@dataclass
class OrderingAblationRow:
    """Cut-width and solver nodes under three orderings."""

    circuit: str
    width_mla: int
    width_topo: int
    width_random: int
    nodes_mla: int
    nodes_topo: int
    nodes_random: int


@dataclass
class MlaAblationRow:
    """Cut-width achieved by successive MLA quality features."""

    circuit: str
    width_bisect_only: int
    width_with_candidates: int
    width_full: int


@dataclass
class AblationReport:
    """Container for the ablation tables."""

    caching: list[CachingAblationRow] = field(default_factory=list)
    ordering: list[OrderingAblationRow] = field(default_factory=list)
    mla: list[MlaAblationRow] = field(default_factory=list)

    def render(self) -> str:
        lines = ["Ablation: sub-formula caching (Algorithm 1 vs simple)"]
        for row in self.caching:
            lines.append(
                f"  {row.circuit:<18} nodes cached={row.cached_nodes:<8} "
                f"uncached={row.uncached_nodes:<8} "
                f"hits={row.cache_hits:<6} ratio={row.speedup:.2f}x"
            )
        lines.append("Ablation: variable ordering (MLA vs topo vs random)")
        for row in self.ordering:
            lines.append(
                f"  {row.circuit:<18} W: mla={row.width_mla} "
                f"topo={row.width_topo} rand={row.width_random}  "
                f"nodes: mla={row.nodes_mla} topo={row.nodes_topo} "
                f"rand={row.nodes_random}"
            )
        if self.mla:
            lines.append(
                "Ablation: MLA quality features (recursive bisection -> "
                "+structural candidates -> +window refinement)"
            )
            for row in self.mla:
                lines.append(
                    f"  {row.circuit:<18} W: bisect={row.width_bisect_only} "
                    f"+candidates={row.width_with_candidates} "
                    f"full={row.width_full}"
                )
        return "\n".join(lines)


def caching_ablation(
    network: Network, *, max_nodes: int = 2_000_000, seed: int = 0
) -> CachingAblationRow:
    """Run both solvers on the circuit's CIRCUIT-SAT formula.

    Uses the plain topological order — the natural static order a naive
    backtracker would pick — so the measurement isolates the cache's
    effect rather than the ordering's (the ordering has its own ablation).
    """
    order = network.topological_order()
    formula = circuit_sat_formula(network)

    cached = CachingBacktrackingSolver(order=order, max_nodes=max_nodes)
    cached_result = cached.solve(formula)
    uncached = SimpleBacktrackingSolver(order=order, max_nodes=max_nodes)
    uncached_result = uncached.solve(formula)

    return CachingAblationRow(
        circuit=network.name,
        order="topological",
        cached_nodes=cached_result.stats.nodes,
        uncached_nodes=uncached_result.stats.nodes,
        cache_hits=cached_result.stats.cache_hits,
    )


def ordering_ablation(
    network: Network, *, max_nodes: int = 2_000_000, seed: int = 0
) -> OrderingAblationRow:
    """Measure cut-width and caching-solver nodes under three orderings."""
    graph = circuit_hypergraph(network)
    formula = circuit_sat_formula(network)
    rng = random.Random(seed)

    mla_order = min_cut_linear_arrangement(graph, seed=seed).order
    topo_order = network.topological_order()
    random_order = list(graph.vertices)
    rng.shuffle(random_order)

    def nodes_under(order: list[str]) -> int:
        solver = CachingBacktrackingSolver(order=order, max_nodes=max_nodes)
        return solver.solve(formula).stats.nodes

    return OrderingAblationRow(
        circuit=network.name,
        width_mla=cut_width_under_order(graph, mla_order),
        width_topo=cut_width_under_order(graph, topo_order),
        width_random=cut_width_under_order(graph, random_order),
        nodes_mla=nodes_under(mla_order),
        nodes_topo=nodes_under(topo_order),
        nodes_random=nodes_under(random_order),
    )


def mla_ablation(network: Network, *, seed: int = 0) -> MlaAblationRow:
    """Measure the contribution of each MLA quality feature.

    * bisect-only: raw recursive bisection arrangement (with terminal
      propagation) — what a straight §5.2.1 implementation gives;
    * +candidates: also considering the DFS cone packing and the
      construction order, no refinement;
    * full: the shipped pipeline including degree-1 packing and exact
      window refinement.
    """
    from repro.core.mla import _arrange, min_cut_linear_arrangement
    from repro.core.ordering import dfs_cone_ordering

    graph = circuit_hypergraph(network)
    bisect_order = _arrange(graph, list(graph.vertices), set(), set(), 12, seed)
    width_bisect = cut_width_under_order(graph, bisect_order)

    candidates = [dfs_cone_ordering(network), list(graph.vertices)]
    no_refine = min_cut_linear_arrangement(
        graph, seed=seed, refine=False, candidate_orders=candidates
    )
    full = min_cut_linear_arrangement(
        graph, seed=seed, refine=True, candidate_orders=candidates
    )
    return MlaAblationRow(
        circuit=network.name,
        width_bisect_only=width_bisect,
        width_with_candidates=no_refine.cutwidth,
        width_full=full.cutwidth,
    )


def run_ablations(networks: list[Network] | None = None) -> AblationReport:
    """Both ablations over a default circuit set."""
    if networks is None:
        from repro.circuits.decompose import tech_decompose
        from repro.gen.structured import (
            binary_tree_circuit,
            cellular_array_1d,
            parity_tree,
            ripple_carry_adder,
        )

        networks = [
            tech_decompose(binary_tree_circuit(3)),
            tech_decompose(parity_tree(6)),
            tech_decompose(ripple_carry_adder(3)),
            tech_decompose(cellular_array_1d(4)),
        ]
    report = AblationReport()
    for network in networks:
        report.caching.append(caching_ablation(network))
        report.ordering.append(ordering_ablation(network))
        report.mla.append(mla_ablation(network))
    return report
