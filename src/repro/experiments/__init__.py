"""Experiment drivers, one per paper figure/claim (see DESIGN.md §4)."""

from repro.experiments.ablations import (
    AblationReport,
    caching_ablation,
    ordering_ablation,
    run_ablations,
)
from repro.experiments.bdd_comparison import (
    BddComparisonReport,
    compare_circuit,
    run_bdd_comparison,
)
from repro.experiments.example_circuit import (
    EXAMPLE_FAULT,
    ORDERING_A,
    ORDERING_B,
    ExampleReport,
    example_circuit,
    run_example,
)
from repro.experiments.fig1_tegus import Fig1Point, Fig1Report, run_fig1
from repro.experiments.fig8_cutwidth_study import (
    Fig8Point,
    Fig8Report,
    run_fig8,
)
from repro.experiments.fig_generated import (
    GeneratedStudyReport,
    run_generated_study,
)
from repro.experiments.width_vs_effort import (
    WidthEffortPoint,
    WidthEffortReport,
    run_width_vs_effort,
)
from repro.experiments.suite_table import (
    SuiteRow,
    SuiteTableReport,
    run_suite_table,
)
from repro.experiments.phase_transition import (
    PhasePoint,
    PhaseTransitionReport,
    run_phase_transition,
)

__all__ = [
    "AblationReport",
    "BddComparisonReport",
    "EXAMPLE_FAULT",
    "ExampleReport",
    "Fig1Point",
    "Fig1Report",
    "Fig8Point",
    "Fig8Report",
    "GeneratedStudyReport",
    "ORDERING_A",
    "ORDERING_B",
    "PhasePoint",
    "PhaseTransitionReport",
    "run_phase_transition",
    "SuiteRow",
    "SuiteTableReport",
    "run_suite_table",
    "WidthEffortPoint",
    "WidthEffortReport",
    "run_width_vs_effort",
    "caching_ablation",
    "compare_circuit",
    "example_circuit",
    "ordering_ablation",
    "run_ablations",
    "run_bdd_comparison",
    "run_example",
    "run_fig1",
    "run_fig8",
    "run_generated_study",
]
