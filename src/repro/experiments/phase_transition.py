"""Extension experiment: the locality-of-reconvergence phase transition.

The paper's closing intuition (Section 7): log-bounded width "essentially
captures the tree-ness of the circuit — as long as a circuit has limited
reconvergence... the property can be expected to apply".  Section 3.2
sharpens "limited" to *local* (k-boundedness confines reconvergence to
k-input blocks).  This experiment shows that locality — not the *amount*
of reconvergence — is the decisive knob:

* sweeping the reuse **probability** with window-local reuse leaves the
  cut-width growth logarithmic at every level (local reconvergence is
  harmless, however much of it there is);
* sweeping the fraction of **global** (unbounded-span) reuse drives the
  width-growth exponent from ≈0 (log regime) towards linear, because
  long random links turn the circuit into an expander.

Practical circuits sit at global-reuse ≈ 0; that is why ATPG is easy on
them, and exactly where adversarially hard instances would differ.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.fitting import FitResult, all_fits
from repro.circuits.decompose import tech_decompose
from repro.core.bounds import fault_width_samples
from repro.gen.random_circuits import RandomCircuitSpec, random_circuit


@dataclass
class PhasePoint:
    """Width-growth diagnostics at one generator setting."""

    label: str
    value: float
    points: list[tuple[int, int]]  # (size, width)
    fits: dict[str, FitResult]

    @property
    def power_exponent(self) -> float:
        """Exponent b of the W ≈ a·size^b fit (≈0 ⇒ flat/log; →1 ⇒ linear)."""
        fit = self.fits.get("power")
        return fit.b if fit else float("nan")

    @property
    def best_model(self) -> str:
        if not self.fits:
            return "none"
        return min(self.fits.values(), key=lambda f: f.sse).model

    @property
    def max_width(self) -> int:
        return max((w for _, w in self.points), default=0)


@dataclass
class PhaseTransitionReport:
    """Both sweeps: local-reuse probability and global-reuse fraction."""

    sizes: list[int]
    local_sweep: list[PhasePoint] = field(default_factory=list)
    global_sweep: list[PhasePoint] = field(default_factory=list)

    def render(self) -> str:
        lines = [
            "Extension: cut-width growth vs reconvergence structure",
            f"  circuit sizes per setting: {self.sizes}",
            "  -- local (window-bounded) reuse probability --",
            "  level    best-fit   power-exp   max W",
        ]
        for row in self.local_sweep:
            lines.append(
                f"  {row.value:<8} {row.best_model:<10} "
                f"{row.power_exponent:<11.2f} {row.max_width}"
            )
        lines.append("  -- global (unbounded-span) reuse fraction --")
        lines.append("  level    best-fit   power-exp   max W")
        for row in self.global_sweep:
            lines.append(
                f"  {row.value:<8} {row.best_model:<10} "
                f"{row.power_exponent:<11.2f} {row.max_width}"
            )
        return "\n".join(lines)


def _measure(
    label: str,
    value: float,
    sizes: list[int],
    seeds: tuple[int, ...],
    faults_per_circuit: int,
    *,
    reconvergence: float,
    global_reuse: float,
) -> PhasePoint:
    points: list[tuple[int, int]] = []
    for size in sizes:
        for seed in seeds:
            spec = RandomCircuitSpec(
                num_inputs=max(6, size // 6),
                num_gates=size,
                num_outputs=max(1, round(size**0.5) // 2),
                locality=0.6,
                reconvergence=reconvergence,
                global_reuse=global_reuse,
                seed=seed,
            )
            network = tech_decompose(random_circuit(spec))
            for sample in fault_width_samples(
                network, max_faults=faults_per_circuit
            ):
                if sample.sub_circuit_size >= 4:
                    points.append((sample.sub_circuit_size, sample.cutwidth))
    fits = (
        all_fits([float(s) for s, _ in points], [float(w) for _, w in points])
        if len(points) >= 4
        else {}
    )
    return PhasePoint(label=label, value=value, points=points, fits=fits)


def run_phase_transition(
    local_levels: list[float] | None = None,
    global_levels: list[float] | None = None,
    sizes: list[int] | None = None,
    *,
    faults_per_circuit: int = 8,
    seeds: tuple[int, ...] = (11, 12),
) -> PhaseTransitionReport:
    """Run both sweeps.

    Args:
        local_levels: window-local reuse probabilities to test.
        global_levels: global-reuse fractions to test (at fixed local
            reuse probability 0.25).
        sizes: gate-count ladder per setting.
        faults_per_circuit: fault subsample per circuit.
        seeds: generator seeds averaged over.
    """
    if local_levels is None:
        local_levels = [0.0, 0.2, 0.4]
    if global_levels is None:
        global_levels = [0.0, 0.3, 0.7]
    if sizes is None:
        sizes = [100, 250, 600, 1200]

    report = PhaseTransitionReport(sizes=list(sizes))
    for level in local_levels:
        report.local_sweep.append(
            _measure(
                "local",
                level,
                sizes,
                seeds,
                faults_per_circuit,
                reconvergence=level,
                global_reuse=0.0,
            )
        )
    for level in global_levels:
        report.global_sweep.append(
            _measure(
                "global",
                level,
                sizes,
                seeds,
                faults_per_circuit,
                reconvergence=0.25,
                global_reuse=level,
            )
        )
    return report
