"""Extension: does cut-width predict per-instance SAT effort?

The paper establishes the implication in one direction — small cut-width
⇒ provably small search tree (Theorem 4.1) — and shows separately that
practical instances are easy (Figure 1) and practical widths are small
(Figure 8).  This experiment closes the loop it leaves implicit: on the
same faults, measure both the cut-width of C_ψ^sub *and* the actual
search effort of the caching solver on the ATPG-SAT instance, and test
whether the theoretical predictor orders real difficulty.

Two statistics are reported:

* the rank correlation (Spearman) between W(C_ψ^sub) and log(nodes);
* a bound check: every instance's node count against its own
  Theorem 4.1 RHS under the Lemma 4.2 ordering.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy import stats as scipy_stats

from repro.atpg.faults import collapse_faults
from repro.atpg.miter import UnobservableFault, build_atpg_circuit
from repro.circuits.network import Network
from repro.core.bounds import subsample_faults, theorem_4_1_bound
from repro.core.hypergraph import circuit_hypergraph, cut_width_under_order
from repro.core.mla import min_cut_linear_arrangement
from repro.core.ordering import dfs_cone_ordering, fault_ordering
from repro.sat.caching import CachingBacktrackingSolver
from repro.sat.tseitin import circuit_sat_formula


@dataclass
class WidthEffortPoint:
    """One fault's predicted and actual difficulty."""

    fault: str
    cone_size: int
    cutwidth: int
    nodes: int
    bound: int
    bound_holds: bool


@dataclass
class WidthEffortReport:
    """The correlation study."""

    circuit: str
    points: list[WidthEffortPoint] = field(default_factory=list)

    def spearman(self) -> float:
        """Rank correlation between cut-width and log node count."""
        if len(self.points) < 3:
            return float("nan")
        widths = [p.cutwidth for p in self.points]
        efforts = [np.log1p(p.nodes) for p in self.points]
        rho, _ = scipy_stats.spearmanr(widths, efforts)
        return float(rho)

    @property
    def all_bounds_hold(self) -> bool:
        return all(p.bound_holds for p in self.points)

    def render(self) -> str:
        lines = [
            f"Width vs effort ({self.circuit}): "
            f"{len(self.points)} instances",
            f"  Spearman rank corr. of W vs log(nodes): "
            f"{self.spearman():.2f}",
            f"  Theorem 4.1 bound holds on every instance: "
            f"{self.all_bounds_hold}",
        ]
        worst = sorted(self.points, key=lambda p: -p.nodes)[:3]
        for p in worst:
            lines.append(
                f"  hardest: {p.fault} nodes={p.nodes} W={p.cutwidth} "
                f"bound={p.bound}"
            )
        return "\n".join(lines)


def run_width_vs_effort(
    network: Network,
    *,
    max_faults: int = 40,
    node_budget: int = 200_000,
    seed: int = 0,
) -> WidthEffortReport:
    """Measure predicted vs actual difficulty per fault on one circuit.

    For each sampled fault: build the miter, order its first XOR cone
    with the Lemma 4.2 construction over an MLA base ordering, run the
    caching solver under that very ordering, and record nodes, the cone
    cut-width, and the Theorem 4.1 bound.
    """
    report = WidthEffortReport(circuit=network.name)
    base_graph = circuit_hypergraph(network)
    base_order = min_cut_linear_arrangement(
        base_graph,
        seed=seed,
        candidate_orders=[dfs_cone_ordering(network)],
    ).order

    faults = subsample_faults(collapse_faults(network), max_faults)

    for fault in faults:
        try:
            atpg = build_atpg_circuit(network, fault)
        except UnobservableFault:
            continue
        output = atpg.observing_outputs[0]
        cone = atpg.network.output_cone("xor$" + output)
        order = fault_ordering(atpg, base_order, output)
        graph = circuit_hypergraph(cone)
        width = cut_width_under_order(graph, order)

        formula = circuit_sat_formula(cone)
        solver = CachingBacktrackingSolver(order=order, max_nodes=node_budget)
        result = solver.solve(formula)
        k_fo = max(1, cone.max_fanout())
        bound = theorem_4_1_bound(formula.num_variables(), k_fo, width)
        report.points.append(
            WidthEffortPoint(
                fault=str(fault),
                cone_size=len(cone.nets),
                cutwidth=width,
                nodes=result.stats.nodes,
                bound=bound,
                bound_holds=result.stats.nodes <= bound,
            )
        )
    return report
