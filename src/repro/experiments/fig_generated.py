"""Section 5.2.3: the cut-width study on generated circuits.

The paper repeats the Figure 8 experiment on circ/gen-generated circuits
"parameterized to topologically resemble" the benchmarks, reaching far
larger sizes, and reports the same logarithmic growth.  We sweep our
Hutton-style generator over a geometric size ladder and fit the same
three models.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.fitting import FitResult, all_fits
from repro.core.bounds import fault_width_samples
from repro.gen.random_circuits import benchmark_like_suite


@dataclass
class GeneratedStudyReport:
    """Cut-width growth across generated circuit sizes."""

    sizes: list[int] = field(default_factory=list)
    points: list[tuple[int, int]] = field(default_factory=list)  # (size, W)

    def fits(self) -> dict[str, FitResult]:
        x = [float(s) for s, _ in self.points if s >= 2]
        y = [float(w) for s, w in self.points if s >= 2]
        if len(x) < 4:
            return {}
        return all_fits(x, y)

    def best_model(self) -> str:
        fits = self.fits()
        if not fits:
            return "none"
        return min(fits.values(), key=lambda f: f.sse).model

    def render(self) -> str:
        lines = [
            "Generated-circuit study (Section 5.2.3)",
            f"  circuit sizes: {self.sizes}",
            f"  datapoints: {len(self.points)}",
        ]
        for name, fit in sorted(self.fits().items()):
            lines.append(
                f"  {name:<7} fit: a={fit.a:.3f} b={fit.b:.3f} "
                f"sse={fit.sse:.1f} r2={fit.r_squared:.3f}"
            )
        lines.append(
            f"  best least-squares model: {self.best_model()} (paper: log)"
        )
        return "\n".join(lines)


def run_generated_study(
    sizes: list[int] | None = None,
    *,
    faults_per_circuit: int = 25,
    seed: int = 0,
    num_seeds: int = 3,
) -> GeneratedStudyReport:
    """Sweep generated circuits over a size ladder.

    Args:
        sizes: gate counts; default spans an order of magnitude beyond
            the stand-in benchmark suites.
        faults_per_circuit: fault subsample per circuit.
        seed: base generator + partitioner seed.
        num_seeds: independent circuits per size (averaging generator
            variance — a single sample per size lets one outlier circuit
            dominate the model selection).
    """
    if sizes is None:
        sizes = [60, 120, 250, 500, 1000, 2000]
    report = GeneratedStudyReport(sizes=list(sizes))
    from repro.circuits.decompose import tech_decompose

    for round_index in range(max(1, num_seeds)):
        for network in benchmark_like_suite(sizes, seed=seed + 37 * round_index):
            decomposed = tech_decompose(network)
            samples = fault_width_samples(
                decomposed, seed=seed, max_faults=faults_per_circuit
            )
            for sample in samples:
                report.points.append(
                    (sample.sub_circuit_size, sample.cutwidth)
                )
    return report
