"""Figure 1: SAT solve time versus ATPG-SAT instance size.

The paper ran TEGUS on all faults of the MCNC91 and ISCAS85 suites
(~11,000 SAT instances, some over 15,000 variables) and observed that
over 90% solved in under 10 ms, with the remainder growing roughly
cubically.  This experiment reruns that study with our SAT-based engine
on the stand-in suites and reports the same two headline quantities:

* the fraction of instances solved below a fast threshold, and
* the exponent of a power fit to the upper envelope of the slow tail
  (the paper's "roughly cubic" claim; we use search *decisions* as the
  machine-independent effort measure alongside wall time).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.fitting import FitResult, all_fits
from repro.analysis.stats import fraction_below, summarize
from repro.atpg.engine import AtpgEngine, FaultStatus
from repro.gen.benchmarks import iter_suite


@dataclass
class Fig1Point:
    """One scatter point of Figure 1."""

    circuit: str
    fault: str
    num_variables: int
    solve_time: float
    decisions: int
    status: str


@dataclass
class Fig1Report:
    """Aggregate reproduction of Figure 1."""

    points: list[Fig1Point] = field(default_factory=list)
    fast_threshold: float = 0.01  # seconds, the paper's 1/100th s

    @property
    def fraction_fast(self) -> float:
        """Fraction of instances under the wall-clock fast threshold.

        Machine- and language-dependent (the paper measured 1999 C code);
        prefer :attr:`fraction_easy` for a hardware-independent claim.
        """
        return fraction_below(
            [p.solve_time for p in self.points], self.fast_threshold
        )

    @property
    def fraction_easy(self) -> float:
        """Fraction of instances solved with fewer decisions than
        variables — i.e. essentially by propagation, with no real search.
        This is the machine-independent counterpart of the paper's
        ">90% under 1/100th of a second"."""
        if not self.points:
            return 0.0
        easy = sum(
            1
            for p in self.points
            if p.decisions <= max(1, p.num_variables)
        )
        return easy / len(self.points)

    def tail_fits(self) -> dict[str, FitResult]:
        """Model fits of solve time vs size for the slow tail."""
        slow = [p for p in self.points if p.solve_time >= self.fast_threshold]
        if len(slow) < 8:
            slow = sorted(self.points, key=lambda p: -p.solve_time)[
                : max(8, len(self.points) // 10)
            ]
        x = [p.num_variables for p in slow]
        y = [p.solve_time for p in slow]
        return all_fits(x, y)

    def effort_fits(self) -> dict[str, FitResult]:
        """Model fits of decisions vs size over all instances."""
        x = [p.num_variables for p in self.points if p.decisions > 0]
        y = [p.decisions for p in self.points if p.decisions > 0]
        if len(x) < 4:
            return {}
        return all_fits(x, y)

    def render(self) -> str:
        times = summarize([p.solve_time for p in self.points])
        sizes = summarize([float(p.num_variables) for p in self.points])
        lines = [
            "Figure 1 reproduction: ATPG-SAT instance effort vs size",
            f"  instances: {len(self.points)}",
            f"  instance size (vars): median={sizes.median:.0f} "
            f"max={sizes.maximum:.0f}",
            f"  solve time: median={times.median*1e3:.2f}ms "
            f"p90={times.p90*1e3:.2f}ms max={times.maximum*1e3:.2f}ms",
            f"  fraction under {self.fast_threshold*1e3:.0f}ms wall clock: "
            f"{self.fraction_fast:.1%}",
            f"  fraction solved with < n decisions (no real search): "
            f"{self.fraction_easy:.1%} (paper: >90% near-instant)",
        ]
        fits = self.tail_fits()
        if "power" in fits:
            lines.append(
                f"  slow-tail power fit: time ~ size^{fits['power'].b:.2f} "
                f"(paper: roughly cubic upper envelope)"
            )
        return "\n".join(lines)

    def render_plot(self) -> str:
        """ASCII rendition of the Figure 1 scatter (decisions vs size)."""
        from repro.analysis.ascii_plot import scatter

        usable = [p for p in self.points if p.decisions > 0]
        if len(usable) < 4:
            return "(too few data points to plot)"
        return scatter(
            [float(p.num_variables) for p in usable],
            [float(p.decisions) for p in usable],
            log_x=True,
            x_label="instance size (vars)",
            y_label="decisions",
            title="Figure 1 (reproduced): search effort vs instance size",
        )


def run_fig1(
    suites: tuple[str, ...] = ("mcnc", "iscas"),
    *,
    solver: str = "cdcl",
    max_faults_per_circuit: int | None = None,
    skip_circuits: tuple[str, ...] = (),
) -> Fig1Report:
    """Run the Figure 1 study over the given suites.

    Args:
        suites: suite identifiers (see :mod:`repro.gen.benchmarks`).
        solver: ATPG SAT backend.
        max_faults_per_circuit: optional cap for quick runs.
        skip_circuits: circuit names to exclude (e.g. the largest ones
            for smoke runs).
    """
    report = Fig1Report()
    for suite in suites:
        for name, network in iter_suite(suite):
            if name in skip_circuits:
                continue
            engine = AtpgEngine(network, solver=solver)
            faults = None
            if max_faults_per_circuit is not None:
                from repro.atpg.faults import collapse_faults

                faults = collapse_faults(network)[:max_faults_per_circuit]
            summary = engine.run(faults=faults, fault_dropping=False)
            for record in summary.records:
                if record.status in (
                    FaultStatus.TESTED,
                    FaultStatus.UNTESTABLE,
                    FaultStatus.ABORTED,
                ):
                    report.points.append(
                        Fig1Point(
                            circuit=f"{suite}/{name}",
                            fault=str(record.fault),
                            num_variables=record.num_variables,
                            solve_time=record.solve_time,
                            decisions=record.decisions,
                            status=record.status.value,
                        )
                    )
    return report
