"""Figures 8(a)/8(b): cut-width versus fault sub-circuit size.

For every potential fault ψ of every suite circuit, estimate the
cut-width of C_ψ^sub (via the recursive-bisection MLA) against the
sub-circuit's size, then fit linear / logarithmic / power curves and
report which wins the least-squares comparison.  The paper finds the log
curve best for both suites, supporting the log-bounded-width conjecture.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

from repro.analysis.fitting import FitResult, all_fits
from repro.core.width_pipeline import WidthAnalysisPipeline
from repro.gen.benchmarks import iter_suite


@dataclass
class Fig8Point:
    """One scatter point: a fault's sub-circuit size and cut-width.

    ``theorem_bound`` carries the point's Theorem 4.1 node-visit bound
    ``n · 2^(2·k_fo·W)`` when the study was run with ``bounds=True``.
    """

    circuit: str
    fault: str
    size: int
    cutwidth: int
    theorem_bound: int | None = None


@dataclass
class Fig8Report:
    """Aggregate reproduction of one Figure 8 panel.

    ``faults_per_circuit`` records exactly which (subsampled) faults each
    circuit contributed, so a run is auditable and reproducible.
    """

    suite: str
    points: list[Fig8Point] = field(default_factory=list)
    faults_per_circuit: dict[str, list[str]] = field(default_factory=dict)
    #: True when a run-level ``deadline`` stopped the study early: some
    #: circuits were skipped entirely or swept partially, so the scatter
    #: (and any fits over it) is incomplete.
    deadline_hit: bool = False

    @property
    def n_usable(self) -> int:
        """Points with ``size >= 2`` — the fit's minimum admission."""
        return sum(1 for p in self.points if p.size >= 2)

    def fits(self) -> dict[str, FitResult]:
        """Linear/log/power fits over the scatter.

        Returns ``{}`` when fewer than 4 usable points exist (check
        :attr:`n_usable`; the CLI warns explicitly in that case).
        """
        usable = [p for p in self.points if p.size >= 2]
        x = [float(p.size) for p in usable]
        y = [float(p.cutwidth) for p in usable]
        if len(x) < 4:
            return {}
        return all_fits(x, y)

    def best_model(self) -> str:
        """The winning model name ('log' reproduces the paper)."""
        fits = self.fits()
        if not fits:
            return "none"
        return min(fits.values(), key=lambda f: f.sse).model

    def max_log_ratio(self) -> float:
        """max W / log2(size) — the Definition 5.1 diagnostic."""
        ratios = [
            p.cutwidth / max(1.0, math.log2(p.size))
            for p in self.points
            if p.size >= 2
        ]
        return max(ratios, default=0.0)

    def render(self) -> str:
        fits = self.fits()
        lines = [
            f"Figure 8 ({self.suite}) reproduction: cut-width vs |C_psi^sub|",
            f"  datapoints: {len(self.points)} ({self.n_usable} usable)",
        ]
        if not fits:
            lines.append(
                f"  warning: only {self.n_usable} usable points "
                "(need >= 4); no curve fits computed"
            )
        for name in ("linear", "log", "power"):
            if name in fits:
                fit = fits[name]
                lines.append(
                    f"  {name:<7} fit: a={fit.a:.3f} b={fit.b:.3f} "
                    f"sse={fit.sse:.1f} r2={fit.r_squared:.3f}"
                )
        lines.append(
            f"  best least-squares model: {self.best_model()} (paper: log)"
        )
        lines.append(
            f"  max W/log2(size) ratio: {self.max_log_ratio():.2f}"
        )
        if self.deadline_hit:
            lines.append(
                "  warning: deadline exceeded — study incomplete "
                "(circuits skipped or partially swept)"
            )
        return "\n".join(lines)

    def render_plot(self) -> str:
        """ASCII rendition of the Figure 8 scatter with the log fit."""
        from repro.analysis.ascii_plot import scatter

        usable = [p for p in self.points if p.size >= 2]
        if len(usable) < 4:
            return "(too few data points to plot)"
        fits = self.fits()
        overlay = fits["log"].predict if "log" in fits else None
        return scatter(
            [float(p.size) for p in usable],
            [float(p.cutwidth) for p in usable],
            log_x=True,
            overlay=overlay,
            x_label="|C_psi^sub|",
            y_label="cut-width",
            title=f"Figure 8 ({self.suite}, reproduced): "
            "cut-width vs sub-circuit size",
        )


#: Default exclusions, mirroring the paper's omission of C3540 and C6288
#: ("due to limitations in our min-cut linear arrangement procedure"):
#: array multipliers genuinely have Θ(√size) cut-width, so they fall
#: outside the log-bounded-width story in both the paper and here.
DEFAULT_SKIPS: dict[str, tuple[str, ...]] = {
    "mcnc": ("mult4",),
    "iscas": ("mult6", "mult8"),
}


def run_fig8(
    suite: str,
    *,
    max_faults_per_circuit: int | None = 60,
    skip_circuits: tuple[str, ...] | None = None,
    seed: int = 0,
    workers: int = 1,
    mode: str = "cold",
    bounds: bool = False,
    deadline: float | None = None,
) -> Fig8Report:
    """Run the cut-width study over one suite.

    Args:
        suite: ``"mcnc"`` (Figure 8a) or ``"iscas"`` (Figure 8b).
        max_faults_per_circuit: subsample cap (the MLA estimate is the
            expensive step; the paper's figures plot every fault, which
            remains available with ``None`` — practical now that the
            width pipeline dedups shared sub-circuits and fans out).
        skip_circuits: circuits to exclude; defaults to the suite's
            multipliers, analogous to the paper's exclusion of
            C3540/C6288.  Pass ``()`` to include everything.
        seed: RNG seed for the partitioner.
        workers: worker processes per circuit sweep (1 = in-process).
        mode: width pipeline mode (``"cold"`` parity / ``"warm"``).
        bounds: attach each point's Theorem 4.1 bound.
        deadline: run-level wall-clock budget in seconds.  The remaining
            budget is threaded into each circuit's width pipeline, and
            circuits the budget never reaches are skipped; either way
            the report comes back with ``deadline_hit=True``.
    """
    if skip_circuits is None:
        skip_circuits = DEFAULT_SKIPS.get(suite, ())
    deadline_at = None if deadline is None else time.monotonic() + deadline
    report = Fig8Report(suite=suite)
    for name, network in iter_suite(suite):
        if name in skip_circuits:
            continue
        remaining = None
        if deadline_at is not None:
            remaining = deadline_at - time.monotonic()
            if remaining <= 0:
                report.deadline_hit = True
                break
        pipeline = WidthAnalysisPipeline(
            network,
            seed=seed,
            workers=workers,
            mode=mode,
            bounds=bounds,
            deadline=remaining,
        )
        study = pipeline.run(max_faults=max_faults_per_circuit)
        if study.stats.health.deadline_hit:
            report.deadline_hit = True
        report.faults_per_circuit[name] = [str(f) for f in study.faults]
        for sample in study.samples:
            report.points.append(
                Fig8Point(
                    circuit=name,
                    fault=str(sample.fault),
                    size=sample.sub_circuit_size,
                    cutwidth=sample.cutwidth,
                    theorem_bound=sample.theorem_bound,
                )
            )
    return report
