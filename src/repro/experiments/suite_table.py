"""Per-circuit suite summary — the "Table 1" every ATPG paper carries.

For each benchmark circuit: size, fault statistics, ATPG outcome
(coverage, redundancies, effort), the measured cut-width W(C, H), and
the SCOAP-hardest fault — tying the experimental sections together in
one table.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.stats import format_table
from repro.atpg.engine import AtpgEngine, FaultStatus
from repro.atpg.faults import collapse_faults
from repro.atpg.scoap import hardest_faults
from repro.core.cutwidth import multi_output_cutwidth
from repro.gen.benchmarks import iter_suite


@dataclass
class SuiteRow:
    """One circuit's summary line."""

    circuit: str
    gates: int
    inputs: int
    outputs: int
    faults: int
    tested: int
    dropped: int
    redundant: int
    aborted: int
    coverage: float
    cutwidth: int
    total_time: float
    hardest_fault: str


@dataclass
class SuiteTableReport:
    """The full per-suite table."""

    suite: str
    rows: list[SuiteRow] = field(default_factory=list)

    def render(self) -> str:
        headers = [
            "circuit",
            "gates",
            "PI/PO",
            "faults",
            "det",
            "drop",
            "red",
            "abort",
            "cov%",
            "W(C,H)",
            "time(s)",
            "hardest (SCOAP)",
        ]
        table_rows = [
            [
                row.circuit,
                row.gates,
                f"{row.inputs}/{row.outputs}",
                row.faults,
                row.tested,
                row.dropped,
                row.redundant,
                row.aborted,
                f"{row.coverage*100:.1f}",
                row.cutwidth,
                f"{row.total_time:.2f}",
                row.hardest_fault,
            ]
            for row in self.rows
        ]
        title = f"Suite summary ({self.suite})"
        return title + "\n" + format_table(headers, table_rows)


def run_suite_table(
    suite: str,
    *,
    solver: str = "cdcl",
    max_faults_per_circuit: int | None = None,
    skip_circuits: tuple[str, ...] = (),
    seed: int = 0,
) -> SuiteTableReport:
    """Build the summary table for one suite."""
    report = SuiteTableReport(suite=suite)
    for name, network in iter_suite(suite):
        if name in skip_circuits:
            continue
        faults = collapse_faults(network)
        if max_faults_per_circuit is not None:
            faults = faults[:max_faults_per_circuit]
        engine = AtpgEngine(network, solver=solver)
        summary = engine.run(faults=faults, fault_dropping=True)
        cutwidth = multi_output_cutwidth(network, seed=seed).cutwidth
        hardest = hardest_faults(network, top=1)
        hardest_label = (
            f"{hardest[0][0]}/sa{hardest[0][1]}" if hardest else "-"
        )
        report.rows.append(
            SuiteRow(
                circuit=name,
                gates=network.num_gates(),
                inputs=len(network.inputs),
                outputs=len(network.outputs),
                faults=len(faults),
                tested=len(summary.by_status(FaultStatus.TESTED)),
                dropped=len(summary.by_status(FaultStatus.DROPPED)),
                redundant=len(summary.by_status(FaultStatus.UNTESTABLE)),
                aborted=len(summary.by_status(FaultStatus.ABORTED)),
                coverage=summary.fault_coverage,
                cutwidth=cutwidth,
                total_time=sum(r.solve_time for r in summary.records),
                hardest_fault=hardest_label,
            )
        )
    return report
