"""Static global implications (the TEGUS preprocessing step).

TEGUS [24] precomputes a set of *global implications* before search to
cut down conflicts — the concrete mechanism the paper abstracts as the
sub-formula cache of Algorithm 1.  This module reproduces the technique:

* :func:`binary_implication_closure` — take the formula's binary clauses
  as an implication graph and close it transitively; every derived
  implication becomes a new binary clause.
* :func:`static_learning` — circuit-level indirect implications: for
  each net and value, assign it, run three-valued constant propagation
  through the netlist, and record every forced net value; non-trivial
  contrapositives (indirect implications à la SOCRATES) are emitted as
  learned binary clauses.

Both return clause sets that are logically implied by the input, so
adding them preserves satisfiability while strengthening propagation.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.circuits.gates import GateType
from repro.circuits.network import Network
from repro.sat.cnf import Clause, CnfFormula, Literal


def binary_implication_closure(
    formula: CnfFormula, max_new: int = 10_000
) -> list[Clause]:
    """Transitive closure of the binary-clause implication graph.

    A clause (a ∨ b) encodes ¬a→b and ¬b→a.  BFS from every literal
    yields all implied literals; each non-adjacent pair produces a new
    binary clause.  ``max_new`` caps the output (closures can be
    quadratic).
    """
    # Literal = (variable, polarity); successors via binary clauses.
    successors: dict[Literal, set[Literal]] = {}
    binary_pairs: set[frozenset[Literal]] = set()
    for clause in formula.clauses:
        if len(clause) != 2:
            continue
        a, b = tuple(clause)
        binary_pairs.add(frozenset((a, b)))
        successors.setdefault(~a, set()).add(b)
        successors.setdefault(~b, set()).add(a)

    new_clauses: list[Clause] = []
    for start in list(successors):
        # BFS: everything implied by `start`.
        reached: set[Literal] = set()
        queue = deque(successors.get(start, ()))
        while queue:
            literal = queue.popleft()
            if literal in reached or literal == start:
                continue
            reached.add(literal)
            queue.extend(successors.get(literal, ()))
        for literal in reached:
            if literal == ~start:
                continue  # start is forced false; unit handled by solver
            pair = frozenset((~start, literal))
            if len(pair) == 2 and pair not in binary_pairs:
                binary_pairs.add(pair)
                new_clauses.append(pair)
                if len(new_clauses) >= max_new:
                    return new_clauses
    return new_clauses


def _propagate_constant(
    network: Network, net: str, value: int
) -> dict[str, int]:
    """Three-valued forward constant propagation from one assignment."""
    from repro.atpg.podem import _eval3  # shared 3-valued evaluator

    forced: dict[str, Optional[int]] = {}
    order = network.topological_order()
    forced[net] = value
    for current in order:
        if current in forced and current != net:
            continue
        gate = network.gate(current)
        if current == net:
            continue
        if gate.gate_type is GateType.INPUT:
            forced[current] = None
            continue
        values = [forced.get(src) for src in gate.inputs]
        forced[current] = _eval3(gate.gate_type, values)
    return {
        name: bit for name, bit in forced.items() if bit is not None
    }


def static_learning(
    network: Network, max_clauses: int = 5_000
) -> list[Clause]:
    """Indirect implications learned by constant propagation.

    For every net x and value v, propagate x=v forward; each forced
    consequence y=w yields the implication (x=v → y=w), i.e. the binary
    clause (¬[x=v] ∨ [y=w]).  Direct gate-local consequences are already
    present in the Figure-2 clauses, so only implications spanning more
    than one level are emitted.
    """
    levels = network.levels()
    learned: list[Clause] = []
    for net in network.nets:
        if network.gate(net).gate_type.is_source:
            base_level = 0
        else:
            base_level = levels[net]
        for value in (0, 1):
            consequences = _propagate_constant(network, net, value)
            for other, forced_value in consequences.items():
                if other == net:
                    continue
                if levels[other] - base_level <= 1:
                    continue  # gate-local: Tseitin clauses already say it
                antecedent = Literal(net, positive=(value == 0))
                consequent = Literal(other, positive=(forced_value == 1))
                learned.append(frozenset((antecedent, consequent)))
                if len(learned) >= max_clauses:
                    return learned
    return learned


def with_static_implications(
    network: Network, formula: CnfFormula, max_clauses: int = 5_000
) -> CnfFormula:
    """``formula`` strengthened with circuit-derived implications."""
    return formula.with_clauses(static_learning(network, max_clauses))
