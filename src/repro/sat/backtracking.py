"""Simple backtracking SAT (the baseline Algorithm 1 is compared against).

"Simple backtracking" in the paper's sense (after Purdom & Brown): fix a
static variable order, assign variables one at a time, and backtrack as
soon as the partial assignment falsifies a clause.  No caching, no unit
propagation — this is the pure search skeleton, so that the effect of the
sub-formula cache in :mod:`repro.sat.caching` can be isolated.
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from typing import Optional

from repro.sat.cnf import CnfFormula, has_null_clause, reduce_clauses
from repro.sat.result import (
    ResourceLimitExceeded,
    SatResult,
    SatStatus,
    SolverStats,
)


def default_order(formula: CnfFormula) -> list[str]:
    """The fallback static order: sorted variable names."""
    return list(formula.variables)


class SimpleBacktrackingSolver:
    """Chronological backtracking over a static variable order.

    Args:
        order: static variable order ``h``; defaults to sorted names.
            Variables of the formula missing from ``order`` are appended
            (sorted) so the search is always complete.
        max_nodes: optional budget on visited tree nodes; exceeded search
            returns ``UNKNOWN``.
    """

    def __init__(
        self,
        order: Optional[Sequence[str]] = None,
        max_nodes: Optional[int] = None,
    ) -> None:
        self._order = list(order) if order is not None else None
        self.max_nodes = max_nodes

    def _full_order(self, formula: CnfFormula) -> list[str]:
        if self._order is None:
            return default_order(formula)
        order = [v for v in self._order if v in set(formula.variables)]
        missing = sorted(set(formula.variables) - set(order))
        return order + missing

    def solve(self, formula: CnfFormula) -> SatResult:
        """Decide satisfiability of ``formula``."""
        start = time.perf_counter()
        stats = SolverStats()
        order = self._full_order(formula)
        assignment: dict[str, int] = {}

        initial = reduce_clauses(formula.clauses, {})
        if has_null_clause(initial):
            stats.time_seconds = time.perf_counter() - start
            return SatResult(SatStatus.UNSAT, stats=stats)

        try:
            found = self._search(initial, order, 0, assignment, stats)
        except ResourceLimitExceeded:
            stats.time_seconds = time.perf_counter() - start
            return SatResult(SatStatus.UNKNOWN, stats=stats)

        stats.time_seconds = time.perf_counter() - start
        if found:
            model = dict(assignment)
            for variable in order:
                model.setdefault(variable, 0)
            return SatResult(SatStatus.SAT, assignment=model, stats=stats)
        return SatResult(SatStatus.UNSAT, stats=stats)

    def _search(self, sub, order, depth, assignment, stats) -> bool:
        if not sub:
            return True  # every clause satisfied
        if depth >= len(order):
            # No variables left but clauses remain: only possible if a
            # clause mentions a variable outside the order — cannot happen
            # with _full_order, so remaining clauses are all empty.
            return not has_null_clause(sub)
        variable = order[depth]
        for value in (0, 1):
            stats.nodes += 1
            stats.decisions += 1
            if self.max_nodes is not None and stats.nodes > self.max_nodes:
                raise ResourceLimitExceeded
            reduced = reduce_clauses(sub, {variable: value})
            if has_null_clause(reduced):
                stats.conflicts += 1
                continue
            assignment[variable] = value
            if self._search(reduced, order, depth + 1, assignment, stats):
                return True
            del assignment[variable]
        return False


def solve_simple(
    formula: CnfFormula,
    order: Optional[Sequence[str]] = None,
    max_nodes: Optional[int] = None,
) -> SatResult:
    """Convenience wrapper around :class:`SimpleBacktrackingSolver`."""
    return SimpleBacktrackingSolver(order=order, max_nodes=max_nodes).solve(formula)
