"""Circuit → CNF encoding (the paper's Figure 2 gate formulas).

The CIRCUIT-SAT formula ``f(C)`` has one variable per signal net and a set
of clauses per gate characterising the gate's consistency function, plus a
clause asserting that at least one primary output is 1 (Section 2).

For an AND gate ``z = AND(a, b)`` the clauses are::

    (a + ~z) (b + ~z) (~a + ~b + z)

and dually for OR.  NAND/NOR/XOR/XNOR are also encoded directly (useful
for tests), although the paper's flow decomposes to AND/OR/NOT first.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.circuits.gates import GateType
from repro.circuits.network import Gate, Network
from repro.sat.cnf import Clause, CnfFormula, Literal, neg, pos


def gate_clauses(gate: Gate) -> list[Clause]:
    """Consistency clauses for a single gate (Figure 2 of the paper).

    Raises:
        ValueError: for INPUT pseudo-gates (they contribute no clauses) is
            not an error — returns [].  Unknown types raise.
    """
    out = gate.output
    gtype = gate.gate_type
    ins = gate.inputs

    if gtype is GateType.INPUT:
        return []
    if gtype is GateType.CONST0:
        return [frozenset({neg(out)})]
    if gtype is GateType.CONST1:
        return [frozenset({pos(out)})]
    if gtype is GateType.BUF:
        (a,) = ins
        return [frozenset({neg(a), pos(out)}), frozenset({pos(a), neg(out)})]
    if gtype is GateType.NOT:
        (a,) = ins
        return [frozenset({pos(a), pos(out)}), frozenset({neg(a), neg(out)})]
    if gtype in (GateType.AND, GateType.NAND):
        out_lit = pos(out) if gtype is GateType.AND else neg(out)
        clauses = [frozenset({pos(a), ~out_lit}) for a in ins]
        clauses.append(frozenset({neg(a) for a in ins} | {out_lit}))
        return clauses
    if gtype in (GateType.OR, GateType.NOR):
        out_lit = pos(out) if gtype is GateType.OR else neg(out)
        clauses = [frozenset({neg(a), out_lit}) for a in ins]
        clauses.append(frozenset({pos(a) for a in ins} | {~out_lit}))
        return clauses
    if gtype in (GateType.XOR, GateType.XNOR):
        return _xor_clauses(out, ins, invert=(gtype is GateType.XNOR))
    raise ValueError(f"cannot encode gate type {gtype!r}")


def _xor_clauses(out: str, ins: Sequence[str], invert: bool) -> list[Clause]:
    """Direct CNF for XOR/XNOR by enumerating input polarity combinations.

    Exponential in fanin — acceptable because XOR gates in our circuits
    are 2-input (wider ones are decomposed first).
    """
    if len(ins) > 4:
        raise ValueError("direct XOR encoding limited to fanin 4; decompose first")
    clauses: list[Clause] = []
    n = len(ins)
    for combo in range(1 << n):
        parity = bin(combo).count("1") & 1
        out_value = parity ^ (1 if invert else 0)
        # Clause: if inputs match combo then out == out_value, written as
        # (mismatch-literals OR out-literal).
        lits = set()
        for index, net in enumerate(ins):
            bit = (combo >> index) & 1
            lits.add(Literal(net, positive=(bit == 0)))
        lits.add(Literal(out, positive=(out_value == 1)))
        clauses.append(frozenset(lits))
    return clauses


class CnfEncodingCache:
    """Memoises per-gate CNF clause blocks across circuit encodings.

    ATPG encodes one miter per fault, and miters of faults with
    overlapping fanin cones contain many *structurally identical* gates:
    the good side of every ``C_ψ^sub`` copies the original circuit's
    gates verbatim (same output net, same type, same input nets), and
    faulty cones of same-site faults duplicate each other.  Keying the
    clause block on the immutable :class:`Gate` therefore lets each gate
    of the circuit be Tseitin-encoded once per engine run instead of
    once per fault.

    Clause blocks are returned as tuples of the exact ``frozenset``
    objects produced by :func:`gate_clauses`, so cached and uncached
    encodings build equal formulas (clauses are interned, never mutated).
    """

    def __init__(self) -> None:
        self._blocks: dict[Gate, tuple[Clause, ...]] = {}
        self.hits = 0
        self.misses = 0

    def gate_clauses(self, gate: Gate) -> tuple[Clause, ...]:
        """Cached consistency clauses for ``gate``."""
        block = self._blocks.get(gate)
        if block is None:
            self.misses += 1
            block = tuple(gate_clauses(gate))
            self._blocks[gate] = block
        else:
            self.hits += 1
        return block

    @property
    def hit_rate(self) -> float:
        """Fraction of gate encodings served from cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __len__(self) -> int:
        return len(self._blocks)

    def counters(self) -> dict[str, int]:
        """Hit/miss counters (for observability plumbing)."""
        return {"hits": self.hits, "misses": self.misses, "size": len(self)}


def circuit_clauses(
    network: Network, cache: CnfEncodingCache | None = None
) -> list[Clause]:
    """Gate-consistency clauses for the whole network (no output assertion).

    Args:
        network: circuit to encode.
        cache: optional :class:`CnfEncodingCache`; when given, per-gate
            clause blocks are memoised across calls.
    """
    clauses: list[Clause] = []
    if cache is None:
        for gate in network.gates():
            clauses.extend(gate_clauses(gate))
    else:
        for gate in network.gates():
            clauses.extend(cache.gate_clauses(gate))
    return clauses


def output_assertion_clause(network: Network) -> Clause:
    """The clause asserting at least one primary output is 1."""
    if not network.outputs:
        raise ValueError("network has no outputs to assert")
    return frozenset({pos(out) for out in network.outputs})


def circuit_sat_formula(
    network: Network,
    name: str | None = None,
    cache: CnfEncodingCache | None = None,
) -> CnfFormula:
    """The CIRCUIT-SAT formula ``f(C)`` of Section 2.

    Gate consistency clauses plus the assertion that at least one primary
    output is 1.  Satisfying assignments restricted to the primary inputs
    are exactly the satisfying input vectors of the circuit.  With a
    ``cache``, per-gate clause blocks are reused across calls — the
    resulting formula is identical to the uncached encoding.
    """
    clauses = circuit_clauses(network, cache=cache)
    clauses.append(output_assertion_clause(network))
    return CnfFormula(clauses, name=name or f"f({network.name})")


def justification_formula(
    network: Network, objectives: dict[str, int], name: str | None = None
) -> CnfFormula:
    """Gate clauses plus unit clauses pinning ``objectives`` nets to values.

    Used for line-justification queries and by tests.
    """
    clauses = circuit_clauses(network)
    for net, value in objectives.items():
        if not network.has_net(net):
            raise ValueError(f"objective on unknown net {net!r}")
        clauses.append(frozenset({Literal(net, positive=bool(value))}))
    return CnfFormula(clauses, name=name or f"just({network.name})")
