"""Common result and statistics types shared by all SAT solvers."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional


class SatStatus(enum.Enum):
    """Outcome of a satisfiability check."""

    SAT = "SAT"
    UNSAT = "UNSAT"
    UNKNOWN = "UNKNOWN"  # resource limit reached

    def __bool__(self) -> bool:
        return self is SatStatus.SAT


@dataclass
class SolverStats:
    """Search-effort counters, comparable across solver variants."""

    decisions: int = 0
    nodes: int = 0  # backtracking tree nodes visited
    propagations: int = 0
    conflicts: int = 0
    cache_hits: int = 0
    cache_insertions: int = 0
    learned_clauses: int = 0
    restarts: int = 0
    time_seconds: float = 0.0

    def as_dict(self) -> dict[str, float]:
        """Plain-dict view for reports."""
        return {
            "decisions": self.decisions,
            "nodes": self.nodes,
            "propagations": self.propagations,
            "conflicts": self.conflicts,
            "cache_hits": self.cache_hits,
            "cache_insertions": self.cache_insertions,
            "learned_clauses": self.learned_clauses,
            "restarts": self.restarts,
            "time_seconds": self.time_seconds,
        }


@dataclass
class SatResult:
    """Status plus (for SAT) a witness assignment and effort statistics."""

    status: SatStatus
    assignment: Optional[dict[str, int]] = None
    stats: SolverStats = field(default_factory=SolverStats)

    @property
    def is_sat(self) -> bool:
        return self.status is SatStatus.SAT

    @property
    def is_unsat(self) -> bool:
        return self.status is SatStatus.UNSAT


class ResourceLimitExceeded(RuntimeError):
    """Raised internally when a node/conflict budget is exhausted."""
