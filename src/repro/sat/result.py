"""Common result and statistics types shared by all SAT solvers."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional


class SatStatus(enum.Enum):
    """Outcome of a satisfiability check."""

    SAT = "SAT"
    UNSAT = "UNSAT"
    UNKNOWN = "UNKNOWN"  # resource limit reached

    def __bool__(self) -> bool:
        return self is SatStatus.SAT


@dataclass
class SolverStats:
    """Search-effort counters, comparable across solver variants."""

    decisions: int = 0
    nodes: int = 0  # backtracking tree nodes visited
    propagations: int = 0
    conflicts: int = 0
    cache_hits: int = 0
    cache_insertions: int = 0
    learned_clauses: int = 0
    restarts: int = 0
    time_seconds: float = 0.0
    #: True when an UNKNOWN answer was caused by the clause-database
    #: memory budget (vs. a conflict budget or deadline).
    mem_limit_hit: bool = False

    @property
    def propagations_per_sec(self) -> float:
        """Unit propagations per second of search."""
        return self.propagations / self.time_seconds if self.time_seconds else 0.0

    @property
    def decisions_per_sec(self) -> float:
        """Branching decisions per second of search."""
        return self.decisions / self.time_seconds if self.time_seconds else 0.0

    @property
    def conflicts_per_sec(self) -> float:
        """Conflicts per second of search."""
        return self.conflicts / self.time_seconds if self.time_seconds else 0.0

    def rates(self) -> dict[str, float]:
        """Throughput rates (baseline currency for solver perf work)."""
        return {
            "propagations_per_sec": self.propagations_per_sec,
            "decisions_per_sec": self.decisions_per_sec,
            "conflicts_per_sec": self.conflicts_per_sec,
        }

    def as_dict(self) -> dict[str, float]:
        """Plain-dict view for reports."""
        return {
            "decisions": self.decisions,
            "nodes": self.nodes,
            "propagations": self.propagations,
            "conflicts": self.conflicts,
            "cache_hits": self.cache_hits,
            "cache_insertions": self.cache_insertions,
            "learned_clauses": self.learned_clauses,
            "restarts": self.restarts,
            "time_seconds": self.time_seconds,
            **self.rates(),
        }


@dataclass
class SatResult:
    """Status plus (for SAT) a witness assignment and effort statistics."""

    status: SatStatus
    assignment: Optional[dict[str, int]] = None
    stats: SolverStats = field(default_factory=SolverStats)

    @property
    def is_sat(self) -> bool:
        return self.status is SatStatus.SAT

    @property
    def is_unsat(self) -> bool:
        return self.status is SatStatus.UNSAT


class ResourceLimitExceeded(RuntimeError):
    """Raised internally when a node/conflict budget is exhausted."""
