"""Algorithm 1 of the paper: caching-based backtracking for SAT.

Simple backtracking with a fixed variable order, except that whenever the
search backtracks from an unsatisfiable sub-formula, that sub-formula is
stored in a hash table; before any sub-formula is explored it is looked up
in the table and, on a hit, refuted immediately.  Two sub-formulas are
identical iff they have the same set of clauses (the paper's footnote 2 —
no semantic equivalence detection).

The running time of this algorithm is bounded by the number of *distinct
consistent sub-formulas* (DCSFs) reachable under the ordering, which is
what ties the solver to the circuit's cut-width (Lemma 4.1/Theorem 4.1).
The solver therefore exposes per-depth DCSF accounting so the theory can
be validated empirically.
"""

from __future__ import annotations

import sys
import time
from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import Optional

from repro.sat.cnf import (
    CnfFormula,
    SubFormula,
    has_null_clause,
    reduce_clauses,
)
from repro.sat.result import (
    ResourceLimitExceeded,
    SatResult,
    SatStatus,
    SolverStats,
)


@dataclass
class CachingSearchTrace:
    """Optional instrumentation collected during the search.

    Attributes:
        sub_formulas_per_depth: the set of distinct consistent sub-formulas
            encountered after assigning the first ``d+1`` order variables
            (index ``d``).  The total across depths bounds the tree size.
    """

    sub_formulas_per_depth: list[set[SubFormula]] = field(default_factory=list)

    def dcsf_counts(self) -> list[int]:
        """Number of DCSFs per depth."""
        return [len(s) for s in self.sub_formulas_per_depth]

    def total_dcsf(self) -> int:
        """Total distinct consistent sub-formulas over all depths."""
        return sum(len(s) for s in self.sub_formulas_per_depth)


class CachingBacktrackingSolver:
    """The paper's Algorithm 1.

    Args:
        order: static variable order ``h``.  Defaults to sorted names.
        max_nodes: node budget; exceeding it yields ``UNKNOWN``.
        collect_trace: when True, record the DCSFs seen at each depth
            (used by the Lemma 4.1 / Theorem 4.1 validation experiments).
    """

    def __init__(
        self,
        order: Optional[Sequence[str]] = None,
        max_nodes: Optional[int] = None,
        collect_trace: bool = False,
    ) -> None:
        self._order = list(order) if order is not None else None
        self.max_nodes = max_nodes
        self.collect_trace = collect_trace
        self.trace: Optional[CachingSearchTrace] = None

    def _full_order(self, formula: CnfFormula) -> list[str]:
        if self._order is None:
            return list(formula.variables)
        present = set(formula.variables)
        order = [v for v in self._order if v in present]
        order.extend(sorted(present - set(order)))
        return order

    def solve(self, formula: CnfFormula) -> SatResult:
        """Decide satisfiability; a SAT result carries a witness model."""
        start = time.perf_counter()
        stats = SolverStats()
        order = self._full_order(formula)
        if self.collect_trace:
            self.trace = CachingSearchTrace(
                sub_formulas_per_depth=[set() for _ in order]
            )
        else:
            self.trace = None

        cache: set[SubFormula] = set()
        assignment: dict[str, int] = {}

        initial = reduce_clauses(formula.clauses, {})
        if has_null_clause(initial):
            stats.time_seconds = time.perf_counter() - start
            return SatResult(SatStatus.UNSAT, stats=stats)
        if not order or not initial:
            stats.time_seconds = time.perf_counter() - start
            return SatResult(SatStatus.SAT, assignment={}, stats=stats)

        depth_budget = len(order) + 64
        old_limit = sys.getrecursionlimit()
        if old_limit < depth_budget + 512:
            sys.setrecursionlimit(depth_budget + 512)
        try:
            found = (
                self._cache_sat(initial, order, 0, 0, assignment, cache, stats)
                or self._cache_sat(initial, order, 0, 1, assignment, cache, stats)
            )
        except ResourceLimitExceeded:
            stats.time_seconds = time.perf_counter() - start
            return SatResult(SatStatus.UNKNOWN, stats=stats)
        finally:
            sys.setrecursionlimit(old_limit)

        stats.time_seconds = time.perf_counter() - start
        if found:
            model = dict(assignment)
            for variable in order:
                model.setdefault(variable, 0)
            return SatResult(SatStatus.SAT, assignment=model, stats=stats)
        return SatResult(SatStatus.UNSAT, stats=stats)

    def _cache_sat(
        self,
        parent_sub: SubFormula,
        order: list[str],
        depth: int,
        value: int,
        assignment: dict[str, int],
        cache: set[SubFormula],
        stats: SolverStats,
    ) -> bool:
        """The paper's ``Cache_Sat(v_current, B, f_sub)``.

        ``order[depth]`` plays the role of v_current; ``value`` is B.
        Returns True for SAT (with ``assignment`` extended to a witness).
        """
        stats.nodes += 1
        stats.decisions += 1
        if self.max_nodes is not None and stats.nodes > self.max_nodes:
            raise ResourceLimitExceeded

        variable = order[depth]
        sub = reduce_clauses(parent_sub, {variable: value})
        if has_null_clause(sub):
            stats.conflicts += 1
            return False
        if self.trace is not None:
            self.trace.sub_formulas_per_depth[depth].add(sub)
        if sub in cache:
            stats.cache_hits += 1
            return False

        assignment[variable] = value
        if not sub or depth + 1 >= len(order):
            # All clauses satisfied (or no variables left without a null
            # clause, which with a complete order means no clauses remain).
            if not sub:
                return True
            del assignment[variable]
            return False

        if self._cache_sat(sub, order, depth + 1, 0, assignment, cache, stats):
            return True
        if self._cache_sat(sub, order, depth + 1, 1, assignment, cache, stats):
            return True

        # Both subtrees UNSAT: remember this sub-formula.
        cache.add(sub)
        stats.cache_insertions += 1
        del assignment[variable]
        return False


def solve_caching(
    formula: CnfFormula,
    order: Optional[Sequence[str]] = None,
    max_nodes: Optional[int] = None,
) -> SatResult:
    """Convenience wrapper around :class:`CachingBacktrackingSolver`."""
    return CachingBacktrackingSolver(order=order, max_nodes=max_nodes).solve(formula)
