"""SAT substrate: CNF formulas, circuit encodings, and solvers."""

from repro.sat.backtracking import SimpleBacktrackingSolver, solve_simple
from repro.sat.caching import (
    CachingBacktrackingSolver,
    CachingSearchTrace,
    solve_caching,
)
from repro.sat.cdcl import CdclSolver, solve_cdcl
from repro.sat.cnf import (
    Clause,
    CnfFormula,
    Literal,
    SubFormula,
    clause,
    formula_from_ints,
    has_null_clause,
    neg,
    pos,
    reduce_clauses,
    sub_formula_variables,
)
from repro.sat.dpll import DpllSolver, solve_dpll
from repro.sat.horn import classify, is_2sat, is_hidden_horn, is_horn, is_q_horn
from repro.sat.implications import (
    binary_implication_closure,
    static_learning,
    with_static_implications,
)
from repro.sat.result import SatResult, SatStatus, SolverStats
from repro.sat.tseitin import (
    circuit_clauses,
    circuit_sat_formula,
    gate_clauses,
    justification_formula,
    output_assertion_clause,
)

__all__ = [
    "CachingBacktrackingSolver",
    "CachingSearchTrace",
    "CdclSolver",
    "Clause",
    "CnfFormula",
    "DpllSolver",
    "Literal",
    "SatResult",
    "SatStatus",
    "SimpleBacktrackingSolver",
    "SolverStats",
    "SubFormula",
    "binary_implication_closure",
    "circuit_clauses",
    "circuit_sat_formula",
    "classify",
    "clause",
    "formula_from_ints",
    "gate_clauses",
    "has_null_clause",
    "is_2sat",
    "is_hidden_horn",
    "is_horn",
    "is_q_horn",
    "justification_formula",
    "neg",
    "output_assertion_clause",
    "pos",
    "reduce_clauses",
    "solve_caching",
    "solve_cdcl",
    "solve_dpll",
    "solve_simple",
    "static_learning",
    "sub_formula_variables",
    "with_static_implications",
]
