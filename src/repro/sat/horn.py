"""Recognition of polynomial-time SAT classes (paper Section 3.1).

The paper argues that ATPG-SAT instances generally do *not* fall into the
known easy classes — Horn, hidden (renamable) Horn, 2-SAT, or the more
general q-Horn class of Boros, Crama & Hammer.  This module implements
recognition procedures for each class so that claim can be checked
empirically on our own ATPG-SAT instances:

* Horn: every clause has at most one positive literal (syntactic scan).
* 2-SAT: every clause has at most two literals.
* Hidden Horn: some switching (renaming) of variables makes the formula
  Horn; reduces to 2-SAT over "is variable switched?" indicators.
* q-Horn: there is a valuation α : vars → [0, 1] with
  Σ_{l ∈ C} α(l) ≤ 1 for every clause C, where α(x̄) = 1 − α(x)
  (Boros et al.'s LP characterisation).  Checked with an LP feasibility
  problem; Horn, hidden Horn and 2-SAT are all subclasses.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import linprog

from repro.sat.cnf import CnfFormula


def is_horn(formula: CnfFormula) -> bool:
    """True iff every clause has at most one positive literal."""
    return all(
        sum(1 for lit in clause if lit.positive) <= 1 for clause in formula.clauses
    )


def is_2sat(formula: CnfFormula) -> bool:
    """True iff every clause has at most two literals."""
    return all(len(clause) <= 2 for clause in formula.clauses)


def _tarjan_2sat(num_vars: int, implications: list[tuple[int, int]]) -> bool:
    """Satisfiability of a 2-SAT instance given as implication edges.

    Literal encoding: variable i has literals 2i (positive), 2i+1
    (negative).  Returns True iff no variable shares an SCC with its
    complement (iterative Tarjan to avoid recursion limits).
    """
    n = 2 * num_vars
    adjacency: list[list[int]] = [[] for _ in range(n)]
    for src, dst in implications:
        adjacency[src].append(dst)

    index = [0] * n
    lowlink = [0] * n
    on_stack = [False] * n
    component = [-1] * n
    visited = [False] * n
    counter = 0
    comp_count = 0
    stack: list[int] = []

    for root in range(n):
        if visited[root]:
            continue
        work = [(root, 0)]
        while work:
            node, child_index = work[-1]
            if child_index == 0:
                visited[node] = True
                index[node] = lowlink[node] = counter
                counter += 1
                stack.append(node)
                on_stack[node] = True
            advanced = False
            children = adjacency[node]
            while child_index < len(children):
                child = children[child_index]
                child_index += 1
                if not visited[child]:
                    work[-1] = (node, child_index)
                    work.append((child, 0))
                    advanced = True
                    break
                if on_stack[child]:
                    lowlink[node] = min(lowlink[node], index[child])
            if advanced:
                continue
            work[-1] = (node, child_index)
            if lowlink[node] == index[node]:
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    component[member] = comp_count
                    if member == node:
                        break
                comp_count += 1
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])

    return all(component[2 * v] != component[2 * v + 1] for v in range(num_vars))


def is_hidden_horn(formula: CnfFormula) -> bool:
    """True iff some renaming (variable switching) makes the formula Horn.

    Let s_v = 1 mean "switch variable v".  A literal is positive after
    renaming iff (positive and unswitched) or (negative and switched).
    The formula is renamable Horn iff for each clause, no two of its
    literals are simultaneously positive-after-renaming — a conjunction
    of 2-clauses over the s_v, i.e. a 2-SAT instance.
    """
    variables = list(formula.variables)
    index = {name: i for i, name in enumerate(variables)}
    implications: list[tuple[int, int]] = []

    def pos_after(lit) -> int:
        """Literal (in s-space) meaning 'lit is positive after renaming'."""
        v = index[lit.variable]
        # lit positive after renaming  <=>  s_v == (0 if lit.positive else 1)
        # Represent assertion "s_v = b" as the 2-SAT literal for that.
        return 2 * v + (1 if lit.positive else 0)
        # 2v   = s_v true  (switched)
        # 2v+1 = s_v false (unswitched)

    for clause in formula.clauses:
        lits = list(clause)
        for i in range(len(lits)):
            for j in range(i + 1, len(lits)):
                # Not both positive after renaming:
                # (¬p_i ∨ ¬p_j) where p = pos_after(lit).
                a = pos_after(lits[i])
                b = pos_after(lits[j])
                # clause (¬a ∨ ¬b): implications a → ¬b, b → ¬a.
                implications.append((a, b ^ 1))
                implications.append((b, a ^ 1))

    return _tarjan_2sat(len(variables), implications)


def is_q_horn(formula: CnfFormula) -> bool:
    """True iff the formula is q-Horn (Boros–Crama–Hammer LP test).

    Feasibility of: find α ∈ [0,1]^n with, for every clause C,
    ``Σ_{x ∈ C+} α_x + Σ_{x ∈ C-} (1 − α_x) ≤ 1``.
    """
    variables = list(formula.variables)
    if not variables or not formula.clauses:
        return True
    index = {name: i for i, name in enumerate(variables)}
    n = len(variables)
    rows = []
    rhs = []
    for clause in formula.clauses:
        row = np.zeros(n)
        bound = 1.0
        for lit in clause:
            if lit.positive:
                row[index[lit.variable]] += 1.0
            else:
                row[index[lit.variable]] -= 1.0
                bound -= 1.0
        rows.append(row)
        rhs.append(bound)
    result = linprog(
        c=np.zeros(n),
        A_ub=np.array(rows),
        b_ub=np.array(rhs),
        bounds=[(0.0, 1.0)] * n,
        method="highs",
    )
    return bool(result.success)


def classify(formula: CnfFormula) -> dict[str, bool]:
    """Membership of ``formula`` in each recognised easy class."""
    return {
        "horn": is_horn(formula),
        "2sat": is_2sat(formula),
        "hidden_horn": is_hidden_horn(formula),
        "q_horn": is_q_horn(formula),
    }
