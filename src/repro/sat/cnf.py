"""CNF formulas, literals, and assignment operations.

Follows the paper's Section 2 conventions: a formula is a set of clauses,
each clause a set of literals; a literal is a variable or its complement.
Variables are identified by strings (circuit net names) so that SAT-side
objects line up with circuit-side objects without a translation table.

A literal is represented as a ``(variable, polarity)`` tuple wrapped in
:class:`Literal`; clauses are ``frozenset`` of literals so that
sub-formulas can be hashed — the caching backtracking algorithm
(Algorithm 1) treats two sub-formulas as identical iff they have the same
set of clauses, exactly as the paper specifies.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping
from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True, order=True)
class Literal:
    """A variable occurrence with polarity (True = positive)."""

    variable: str
    positive: bool = True

    def __invert__(self) -> "Literal":
        return Literal(self.variable, not self.positive)

    def value_under(self, assignment: Mapping[str, int]) -> Optional[int]:
        """0/1 if the variable is assigned, else None."""
        value = assignment.get(self.variable)
        if value is None:
            return None
        return value if self.positive else 1 - value

    def __str__(self) -> str:
        return self.variable if self.positive else f"~{self.variable}"


def pos(variable: str) -> Literal:
    """Positive literal on ``variable``."""
    return Literal(variable, True)


def neg(variable: str) -> Literal:
    """Negative literal on ``variable``."""
    return Literal(variable, False)


Clause = frozenset  # Clause = frozenset[Literal]


def clause(*literals: Literal) -> Clause:
    """Build a clause from literals."""
    return frozenset(literals)


class CnfFormula:
    """An immutable-ish CNF formula: a set of clauses over named variables."""

    def __init__(self, clauses: Iterable[Clause] = (), name: str = "f") -> None:
        self.name = name
        self._clauses: frozenset[Clause] = frozenset(
            frozenset(c) for c in clauses
        )
        self._variables: Optional[tuple[str, ...]] = None

    # ------------------------------------------------------------------
    @property
    def clauses(self) -> frozenset[Clause]:
        """The clause set."""
        return self._clauses

    @property
    def variables(self) -> tuple[str, ...]:
        """All variables mentioned, sorted for determinism."""
        if self._variables is None:
            names = {lit.variable for cl in self._clauses for lit in cl}
            self._variables = tuple(sorted(names))
        return self._variables

    def num_clauses(self) -> int:
        return len(self._clauses)

    def num_variables(self) -> int:
        return len(self.variables)

    def __iter__(self) -> Iterator[Clause]:
        return iter(self._clauses)

    def __len__(self) -> int:
        return len(self._clauses)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CnfFormula):
            return NotImplemented
        return self._clauses == other._clauses

    def __hash__(self) -> int:
        return hash(self._clauses)

    # ------------------------------------------------------------------
    def with_clause(self, new_clause: Clause) -> "CnfFormula":
        """Formula with one additional clause."""
        return CnfFormula(self._clauses | {frozenset(new_clause)}, self.name)

    def with_clauses(self, new_clauses: Iterable[Clause]) -> "CnfFormula":
        """Formula with additional clauses."""
        extra = {frozenset(c) for c in new_clauses}
        return CnfFormula(self._clauses | extra, self.name)

    def with_unit(self, literal: Literal) -> "CnfFormula":
        """Formula with an added unit clause asserting ``literal``."""
        return self.with_clause(frozenset({literal}))

    # ------------------------------------------------------------------
    def evaluate(self, assignment: Mapping[str, int]) -> Optional[bool]:
        """Truth value under a (possibly partial) assignment.

        Returns:
            True if every clause is satisfied, False if some clause is
            falsified, None if undetermined.
        """
        undetermined = False
        for cl in self._clauses:
            state = _clause_state(cl, assignment)
            if state is False:
                return False
            if state is None:
                undetermined = True
        return None if undetermined else True

    def is_satisfied_by(self, assignment: Mapping[str, int]) -> bool:
        """True iff the (total enough) assignment satisfies every clause."""
        return self.evaluate(assignment) is True

    def assign(self, assignment: Mapping[str, int]) -> "SubFormula":
        """The sub-formula obtained by applying ``assignment``.

        Mirrors the paper's ``Assign``: satisfied clauses disappear; false
        literals are deleted from their clauses.  The result may contain
        the empty clause, signalling inconsistency (a "null clause").
        """
        return reduce_clauses(self._clauses, assignment)

    def restrict(self, variable: str, value: int) -> "SubFormula":
        """Sub-formula after assigning a single variable."""
        return self.assign({variable: value})

    def stats(self) -> dict[str, float]:
        """Simple size statistics (variables, clauses, literal counts)."""
        lengths = [len(cl) for cl in self._clauses]
        return {
            "variables": self.num_variables(),
            "clauses": len(lengths),
            "literals": sum(lengths),
            "max_clause_len": max(lengths, default=0),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"CnfFormula({self.name!r}, vars={self.num_variables()}, "
            f"clauses={self.num_clauses()})"
        )


#: A reduced clause set (result of applying a partial assignment).
SubFormula = frozenset  # frozenset[Clause]


def _clause_state(cl: Clause, assignment: Mapping[str, int]) -> Optional[bool]:
    """True = satisfied, False = falsified, None = undetermined."""
    open_literal = False
    for lit in cl:
        value = lit.value_under(assignment)
        if value == 1:
            return True
        if value is None:
            open_literal = True
    return None if open_literal else False


def reduce_clauses(
    clauses: Iterable[Clause], assignment: Mapping[str, int]
) -> SubFormula:
    """Apply a partial assignment to a clause set.

    Satisfied clauses are dropped; false literals are removed.  An empty
    clause in the result marks the sub-formula as inconsistent (the
    paper's "null clause" test).
    """
    reduced: set[Clause] = set()
    for cl in clauses:
        satisfied = False
        remaining: list[Literal] = []
        for lit in cl:
            value = lit.value_under(assignment)
            if value == 1:
                satisfied = True
                break
            if value is None:
                remaining.append(lit)
        if not satisfied:
            reduced.add(frozenset(remaining))
    return frozenset(reduced)


def has_null_clause(sub_formula: SubFormula) -> bool:
    """True if the reduced clause set contains an empty clause."""
    return frozenset() in sub_formula


def sub_formula_variables(sub_formula: SubFormula) -> set[str]:
    """Variables still mentioned in a reduced clause set."""
    return {lit.variable for cl in sub_formula for lit in cl}


def formula_from_ints(
    int_clauses: Iterable[Iterable[int]], prefix: str = "x"
) -> CnfFormula:
    """Build a formula from DIMACS-style signed integers.

    ``3`` becomes the positive literal on variable ``x3``; ``-3`` the
    negative one.  Useful for tests and for DIMACS import.
    """
    clauses = []
    for int_clause in int_clauses:
        lits = []
        for value in int_clause:
            if value == 0:
                raise ValueError("0 is not a valid DIMACS literal")
            lits.append(Literal(f"{prefix}{abs(value)}", value > 0))
        clauses.append(frozenset(lits))
    return CnfFormula(clauses)
