"""Compilation of named-variable CNF into integer-indexed form.

The exploratory solvers (:mod:`repro.sat.backtracking`,
:mod:`repro.sat.caching`) work directly on frozenset clauses because they
need hashable sub-formulas.  The performance solvers (DPLL, CDCL) instead
compile the formula once into dense integer literals:

* variable ``i`` (0-based) has positive literal ``2*i`` and negative
  literal ``2*i + 1`` (LSB = polarity, MiniSat convention);
* a clause is a list of literal ints.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sat.cnf import CnfFormula


def lit_of(var_index: int, positive: bool) -> int:
    """Encode a literal."""
    return 2 * var_index + (0 if positive else 1)


def var_of(lit: int) -> int:
    """Variable index of a literal."""
    return lit >> 1

def is_positive(lit: int) -> bool:
    """True for positive literals."""
    return (lit & 1) == 0


def negate(lit: int) -> int:
    """Complement literal."""
    return lit ^ 1


@dataclass
class CompiledCnf:
    """Integer form of a CNF formula plus the name mapping."""

    num_vars: int
    clauses: list[list[int]]
    index_of: dict[str, int]
    name_of: list[str]

    def decode_assignment(self, values: list[int]) -> dict[str, int]:
        """Map internal 0/1 values back to variable names."""
        return {
            self.name_of[i]: values[i]
            for i in range(self.num_vars)
            if values[i] in (0, 1)
        }


def compile_formula(formula: CnfFormula) -> CompiledCnf:
    """Compile ``formula`` into integer-literal clause lists.

    Tautological clauses (containing x and ~x) are dropped; duplicate
    literals within a clause are merged.  Variable indices follow sorted
    name order for determinism.
    """
    names = list(formula.variables)
    index_of = {name: i for i, name in enumerate(names)}
    clauses: list[list[int]] = []
    for clause in formula.clauses:
        seen: set[int] = set()
        tautology = False
        for literal in clause:
            lit = lit_of(index_of[literal.variable], literal.positive)
            if negate(lit) in seen:
                tautology = True
                break
            seen.add(lit)
        if not tautology:
            clauses.append(sorted(seen))
    return CompiledCnf(
        num_vars=len(names),
        clauses=clauses,
        index_of=index_of,
        name_of=names,
    )
