"""Compilation of named-variable CNF into integer-indexed form.

The exploratory solvers (:mod:`repro.sat.backtracking`,
:mod:`repro.sat.caching`) work directly on frozenset clauses because they
need hashable sub-formulas.  The performance solvers (DPLL, CDCL) instead
compile the formula once into dense integer literals:

* variable ``i`` (0-based) has positive literal ``2*i`` and negative
  literal ``2*i + 1`` (LSB = polarity, MiniSat convention);
* a clause is a list of literal ints.

:func:`compile_formula` is the whole-formula batch path.
:class:`IncrementalCompiler` is the append path used by the incremental
SAT layer (:mod:`repro.sat.incremental`): clauses arrive a group at a
time, new names are interned against a live variable allocator, and
names can be released again when their clause group is retired.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from dataclasses import dataclass

from repro.sat.cnf import Clause, CnfFormula


def lit_of(var_index: int, positive: bool) -> int:
    """Encode a literal."""
    return 2 * var_index + (0 if positive else 1)


def var_of(lit: int) -> int:
    """Variable index of a literal."""
    return lit >> 1

def is_positive(lit: int) -> bool:
    """True for positive literals."""
    return (lit & 1) == 0


def negate(lit: int) -> int:
    """Complement literal."""
    return lit ^ 1


@dataclass
class CompiledCnf:
    """Integer form of a CNF formula plus the name mapping."""

    num_vars: int
    clauses: list[list[int]]
    index_of: dict[str, int]
    name_of: list[str]

    def decode_assignment(self, values: list[int]) -> dict[str, int]:
        """Map internal 0/1 values back to variable names."""
        return {
            self.name_of[i]: values[i]
            for i in range(self.num_vars)
            if values[i] in (0, 1)
        }


def compile_formula(formula: CnfFormula) -> CompiledCnf:
    """Compile ``formula`` into integer-literal clause lists.

    Tautological clauses (containing x and ~x) are dropped; duplicate
    literals within a clause are merged.  Variable indices follow sorted
    name order for determinism.
    """
    names = list(formula.variables)
    index_of = {name: i for i, name in enumerate(names)}
    clauses: list[list[int]] = []
    for clause in formula.clauses:
        seen: set[int] = set()
        tautology = False
        for literal in clause:
            lit = lit_of(index_of[literal.variable], literal.positive)
            if negate(lit) in seen:
                tautology = True
                break
            seen.add(lit)
        if not tautology:
            clauses.append(sorted(seen))
    # The formula stores clauses in a frozenset, so iteration order above
    # follows per-process hash randomisation.  Sorting the compiled
    # clause list pins the solver's trajectory (watch order, learned
    # clauses, work counters) to the formula alone — reproducible across
    # processes, which certification replays and benchmarks rely on.
    clauses.sort()
    return CompiledCnf(
        num_vars=len(names),
        clauses=clauses,
        index_of=index_of,
        name_of=names,
    )


class IncrementalCompiler:
    """Interns variable names to solver indices, one clause at a time.

    Unlike :func:`compile_formula`, which needs the whole formula up
    front to fix a dense index range, this compiler allocates indices
    on first sight of a name via the ``allocate`` callback (normally
    the persistent solver's ``new_var``), so clause groups can be
    appended to a live solver without recompiling anything.  Releasing
    the names of a retired group lets the solver recycle their indices.
    """

    def __init__(self, allocate: Callable[[], int]) -> None:
        self._allocate = allocate
        self._index_of: dict[str, int] = {}
        self._name_of: dict[int, str] = {}

    def __len__(self) -> int:
        return len(self._index_of)

    def var(self, name: str) -> int:
        """Index of ``name``, allocating a fresh variable on first use."""
        index = self._index_of.get(name)
        if index is None:
            index = self._allocate()
            self._index_of[name] = index
            self._name_of[index] = name
        return index

    def lookup(self, name: str) -> int | None:
        """Index of ``name`` if interned, else ``None`` (no allocation)."""
        return self._index_of.get(name)

    def name_of(self, index: int) -> str | None:
        """Name bound to ``index``, or ``None`` for anonymous variables
        (activation literals) and released/recycled indices."""
        return self._name_of.get(index)

    def clause_ints(self, clause: Clause) -> list[int] | None:
        """Integer form of a named clause, or ``None`` for a tautology.

        Duplicate literals are merged, mirroring :func:`compile_formula`.
        Literals are interned in name order: clauses are frozensets, so
        raw iteration order follows per-process hash randomisation, and
        allocation order decides variable indices — sorting keeps the
        solver's trajectory reproducible across processes.
        """
        seen: set[int] = set()
        for literal in sorted(clause, key=lambda l: (l.variable, l.positive)):
            lit = lit_of(self.var(literal.variable), literal.positive)
            if negate(lit) in seen:
                return None
            seen.add(lit)
        return sorted(seen)

    def release(self, names: Iterable[str]) -> list[int]:
        """Forget ``names`` and return their (now recyclable) indices."""
        freed: list[int] = []
        for name in names:
            index = self._index_of.pop(name, None)
            if index is not None:
                self._name_of.pop(index, None)
                freed.append(index)
        return freed

    def items(self) -> Iterable[tuple[str, int]]:
        """Live ``(name, index)`` pairs (model decoding)."""
        return self._index_of.items()
