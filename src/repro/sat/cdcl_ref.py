"""Reference object-graph CDCL core (executable specification).

This is the object-graph :class:`~repro.sat.cdcl.CdclCore`
implementation, kept as an executable specification: clauses are plain
``list[int]`` objects referenced by identity from the watch lists and
the implication graph.  The production core (:mod:`repro.sat.cdcl`)
stores clauses in a packed integer arena and keeps ``array``-typed
state for speed, but is required to be *bit-identical* to this
reference — same verdicts, same propagation / decision / conflict /
restart counters, same DRUP proofs — because the two implementations
perform the same binary-first propagation and the same literal-order
permutations in the same order.  The parity suite
(``tests/sat/test_kernel_parity.py``) drives both cores through
identical clause streams and compares trajectories.

Binary clauses are handled exactly as in the production core: they are
kept out of the watch lists, attached as implication edges in
``bin_watches``, propagated in a pre-pass before the long-clause watch
traversal, and never permuted.  A binary reason contributes its single
non-resolved literal during conflict analysis (the production core
encodes that literal in its flat ``reason`` array; here the reason is
the two-literal clause and the contribution is selected by variable).
This is a *semantic* mirror, not an optimisation: the propagation order
defines the search trajectory, so both cores must share it.

Do not optimise this module; its only job is to stay simple enough to
trust.
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from heapq import heapify, heappop, heappush
from typing import Optional

from repro.sat.compile import negate
from repro.sat.drup import DrupLog
from repro.sat.result import SatStatus, SolverStats

_UNASSIGNED = -1

#: Rescale threshold for VSIDS activities (MiniSat's 1e100 scheme).
_ACTIVITY_CAP = 1e100


class ReferenceCdclCore:
    """Persistent CDCL engine over integer literals (object-graph form).

    See :class:`repro.sat.cdcl.CdclCore` for the full API contract; the
    two classes are drop-in interchangeable except that here ``reason``
    holds clause *lists* and there it holds arena offsets (with binary
    reasons literal-encoded).
    """

    def __init__(
        self,
        restart_interval: int = 128,
        decay: float = 0.95,
        proof: Optional["DrupLog"] = None,
        learned_db_min: int = 1000,
        learned_db_factor: float = 2.0,
    ) -> None:
        self.restart_interval = restart_interval
        self.decay = decay
        self.proof = proof
        self.learned_db_min = learned_db_min
        self.learned_db_factor = learned_db_factor

        self.values: list[int] = []
        self.level: list[int] = []
        self.reason: list[Optional[list[int]]] = []
        self.activity: list[float] = []
        self.saved_phase: list[int] = []
        self.released: list[bool] = []
        self.watches: list[list[list[int]]] = []
        #: Parallel blocker literal per long-clause watch entry; the
        #: clause is skipped without inspection while it is true.
        self.blockers: list[list[int]] = []
        #: Binary implication edges: bin_watches[lit] holds
        #: ``(other, clause)`` pairs, one per binary clause {lit, other}.
        self.bin_watches: list[list[tuple[int, list[int]]]] = []

        self.base: list[list[int]] = []
        self.learned: list[list[int]] = []
        self._lbd: dict[int, int] = {}  # id(clause) -> literal block distance

        self.trail: list[int] = []
        self.trail_lim: list[int] = []
        self.qhead = 0
        self.root_failed = False

        self._var_inc = 1.0
        self._heap: list[tuple[float, int]] = []
        self._free: list[int] = []
        #: Vars released while still root-assigned (activation literals);
        #: recycled by :meth:`collect` once their clauses are swept.
        self._zombie: list[int] = []

    # ------------------------------------------------------------------
    # Variables
    # ------------------------------------------------------------------
    @property
    def num_vars(self) -> int:
        """Allocated variable count (including recyclable slots)."""
        return len(self.values)

    def new_var(self) -> int:
        """Allocate a variable index (recycling released ones)."""
        if self._free:
            var = self._free.pop()
            self.released[var] = False
            self.activity[var] = 0.0
            self.saved_phase[var] = 0
            heappush(self._heap, (0.0, var))
            return var
        var = len(self.values)
        self.values.append(_UNASSIGNED)
        self.level.append(0)
        self.reason.append(None)
        self.activity.append(0.0)
        self.saved_phase.append(0)
        self.released.append(False)
        for _ in range(2):
            self.watches.append([])
            self.blockers.append([])
            self.bin_watches.append([])
        heappush(self._heap, (0.0, var))
        return var

    def new_vars(self, count: int) -> None:
        """Bulk-allocate ``count`` fresh variables (scalar loop here;
        the production core extends its flat arrays in one shot)."""
        for _ in range(count):
            self.new_var()

    def release_var(self, var: int, defer: bool = False) -> None:
        """Mark ``var`` dead.  Immediately recyclable unless ``defer``
        (for vars still root-assigned, e.g. activation literals, which
        :meth:`collect` recycles after sweeping their clauses)."""
        self.released[var] = True
        if defer or self.values[var] != _UNASSIGNED:
            self._zombie.append(var)
        else:
            self._free.append(var)

    def set_activity(self, var: int, value: float) -> None:
        """Seed a variable's activity (static-order tie-breaking)."""
        self.activity[var] = value
        if self.values[var] == _UNASSIGNED and not self.released[var]:
            heappush(self._heap, (-value, var))

    # ------------------------------------------------------------------
    # Clauses
    # ------------------------------------------------------------------
    def add_clause(self, lits: list[int]) -> bool:
        """Append a problem clause (root simplified).

        Must be called at decision level 0.  Returns ``False`` when the
        database became root-inconsistent.
        """
        if self.root_failed:
            return False
        kept: Optional[list[int]] = None  # lazily copied on simplification
        for index, lit in enumerate(lits):
            value = self._lit_value(lit)
            if value == 1:
                return True  # satisfied at root: never attach
            if value == 0:
                if kept is None:
                    kept = lits[:index]
                continue
            if kept is not None:
                kept.append(lit)
        clause = lits if kept is None else kept
        if self.proof is not None and kept is not None:
            # A root-simplified clause differs from the caller's input
            # (which the checker sees as part of the formula), so it is
            # a derived clause the proof must justify: it is RUP because
            # the dropped literals are root-false by unit propagation.
            if clause:
                self.proof.add(clause)
            else:
                self.proof.add_empty()
        if not clause:
            self.root_failed = True
            return False
        if len(clause) == 1:
            if not self._enqueue(clause[0], None):
                if self.proof is not None:
                    self.proof.add_empty()
                self.root_failed = True
                return False
            return True
        self.base.append(clause)
        if len(clause) == 2:
            self.bin_watches[clause[0]].append((clause[1], clause))
            self.bin_watches[clause[1]].append((clause[0], clause))
        else:
            self.watches[clause[0]].append(clause)
            self.blockers[clause[0]].append(clause[1])
            self.watches[clause[1]].append(clause)
            self.blockers[clause[1]].append(clause[0])
        return True

    def _detach(self, clause: list[int]) -> None:
        """Remove ``clause`` from its watch structures (by identity)."""
        if len(clause) == 2:
            for lit in (clause[0], clause[1]):
                edges = self.bin_watches[lit]
                for i, (_, other) in enumerate(edges):
                    if other is clause:
                        edges[i] = edges[-1]
                        edges.pop()
                        break
            return
        for lit in (clause[0], clause[1]):
            watching = self.watches[lit]
            blks = self.blockers[lit]
            for i, other in enumerate(watching):
                if other is clause:
                    watching[i] = watching[-1]
                    watching.pop()
                    blks[i] = blks[-1]
                    blks.pop()
                    break

    # ------------------------------------------------------------------
    # Assignment machinery
    # ------------------------------------------------------------------
    def current_level(self) -> int:
        return len(self.trail_lim)

    def _lit_value(self, lit: int) -> int:
        value = self.values[lit >> 1]
        if value == _UNASSIGNED:
            return _UNASSIGNED
        return value ^ (lit & 1)

    def _enqueue(self, lit: int, reason_clause: Optional[list[int]]) -> bool:
        var = lit >> 1
        value = 1 ^ (lit & 1)
        if self.values[var] != _UNASSIGNED:
            return self.values[var] == value
        self.values[var] = value
        self.level[var] = len(self.trail_lim)
        self.reason[var] = reason_clause
        self.trail.append(lit)
        return True

    def _propagate(self, stats: SolverStats) -> Optional[list[int]]:
        """Unit propagation.  Returns a conflicting clause, or None.

        Mirrors the production kernel: each dequeued literal first
        walks its binary implication edges, then the long-clause watch
        list.
        """
        values = self.values
        watches = self.watches
        blockers = self.blockers
        bin_watches = self.bin_watches
        trail = self.trail
        while self.qhead < len(trail):
            lit = trail[self.qhead]
            self.qhead += 1
            false_lit = lit ^ 1
            # Binary fast path: every edge is ¬false_lit → other.
            for other, cl in bin_watches[false_lit]:
                ov = values[other >> 1]
                if ov != _UNASSIGNED:
                    if ov ^ (other & 1) == 1:
                        continue
                    return cl  # both literals false: conflict
                stats.propagations += 1
                self._enqueue(other, cl)
            # Long clauses (size >= 3) via two watched literals, each
            # entry carrying a blocker literal (skip while it is true).
            watching = watches[false_lit]
            blks = blockers[false_lit]
            i = 0
            while i < len(watching):
                b = blks[i]
                bv = values[b >> 1]
                if bv != _UNASSIGNED and bv ^ (b & 1) == 1:
                    i += 1
                    continue
                cl = watching[i]
                if cl[0] == false_lit:
                    cl[0], cl[1] = cl[1], cl[0]
                first = cl[0]
                fv = values[first >> 1]
                if fv != _UNASSIGNED and fv ^ (first & 1) == 1:
                    blks[i] = first
                    i += 1
                    continue
                found = False
                for k in range(2, len(cl)):
                    other = cl[k]
                    ov = values[other >> 1]
                    if ov == _UNASSIGNED or ov ^ (other & 1) != 0:
                        cl[1], cl[k] = cl[k], cl[1]
                        watches[cl[1]].append(cl)
                        blockers[cl[1]].append(first)
                        watching[i] = watching[-1]
                        watching.pop()
                        blks[i] = blks[-1]
                        blks.pop()
                        found = True
                        break
                if found:
                    continue
                if fv != _UNASSIGNED:  # first is false: conflict
                    return cl
                stats.propagations += 1
                self._enqueue(first, cl)
                blks[i] = first
                i += 1
        return None

    def propagate_root(self, stats: Optional[SolverStats] = None) -> bool:
        """Settle root-level units (after appends).  False on conflict."""
        if self.root_failed:
            return False
        if self._propagate(stats or SolverStats()) is not None:
            if self.proof is not None:
                self.proof.add_empty()
            self.root_failed = True
            return False
        return True

    def backjump(self, target_level: int) -> None:
        """Undo assignments above ``target_level``, saving phases."""
        if self.current_level() <= target_level:
            return
        limit = self.trail_lim[target_level]
        trail = self.trail
        while len(trail) > limit:
            lit = trail.pop()
            var = lit >> 1
            self.saved_phase[var] = self.values[var]
            self.values[var] = _UNASSIGNED
            self.reason[var] = None
            if not self.released[var]:
                heappush(self._heap, (-self.activity[var], var))
        del self.trail_lim[target_level:]
        self.qhead = len(trail)

    # ------------------------------------------------------------------
    # VSIDS
    # ------------------------------------------------------------------
    def _bump(self, var: int) -> None:
        value = self.activity[var] + self._var_inc
        self.activity[var] = value
        if self.values[var] == _UNASSIGNED and not self.released[var]:
            heappush(self._heap, (-value, var))
        if value > _ACTIVITY_CAP:
            self._rescale()

    def _rescale(self) -> None:
        scale = 1.0 / _ACTIVITY_CAP
        for var in range(len(self.activity)):
            self.activity[var] *= scale
        self._var_inc *= scale
        self._heap = [
            (-self.activity[var], var)
            for var in range(len(self.values))
            if self.values[var] == _UNASSIGNED and not self.released[var]
        ]
        heapify(self._heap)

    def _pick_branch(self) -> int:
        heap = self._heap
        values = self.values
        activity = self.activity
        released = self.released
        while heap:
            negact, var = heappop(heap)
            if (
                values[var] == _UNASSIGNED
                and not released[var]
                and -negact == activity[var]
            ):
                return var
        return -1

    # ------------------------------------------------------------------
    # Conflict analysis
    # ------------------------------------------------------------------
    def _analyze(
        self, conflict: list[int], stats: SolverStats
    ) -> tuple[list[int], int, int]:
        """First-UIP conflict analysis (MiniSat structure).

        A long reason clause stores its implied literal at position 0
        (maintained by watch swaps); binary clauses are never permuted,
        so a binary reason contributes the literal whose variable is
        not the resolved one — exactly the literal the production core
        encodes in its flat ``reason`` array.
        """
        learned: list[int] = []
        seen = [False] * len(self.values)
        level = self.level
        path_count = 0
        p: Optional[int] = None
        cl: Optional[list[int]] = conflict
        index = len(self.trail) - 1
        current = self.current_level()
        while True:
            assert cl is not None
            if p is None:
                tail: Sequence[int] = cl
            elif len(cl) == 2:
                # Binary reason: resolve with the non-p literal.
                tail = (cl[1],) if (cl[0] >> 1) == (p >> 1) else (cl[0],)
            else:
                # Skip position 0: the literal we resolved on.
                tail = cl[1:]
            for q in tail:
                var = q >> 1
                if not seen[var] and level[var] > 0:
                    seen[var] = True
                    self._bump(var)
                    if level[var] >= current:
                        path_count += 1
                    else:
                        learned.append(q)
            while not seen[self.trail[index] >> 1]:
                index -= 1
            p = self.trail[index]
            var = p >> 1
            seen[var] = False
            path_count -= 1
            index -= 1
            if path_count <= 0:
                break
            cl = self.reason[var]
        learned.insert(0, negate(p))
        if len(learned) == 1:
            return learned, 0, 1
        back_level = max(level[q >> 1] for q in learned[1:])
        lbd = len({level[q >> 1] for q in learned})
        return learned, back_level, lbd

    def _record_learned(
        self, learned: list[int], lbd: int, stats: SolverStats
    ) -> None:
        """Attach a learned clause and assert its first literal."""
        stats.learned_clauses += 1
        if self.proof is not None:
            # Copy now: watch maintenance permutes the list in place.
            self.proof.add(learned)
        if len(learned) == 2:
            self.learned.append(learned)
            self._lbd[id(learned)] = lbd
            self.bin_watches[learned[0]].append((learned[1], learned))
            self.bin_watches[learned[1]].append((learned[0], learned))
            self._enqueue(learned[0], learned)
        elif len(learned) > 2:
            # Watch invariant: position 1 must hold a literal from the
            # backjump level, else future backtracks can leave the
            # clause incorrectly watched.
            best = max(
                range(1, len(learned)),
                key=lambda j: self.level[learned[j] >> 1],
            )
            learned[1], learned[best] = learned[best], learned[1]
            self.learned.append(learned)
            self._lbd[id(learned)] = lbd
            self.watches[learned[0]].append(learned)
            self.blockers[learned[0]].append(learned[1])
            self.watches[learned[1]].append(learned)
            self.blockers[learned[1]].append(learned[0])
            self._enqueue(learned[0], learned)
        else:
            self._enqueue(learned[0], None)

    def reduce_learned(self) -> int:
        """Drop the worst half of the learned database."""
        locked = {
            id(reason) for reason in self.reason if reason is not None
        }
        lbd = self._lbd
        candidates = [
            cl
            for cl in self.learned
            if id(cl) not in locked
            and len(cl) > 2
            and lbd.get(id(cl), 99) > 2
        ]
        candidates.sort(key=lambda cl: (lbd.get(id(cl), 99), len(cl)))
        victims = {id(cl) for cl in candidates[len(candidates) // 2 :]}
        if not victims:
            return 0
        for cl in self.learned:
            if id(cl) in victims:
                self._detach(cl)
                lbd.pop(id(cl), None)
                if self.proof is not None:
                    self.proof.delete(cl)
        self.learned = [cl for cl in self.learned if id(cl) not in victims]
        return len(victims)

    # ------------------------------------------------------------------
    # Garbage collection (activation-literal retirement)
    # ------------------------------------------------------------------
    def collect(self) -> int:
        """Sweep clauses satisfied at the root and recycle zombie vars."""
        assert self.current_level() == 0
        values = self.values

        def root_satisfied(cl: list[int]) -> bool:
            for lit in cl:
                value = values[lit >> 1]
                if value != _UNASSIGNED and value ^ (lit & 1) == 1:
                    return True
            return False

        removed = 0
        for name in ("base", "learned"):
            kept: list[list[int]] = []
            for cl in getattr(self, name):
                if root_satisfied(cl):
                    removed += 1
                    self._lbd.pop(id(cl), None)
                    if self.proof is not None:
                        self.proof.delete(cl)
                else:
                    kept.append(cl)
            setattr(self, name, kept)
        if not removed and not self._zombie:
            return 0

        # Drop zombie vars from the root trail and recycle them.
        if self._zombie:
            zombies = set(self._zombie)
            self.trail = [
                lit for lit in self.trail if (lit >> 1) not in zombies
            ]
            self.qhead = len(self.trail)
            for var in self._zombie:
                self.values[var] = _UNASSIGNED
                self.reason[var] = None
                self.activity[var] = 0.0
                self.saved_phase[var] = 0
                self._free.append(var)
            self._zombie.clear()

        # Rebuild watches; pick non-root-false watch positions so the
        # two-watched-literal invariant holds from a clean slate.
        # Binary clauses are never permuted (matching the production
        # core) and re-attach in base+learned order.
        self.watches = [[] for _ in range(2 * len(values))]
        self.blockers = [[] for _ in range(2 * len(values))]
        self.bin_watches = [[] for _ in range(2 * len(values))]
        for cl in self.base + self.learned:
            if len(cl) == 2:
                self.bin_watches[cl[0]].append((cl[1], cl))
                self.bin_watches[cl[1]].append((cl[0], cl))
                continue
            free = 0
            for k in range(len(cl)):
                value = values[cl[k] >> 1]
                if value == _UNASSIGNED or value ^ (cl[k] & 1) == 1:
                    cl[free], cl[k] = cl[k], cl[free]
                    free += 1
                    if free == 2:
                        break
            self.watches[cl[0]].append(cl)
            self.blockers[cl[0]].append(cl[1])
            self.watches[cl[1]].append(cl)
            self.blockers[cl[1]].append(cl[0])
        return removed

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def clause_bytes_estimate(self) -> int:
        """Rough heap footprint of the clause database, in bytes."""
        lits = sum(len(cl) for cl in self.base)
        lits += sum(len(cl) for cl in self.learned)
        n_clauses = len(self.base) + len(self.learned)
        return lits * 36 + n_clauses * 72

    def solve(
        self,
        assumptions: Sequence[int] = (),
        max_conflicts: Optional[int] = None,
        deadline_at: Optional[float] = None,
        mem_budget_mb: Optional[float] = None,
    ) -> tuple[SatStatus, SolverStats]:
        """CDCL search under ``assumptions``.

        Identical contract to :meth:`repro.sat.cdcl.CdclCore.solve`.
        """
        stats = SolverStats()
        mem_budget_bytes = (
            None if mem_budget_mb is None else mem_budget_mb * 1024 * 1024
        )
        self.backjump(0)
        if self.root_failed or self._propagate(stats) is not None:
            if not self.root_failed and self.proof is not None:
                self.proof.add_empty()
            self.root_failed = True
            return SatStatus.UNSAT, stats
        if deadline_at is not None and time.monotonic() >= deadline_at:
            return SatStatus.UNKNOWN, stats

        restart_limit = self.restart_interval
        conflicts_since_restart = 0

        while True:
            conflict = self._propagate(stats)
            if conflict is not None:
                stats.conflicts += 1
                conflicts_since_restart += 1
                if (
                    max_conflicts is not None
                    and stats.conflicts > max_conflicts
                ):
                    self.backjump(0)
                    return SatStatus.UNKNOWN, stats
                if (
                    deadline_at is not None
                    and stats.conflicts & 63 == 0
                    and time.monotonic() >= deadline_at
                ):
                    self.backjump(0)
                    return SatStatus.UNKNOWN, stats
                if (
                    mem_budget_bytes is not None
                    and stats.conflicts & 63 == 0
                    and self.clause_bytes_estimate() > mem_budget_bytes
                ):
                    self.reduce_learned()
                    if self.clause_bytes_estimate() > mem_budget_bytes:
                        stats.mem_limit_hit = True
                        self.backjump(0)
                        return SatStatus.UNKNOWN, stats
                if self.current_level() == 0:
                    if self.proof is not None:
                        self.proof.add_empty()
                    self.root_failed = True
                    return SatStatus.UNSAT, stats
                learned, back_level, lbd = self._analyze(conflict, stats)
                self.backjump(back_level)
                self._record_learned(learned, lbd, stats)
                self._var_inc /= self.decay
                if self._var_inc > _ACTIVITY_CAP:
                    self._rescale()
                if len(self.learned) > max(
                    self.learned_db_min,
                    int(self.learned_db_factor * len(self.base)),
                ):
                    self.reduce_learned()
                continue

            if conflicts_since_restart >= restart_limit:
                conflicts_since_restart = 0
                restart_limit = int(restart_limit * 1.5)
                stats.restarts += 1
                self.backjump(0)
                continue

            lit = None
            while self.current_level() < len(assumptions):
                p = assumptions[self.current_level()]
                value = self._lit_value(p)
                if value == 1:
                    # Already satisfied: open a dummy level and move on.
                    self.trail_lim.append(len(self.trail))
                elif value == 0:
                    self.backjump(0)
                    return SatStatus.UNSAT, stats
                else:
                    lit = p
                    break
            if lit is None:
                var = self._pick_branch()
                if var == -1:
                    return SatStatus.SAT, stats
                stats.decisions += 1
                stats.nodes += 1
                if (
                    deadline_at is not None
                    and stats.decisions & 511 == 0
                    and time.monotonic() >= deadline_at
                ):
                    self.backjump(0)
                    return SatStatus.UNKNOWN, stats
                lit = 2 * var + (0 if self.saved_phase[var] == 1 else 1)
            self.trail_lim.append(len(self.trail))
            self._enqueue(lit, None)
