"""Iterative DPLL with unit propagation — the TEGUS stand-in.

TEGUS (Stephan et al. 1996) solves ATPG-SAT instances with backtracking
plus implications; for the Figure 1 reproduction we need a solver in the
same family that is fast enough in Python to process thousands of
instances.  This DPLL uses:

* two-watched-literal unit propagation,
* a static variable order by default (callers pass a topological or MLA
  order), with an optional dynamic max-occurrence heuristic,
* chronological backtracking (no learning — see :mod:`repro.sat.cdcl`
  for the learning variant).
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from typing import Optional

from repro.sat.cnf import CnfFormula
from repro.sat.compile import CompiledCnf, compile_formula, negate, var_of
from repro.sat.result import SatResult, SatStatus, SolverStats

_UNASSIGNED = -1


class DpllSolver:
    """DPLL over a compiled CNF.

    Args:
        order: optional static decision order (variable names).  Variables
            not mentioned are appended in sorted order.
        dynamic: if True, ignore the static order and pick the unassigned
            variable with the most open occurrences at each decision
            (a MOM-flavoured heuristic).
        max_decisions: budget; exceeded search returns ``UNKNOWN``.
    """

    def __init__(
        self,
        order: Optional[Sequence[str]] = None,
        dynamic: bool = False,
        max_decisions: Optional[int] = None,
    ) -> None:
        self._order = list(order) if order is not None else None
        self.dynamic = dynamic
        self.max_decisions = max_decisions

    # ------------------------------------------------------------------
    def solve(self, formula: CnfFormula) -> SatResult:
        """Decide satisfiability of ``formula``."""
        start = time.perf_counter()
        stats = SolverStats()
        compiled = compile_formula(formula)
        status, values = self._solve_compiled(compiled, stats)
        stats.time_seconds = time.perf_counter() - start
        if status is SatStatus.SAT:
            model = compiled.decode_assignment(values)
            for name in compiled.name_of:
                model.setdefault(name, 0)
            return SatResult(SatStatus.SAT, assignment=model, stats=stats)
        return SatResult(status, stats=stats)

    # ------------------------------------------------------------------
    def _decision_order(self, compiled: CompiledCnf) -> list[int]:
        if self._order is None:
            return list(range(compiled.num_vars))
        order = [
            compiled.index_of[name]
            for name in self._order
            if name in compiled.index_of
        ]
        missing = sorted(set(range(compiled.num_vars)) - set(order))
        return order + missing

    def _solve_compiled(
        self, compiled: CompiledCnf, stats: SolverStats
    ) -> tuple[SatStatus, list[int]]:
        num_vars = compiled.num_vars
        clauses = [list(c) for c in compiled.clauses]
        values = [_UNASSIGNED] * num_vars

        # Empty clause => UNSAT outright.
        if any(not c for c in clauses):
            return SatStatus.UNSAT, values
        if not clauses or num_vars == 0:
            return SatStatus.SAT, values

        # Watch lists: watches[lit] = clause indices watching lit.
        watches: list[list[int]] = [[] for _ in range(2 * num_vars)]
        units: list[int] = []
        for ci, clause in enumerate(clauses):
            if len(clause) == 1:
                units.append(clause[0])
            else:
                watches[clause[0]].append(ci)
                watches[clause[1]].append(ci)

        occurrences = [0] * (2 * num_vars)
        for clause in clauses:
            for lit in clause:
                occurrences[lit] += 1

        trail: list[int] = []  # assigned literals in order
        trail_lim: list[int] = []  # trail length at each decision level
        # Per decision level, the literal decided and whether we tried both.
        decision_stack: list[tuple[int, bool]] = []

        def assign(lit: int) -> bool:
            """Enqueue literal; returns False on immediate conflict."""
            var = var_of(lit)
            value = 1 if (lit & 1) == 0 else 0
            if values[var] != _UNASSIGNED:
                return values[var] == value
            values[var] = value
            trail.append(lit)
            return True

        def propagate(queue_start: int) -> bool:
            """Watched-literal BCP from trail position ``queue_start``."""
            qhead = queue_start
            while qhead < len(trail):
                lit = trail[qhead]
                qhead += 1
                false_lit = negate(lit)
                watching = watches[false_lit]
                i = 0
                while i < len(watching):
                    ci = watching[i]
                    clause = clauses[ci]
                    # Ensure false_lit is at position 1.
                    if clause[0] == false_lit:
                        clause[0], clause[1] = clause[1], clause[0]
                    first = clause[0]
                    fv = values[var_of(first)]
                    if fv != _UNASSIGNED and fv == (1 if (first & 1) == 0 else 0):
                        i += 1
                        continue  # clause already satisfied via watch 0
                    # Look for a new watch.
                    found = False
                    for k in range(2, len(clause)):
                        other = clause[k]
                        ov = values[var_of(other)]
                        if ov == _UNASSIGNED or ov == (
                            1 if (other & 1) == 0 else 0
                        ):
                            clause[1], clause[k] = clause[k], clause[1]
                            watches[other].append(ci)
                            watching[i] = watching[-1]
                            watching.pop()
                            found = True
                            break
                    if found:
                        continue
                    # No new watch: clause is unit or conflicting on first.
                    if fv == _UNASSIGNED:
                        stats.propagations += 1
                        if not assign(first):  # pragma: no cover - guarded
                            return False
                        i += 1
                    else:
                        stats.conflicts += 1
                        return False
                continue
            return True

        def backtrack_to(level: int) -> None:
            target = trail_lim[level]
            while len(trail) > target:
                lit = trail.pop()
                values[var_of(lit)] = _UNASSIGNED
            del trail_lim[level:]

        # Initial unit clauses.
        for lit in units:
            if not assign(lit):
                return SatStatus.UNSAT, values
        if not propagate(0):
            return SatStatus.UNSAT, values

        static_order = self._decision_order(compiled)

        def pick_variable() -> int:
            if self.dynamic:
                best, best_score = -1, -1
                for var in range(num_vars):
                    if values[var] == _UNASSIGNED:
                        score = occurrences[2 * var] + occurrences[2 * var + 1]
                        if score > best_score:
                            best, best_score = var, score
                return best
            for var in static_order:
                if values[var] == _UNASSIGNED:
                    return var
            return -1

        while True:
            var = pick_variable()
            if var == -1:
                return SatStatus.SAT, values
            stats.decisions += 1
            stats.nodes += 1
            if (
                self.max_decisions is not None
                and stats.decisions > self.max_decisions
            ):
                return SatStatus.UNKNOWN, values

            trail_lim.append(len(trail))
            decision_stack.append((2 * var, False))  # try positive first
            qstart = len(trail)
            assign(2 * var)

            while not propagate(qstart):
                # Conflict: flip the most recent untried decision.
                while decision_stack and decision_stack[-1][1]:
                    backtrack_to(len(decision_stack) - 1)
                    decision_stack.pop()
                if not decision_stack:
                    return SatStatus.UNSAT, values
                lit, _ = decision_stack[-1]
                backtrack_to(len(decision_stack) - 1)
                decision_stack.pop()
                trail_lim.append(len(trail))
                decision_stack.append((negate(lit), True))
                stats.nodes += 1
                qstart = len(trail)
                assign(negate(lit))


def solve_dpll(
    formula: CnfFormula,
    order: Optional[Sequence[str]] = None,
    dynamic: bool = False,
    max_decisions: Optional[int] = None,
) -> SatResult:
    """Convenience wrapper around :class:`DpllSolver`."""
    solver = DpllSolver(order=order, dynamic=dynamic, max_decisions=max_decisions)
    return solver.solve(formula)
