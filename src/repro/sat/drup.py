"""DRUP proof logging and reverse-unit-propagation proof checking.

An UNSAT answer from a CDCL solver is only as trustworthy as the solver
is bug-free — and :class:`~repro.sat.cdcl.CdclCore` carries exactly the
machinery (learned-clause deletion, in-place watch permutation, variable
recycling) where silent wrong answers hide.  DRUP (*Delete Reverse Unit
Propagation*, Heule et al.) makes the answer checkable: the solver logs
every learned clause as an *addition* and every clause it discards as a
*deletion*; an independent checker replays the log, verifying that each
added clause is RUP — assuming its negation and unit-propagating over
the current clause database yields a conflict — and that the log ends in
a derived contradiction.

Two classes live here:

* :class:`DrupLog` — the proof recorder the solver writes into.  It
  stores integer literals in the solver's internal encoding
  (``2*var + polarity`` with LSB 1 = negated) and can render the
  standard DIMACS DRUP text form for external tools.
* :func:`check_drup` — a standalone forward checker with two-watched
  literal propagation and trail rollback, independent of the solver's
  own propagation code (sharing it would let one bug forge both the
  proof and its check).

Checker semantics follow ``drat-trim`` conventions where DRUP is
deliberately permissive:

* deleting a clause that is not in the database (e.g. the solver stored
  a root-simplified copy of a formula clause) is *ignored*, not an
  error — keeping extra clauses only makes RUP checks easier to pass,
  never lets a wrong refutation through;
* deletions of unit clauses never un-assign the root trail (the
  standard forward-checking simplification).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field
from typing import Optional

from repro.sat.compile import negate

_UNASSIGNED = -1

#: Step tags in a :class:`DrupLog`.
ADD = "a"
DELETE = "d"


class DrupLog:
    """An append-only DRUP proof: addition and deletion steps.

    Literals use the solver's internal integer encoding.  The log copies
    every clause it is handed (the solver permutes its clause lists in
    place during watch maintenance, so sharing storage would corrupt the
    proof retroactively).
    """

    __slots__ = ("steps",)

    def __init__(self) -> None:
        self.steps: list[tuple[str, tuple[int, ...]]] = []

    def __len__(self) -> int:
        return len(self.steps)

    def add(self, lits: Iterable[int]) -> None:
        """Record a clause addition (a learned / derived clause)."""
        self.steps.append((ADD, tuple(lits)))

    def add_empty(self) -> None:
        """Record derivation of the empty clause (the refutation)."""
        self.steps.append((ADD, ()))

    def delete(self, lits: Iterable[int]) -> None:
        """Record a clause deletion."""
        self.steps.append((DELETE, tuple(lits)))

    @property
    def num_additions(self) -> int:
        return sum(1 for tag, _ in self.steps if tag == ADD)

    @property
    def num_deletions(self) -> int:
        return sum(1 for tag, _ in self.steps if tag == DELETE)

    @property
    def has_empty_clause(self) -> bool:
        """True when the log claims a full refutation."""
        return any(tag == ADD and not lits for tag, lits in self.steps)

    def to_dimacs(self) -> str:
        """Standard DRUP text form (1-based signed literals, ``d`` lines)."""
        lines = []
        for tag, lits in self.steps:
            signed = " ".join(
                str(-(lit >> 1) - 1 if lit & 1 else (lit >> 1) + 1)
                for lit in lits
            )
            prefix = "d " if tag == DELETE else ""
            lines.append(f"{prefix}{signed} 0".strip())
        return "\n".join(lines) + ("\n" if lines else "")


@dataclass
class DrupCheckResult:
    """Outcome of a proof check, with enough detail to debug a failure."""

    ok: bool
    reason: str = ""
    failed_step: int = -1  # index into the proof's steps, -1 if n/a
    additions_checked: int = 0
    deletions_applied: int = 0
    deletions_ignored: int = 0

    def __bool__(self) -> bool:
        return self.ok


class _Checker:
    """Two-watched-literal RUP checker over integer clauses.

    The clause database starts as the formula; proof additions are RUP-
    checked against the current database then attached, deletions detach.
    Root-level assignments (from unit clauses and their propagation) are
    permanent; RUP-check assumptions are rolled back via the trail.
    """

    def __init__(self, track_deletions: bool = True) -> None:
        self.values: list[int] = []
        self.watches: list[list[list[int]]] = []
        self.trail: list[int] = []
        self.qhead = 0
        self.contradiction = False
        #: Whether attach maintains the deletion-lookup index.  A proof
        #: with no deletion steps never calls detach, and building the
        #: sorted-tuple keys is a large share of attach time on big
        #: formulas — so the caller disables tracking for such proofs.
        self.track_deletions = track_deletions
        #: sorted-literal key -> attached clause objects (deletion lookup)
        self.index: dict[tuple[int, ...], list[list[int]]] = {}

    # -- assignment machinery -----------------------------------------
    def _ensure(self, var: int) -> None:
        while var >= len(self.values):
            self.values.append(_UNASSIGNED)
            self.watches.append([])
            self.watches.append([])

    def _lit_value(self, lit: int) -> int:
        value = self.values[lit >> 1]
        if value == _UNASSIGNED:
            return _UNASSIGNED
        return value ^ (lit & 1)

    def _assign(self, lit: int) -> bool:
        """Make ``lit`` true; False if it is already false."""
        var = lit >> 1
        value = 1 ^ (lit & 1)
        if self.values[var] != _UNASSIGNED:
            return self.values[var] == value
        self.values[var] = value
        self.trail.append(lit)
        return True

    def _propagate(self) -> bool:
        """Unit propagation from ``qhead``; False on conflict."""
        values = self.values
        watches = self.watches
        trail = self.trail
        while self.qhead < len(trail):
            lit = trail[self.qhead]
            self.qhead += 1
            false_lit = lit ^ 1
            watching = watches[false_lit]
            i = 0
            while i < len(watching):
                cl = watching[i]
                if cl[0] == false_lit:
                    cl[0], cl[1] = cl[1], cl[0]
                first = cl[0]
                fv = values[first >> 1]
                if fv != _UNASSIGNED and fv ^ (first & 1) == 1:
                    i += 1
                    continue
                found = False
                for k in range(2, len(cl)):
                    other = cl[k]
                    ov = values[other >> 1]
                    if ov == _UNASSIGNED or ov ^ (other & 1) != 0:
                        cl[1], cl[k] = cl[k], cl[1]
                        watches[cl[1]].append(cl)
                        watching[i] = watching[-1]
                        watching.pop()
                        found = True
                        break
                if found:
                    continue
                if fv != _UNASSIGNED:
                    return False  # conflict
                self._assign(first)
                i += 1
        return True

    def _rollback(self, mark: int) -> None:
        while len(self.trail) > mark:
            lit = self.trail.pop()
            self.values[lit >> 1] = _UNASSIGNED
        self.qhead = mark

    # -- clause database ----------------------------------------------
    def attach(self, lits: Sequence[int]) -> None:
        """Add a clause to the live database under the root assignment.

        Falsified clauses and conflicting units set ``contradiction``;
        unit (or effectively-unit) clauses extend the permanent root
        trail and are propagated to fixpoint.
        """
        clause = list(lits)
        for lit in clause:
            self._ensure(lit >> 1)
        if not clause:
            self.contradiction = True
            return
        if len(clause) >= 2 and self.track_deletions:
            self.index.setdefault(tuple(sorted(clause)), []).append(clause)
        if self.contradiction:
            return
        # Move up to two non-false literals to the watch positions.
        free = 0
        for k in range(len(clause)):
            if self._lit_value(clause[k]) != 0:
                clause[free], clause[k] = clause[k], clause[free]
                free += 1
                if free == 2:
                    break
        if free == 0:
            self.contradiction = True  # falsified under root units
            return
        if len(clause) >= 2:
            self.watches[clause[0]].append(clause)
            self.watches[clause[1]].append(clause)
        if free == 1 and self._lit_value(clause[0]) == _UNASSIGNED:
            # Effectively unit at root: extend the permanent trail.
            if not self._assign(clause[0]) or not self._propagate():
                self.contradiction = True

    def detach(self, lits: Sequence[int]) -> bool:
        """Remove one instance of the clause; False when not present."""
        clause = list(lits)
        if len(clause) < 2:
            return False  # unit deletions are ignored (see module doc)
        stored = self.index.get(tuple(sorted(clause)))
        if not stored:
            return False
        target = stored.pop()
        for lit in (target[0], target[1]):
            watching = self.watches[lit]
            for i, other in enumerate(watching):
                if other is target:
                    watching[i] = watching[-1]
                    watching.pop()
                    break
        return True

    def rup(self, lits: Sequence[int]) -> bool:
        """True when the clause is RUP w.r.t. the current database."""
        if self.contradiction:
            return True
        for lit in lits:
            self._ensure(lit >> 1)
        mark = len(self.trail)
        ok = False
        for lit in lits:
            value = self._lit_value(lit)
            if value == 1:
                ok = True  # a root-true literal: negation conflicts at once
                break
            if value == 0:
                continue
            self._assign(negate(lit))
        if not ok:
            ok = not self._propagate()
        self._rollback(mark)
        return ok


def check_drup(
    clauses: Iterable[Sequence[int]],
    proof: "DrupLog | Iterable[tuple[str, Sequence[int]]]",
    require_refutation: bool = True,
) -> DrupCheckResult:
    """Check a DRUP ``proof`` against the formula ``clauses``.

    Args:
        clauses: the original formula, integer-literal clause lists
            (the compiled form the solver saw — e.g.
            ``compile_formula(f).clauses``).
        proof: a :class:`DrupLog` or an iterable of ``(tag, lits)``
            steps.
        require_refutation: when True (the default) the check fails
            unless a contradiction is actually derived — i.e. the proof
            certifies UNSAT.  Pass False to validate a partial log (every
            addition RUP, deletions consistent) without demanding the
            empty clause.

    Returns:
        A :class:`DrupCheckResult`; truthy iff the proof is valid.
    """
    steps = proof.steps if isinstance(proof, DrupLog) else list(proof)
    has_deletions = any(tag == DELETE for tag, _ in steps)
    checker = _Checker(track_deletions=has_deletions)
    result = DrupCheckResult(ok=True)

    for clause in clauses:
        checker.attach(clause)
        if checker.contradiction:
            # The formula refutes itself by unit propagation; any proof
            # (even empty) certifies it.
            return result

    for step_index, (tag, lits) in enumerate(steps):
        if tag == DELETE:
            if checker.detach(lits):
                result.deletions_applied += 1
            else:
                result.deletions_ignored += 1
            continue
        if tag != ADD:
            return DrupCheckResult(
                ok=False,
                reason=f"unknown proof step tag {tag!r}",
                failed_step=step_index,
            )
        if not checker.rup(lits):
            return DrupCheckResult(
                ok=False,
                reason="clause is not RUP at this point in the proof",
                failed_step=step_index,
                additions_checked=result.additions_checked,
                deletions_applied=result.deletions_applied,
                deletions_ignored=result.deletions_ignored,
            )
        result.additions_checked += 1
        checker.attach(lits)
        if checker.contradiction:
            return result  # refutation derived: remaining steps moot

    if require_refutation and not checker.contradiction:
        result.ok = False
        result.reason = "proof ends without deriving a contradiction"
    return result
