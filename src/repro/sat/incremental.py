"""Incremental assumption-based SAT solving with activation literals.

The TEGUS observation (and the GRASP lineage the paper cites): ATPG
solves thousands of SAT instances that share almost all of their
clauses, so solving them as one incremental sequence — learned clauses,
VSIDS activities, and saved phases carried over — beats thousands of
cold starts.  :class:`IncrementalSatSolver` packages the MiniSat-style
recipe over the persistent :class:`~repro.sat.cdcl.CdclCore`:

* a permanent *base* formula is loaded once (for ATPG: the good-circuit
  CNF of an output cone);
* each per-instance delta (a fault's miter clauses) is pushed as a
  *clause group* guarded by a fresh activation variable ``t``: every
  clause ``C`` is stored as ``(¬t ∨ C)``, so the group is inert until
  ``t`` is assumed at solve time;
* solving under assumption ``t`` activates exactly that group.  Any
  clause learned from the group's clauses necessarily contains ``¬t``
  (``t`` never occurs positively, so resolution cannot eliminate it);
* retiring the group adds the root unit ``¬t``, which permanently
  satisfies the group's clauses *and* every learned clause derived from
  them.  They become inert immediately and are physically swept by the
  periodic :meth:`CdclCore.collect` garbage collection, which also
  recycles the group's variable indices.

Clause groups use named clauses (:data:`repro.sat.cnf.Clause`); names
are interned on first sight by :class:`~repro.sat.compile.IncrementalCompiler`
and released again when their group retires.
"""

from __future__ import annotations

import time
from collections.abc import Iterable, Mapping
from typing import Optional

from repro.sat.cdcl import CdclCore
from repro.sat.cnf import Clause, Literal
from repro.sat.compile import IncrementalCompiler, lit_of, negate
from repro.sat.result import SatResult, SatStatus


class ClauseGroup:
    """Handle for a pushed clause group (one activation literal).

    Attributes:
        activation_var: the guard variable ``t``.
        assumption: the literal to assume to activate the group.
        names: variable names first interned by this group (released on
            retirement).
        num_clauses: clauses actually attached (tautologies dropped).
    """

    __slots__ = ("activation_var", "assumption", "names", "num_clauses", "retired")

    def __init__(
        self, activation_var: int, names: list[str], num_clauses: int
    ) -> None:
        self.activation_var = activation_var
        self.assumption = lit_of(activation_var, True)
        self.names = names
        self.num_clauses = num_clauses
        self.retired = False


class IncrementalSatSolver:
    """Persistent named-CNF solver: base formula + activatable deltas.

    Args:
        restart_interval / decay: forwarded to :class:`CdclCore`.
        gc_interval: retired groups between :meth:`CdclCore.collect`
            sweeps (the activation-literal garbage collection cadence).
    """

    def __init__(
        self,
        restart_interval: int = 128,
        decay: float = 0.95,
        gc_interval: int = 32,
    ) -> None:
        self.core = CdclCore(restart_interval=restart_interval, decay=decay)
        self.compiler = IncrementalCompiler(allocate=self.core.new_var)
        self.gc_interval = gc_interval
        self.num_base_clauses = 0
        self._retired_since_gc = 0
        #: Single long-lived injected-structural-clause group (cross-cone
        #: shared clauses): every injection batch appends under the same
        #: activation literal, so each solve pays exactly one extra
        #: assumption regardless of how many batches arrived.
        self._shared_group: Optional[ClauseGroup] = None
        self.num_shared_clauses = 0

    # ------------------------------------------------------------------
    @property
    def num_vars(self) -> int:
        """Live named variables (excludes activation literals)."""
        return len(self.compiler)

    def add_base(self, clauses: Iterable[Clause]) -> None:
        """Append permanent clauses (never retired)."""
        core = self.core
        core.backjump(0)
        compiler = self.compiler
        for named in clauses:
            ints = compiler.clause_ints(named)
            if ints is None:
                continue
            core.add_clause(ints)
            self.num_base_clauses += 1
        core.propagate_root()

    def push_group(self, clauses: Iterable[Clause]) -> ClauseGroup:
        """Append a clause group guarded by a fresh activation literal."""
        core = self.core
        core.backjump(0)
        activation = core.new_var()
        guard = lit_of(activation, False)
        new_names: list[str] = []
        count = 0
        for named in clauses:
            ints = self._compile_clause(named, new_names)
            if ints is None:
                continue
            core.add_clause([guard] + ints)
            count += 1
        return ClauseGroup(activation, new_names, count)

    def _compile_clause(
        self, named: Clause, new_names: list[str]
    ) -> Optional[list[int]]:
        """Like ``IncrementalCompiler.clause_ints`` but records which
        names this group interned for the first time."""
        compiler = self.compiler
        seen: set[int] = set()
        for literal in named:
            index = compiler.lookup(literal.variable)
            if index is None:
                new_names.append(literal.variable)
                index = compiler.var(literal.variable)
            lit = lit_of(index, literal.positive)
            if negate(lit) in seen:
                return None
            seen.add(lit)
        return sorted(seen)

    # ------------------------------------------------------------------
    def solve(
        self,
        group: Optional[ClauseGroup] = None,
        max_conflicts: Optional[int] = None,
        deadline_at: Optional[float] = None,
        mem_budget_mb: Optional[float] = None,
        model_names: Optional[Iterable[str]] = None,
    ) -> SatResult:
        """Solve base ∧ (group's clauses, if given) under the group's
        activation assumption.  Learned clauses, activities, and saved
        phases persist into the next call.  ``deadline_at`` is an
        absolute ``time.monotonic()`` cutoff and ``mem_budget_mb`` a
        clause-database budget, both forwarded to the core's periodic
        in-search checks.  ``model_names`` restricts the SAT model to
        those variables (callers that only read e.g. circuit inputs
        skip materialising the full named assignment)."""
        start = time.perf_counter()
        shared = self._shared_group
        assumptions: tuple[int, ...] = (
            (shared.assumption,)
            if shared is not None and not shared.retired
            else ()
        )
        if group is not None:
            assumptions += (group.assumption,)
        status, stats = self.core.solve(
            assumptions=assumptions,
            max_conflicts=max_conflicts,
            deadline_at=deadline_at,
            mem_budget_mb=mem_budget_mb,
        )
        stats.time_seconds = time.perf_counter() - start
        if status is SatStatus.SAT:
            values = self.core.values
            if model_names is None:
                pairs = self.compiler.items()
            else:
                lookup = self.compiler.lookup
                pairs = (
                    (name, index)
                    for name in model_names
                    if (index := lookup(name)) is not None
                )
            model = {
                name: values[index]
                for name, index in pairs
                if values[index] in (0, 1)
            }
            return SatResult(SatStatus.SAT, assignment=model, stats=stats)
        return SatResult(status, stats=stats)

    def retire(self, group: ClauseGroup) -> None:
        """Permanently deactivate ``group`` and recycle its variables.

        The root unit ``¬t`` satisfies the group's clauses and every
        learned clause derived from them (all contain ``¬t``), so the
        group's variable indices can be recycled immediately: any stale
        clause still mentioning them is root-satisfied and can never
        propagate or conflict again.  The activation variable itself
        stays root-assigned until the next :meth:`CdclCore.collect`
        sweep physically removes the dead clauses.
        """
        if group.retired:
            return
        group.retired = True
        core = self.core
        core.backjump(0)
        core.add_clause([negate(group.assumption)])
        core.propagate_root()
        for index in self.compiler.release(group.names):
            core.release_var(index)
        core.release_var(group.activation_var, defer=True)
        self._retired_since_gc += 1
        if self._retired_since_gc >= self.gc_interval:
            self._retired_since_gc = 0
            core.collect()

    # ------------------------------------------------------------------
    # Cross-cone structural clause sharing
    # ------------------------------------------------------------------
    def enable_structural(self, lbd_max: int) -> None:
        """Start tagging base-only learned clauses with LBD <=
        ``lbd_max`` for promotion (see :meth:`drain_structural`).

        Call once, after the base formula is complete: the current
        variable count is frozen as the base-variable ceiling that
        separates base variables (allocated first, never released) from
        transient ones (activation guards, per-fault deltas, recycled
        indices).
        """
        core = self.core
        core.structural_lbd_max = lbd_max
        core.structural_var_ceiling = len(core.values)

    def push_shared(self, clauses: Iterable[Iterable[Literal]]) -> ClauseGroup:
        """Inject externally learned base-entailed clauses.

        The clauses arrive as named literal tuples (from a sibling
        cone's :meth:`drain_structural`) and are attached under this
        solver's single persistent shared activation literal, assumed on
        every subsequent :meth:`solve` — so they behave like ordinary
        learned clauses while remaining collectively retirable, at a
        fixed cost of one extra assumption per solve however many
        injection batches arrive.  Any clause learned *from* them
        contains the shared guard (a variable above the structural
        ceiling) and is never re-promoted, so sharing cannot go
        circular.  Soundness: an injected clause entailed by a subset
        of this solver's base cannot flip a verdict; its guard can only
        fail if the base itself is unsatisfiable.
        """
        core = self.core
        core.backjump(0)
        group = self._shared_group
        if group is None:
            group = ClauseGroup(core.new_var(), [], 0)
            self._shared_group = group
        guard = lit_of(group.activation_var, False)
        count = 0
        for named in clauses:
            ints = self._compile_clause(frozenset(named), group.names)
            if ints is None:
                continue
            core.add_clause([guard] + ints)
            count += 1
        group.num_clauses += count
        self.num_shared_clauses += count
        return group

    def drain_structural(self) -> list[tuple[Literal, ...]]:
        """Harvest newly learned structural clauses as named clauses.

        A clause is *structural* when it contains no activation
        variable: assigning every activation literal false satisfies
        all guarded clauses, so a guard-free consequence of the full
        database is a consequence of the permanent base alone — it is a
        fact about the good-circuit cone, valid for every fault, and
        safe to inject into any solver whose base is a superset of this
        one's.  Clauses are returned in learning order, literals
        canonically sorted; the tag queues are cleared.
        """
        core = self.core
        if not core.structural_fresh and not core.structural_fresh_units:
            return []
        name_of = self.compiler.name_of
        out: list[tuple[Literal, ...]] = []
        if core.structural_fresh:
            live = set(core.learned)
            for ref in core.structural_fresh:
                if ref not in live:
                    continue  # reduced away before the drain
                named = self._name_ints(core.read_clause(ref), name_of)
                if named is not None:
                    out.append(named)
            core.structural_fresh.clear()
        if core.structural_fresh_units:
            for lit in core.structural_fresh_units:
                named = self._name_ints([lit], name_of)
                if named is not None:
                    out.append(named)
            core.structural_fresh_units.clear()
        return out

    @staticmethod
    def _name_ints(ints, name_of) -> Optional[tuple[Literal, ...]]:
        """Integer literals -> sorted named clause; None if any variable
        has no live name (defensive: tagging already excludes guards)."""
        lits = []
        for lit in ints:
            name = name_of(lit >> 1)
            if name is None:
                return None
            lits.append(Literal(name, not (lit & 1)))
        lits.sort()
        return tuple(lits)

    # ------------------------------------------------------------------
    def seed_phases(self, hints: Mapping[str, int]) -> None:
        """Seed saved phases from named value hints (e.g. the net values
        of the last successful test's simulation)."""
        core = self.core
        lookup = self.compiler.lookup
        for name, value in hints.items():
            index = lookup(name)
            if index is not None:
                core.saved_phase[index] = value & 1
