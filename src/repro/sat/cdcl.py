"""Conflict-driven clause learning (CDCL) SAT solver.

A reference solver in the GRASP lineage the paper cites ([23], Silva &
Sakallah): unit propagation with watched literals, first-UIP conflict
analysis, non-chronological backjumping, VSIDS-style activities and
geometric restarts.  The paper models conflict learning abstractly via
the sub-formula cache of Algorithm 1; this solver is the concrete modern
counterpart and serves as a cross-check oracle and an ablation point.
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from typing import Optional

from repro.sat.cnf import CnfFormula
from repro.sat.compile import compile_formula, negate, var_of
from repro.sat.result import SatResult, SatStatus, SolverStats

_UNASSIGNED = -1


class CdclSolver:
    """CDCL solver over a compiled CNF.

    Args:
        max_conflicts: conflict budget; exceeded search returns ``UNKNOWN``.
        restart_interval: conflicts before the first restart (grows 1.5x).
        decay: VSIDS activity decay factor per conflict.
        phase_hint: optional map from variable name to preferred phase.
    """

    def __init__(
        self,
        max_conflicts: Optional[int] = None,
        restart_interval: int = 128,
        decay: float = 0.95,
        phase_hint: Optional[dict[str, int]] = None,
        order: Optional[Sequence[str]] = None,
    ) -> None:
        self.max_conflicts = max_conflicts
        self.restart_interval = restart_interval
        self.decay = decay
        self.phase_hint = phase_hint or {}
        self._order = list(order) if order is not None else None

    def solve(self, formula: CnfFormula) -> SatResult:
        """Decide satisfiability of ``formula``."""
        start = time.perf_counter()
        stats = SolverStats()
        compiled = compile_formula(formula)
        num_vars = compiled.num_vars
        clauses: list[list[int]] = [list(c) for c in compiled.clauses]

        if any(not c for c in clauses):
            stats.time_seconds = time.perf_counter() - start
            return SatResult(SatStatus.UNSAT, stats=stats)
        if num_vars == 0:
            stats.time_seconds = time.perf_counter() - start
            return SatResult(SatStatus.SAT, assignment={}, stats=stats)

        values = [_UNASSIGNED] * num_vars
        level = [0] * num_vars
        reason: list[Optional[int]] = [None] * num_vars  # clause index
        activity = [0.0] * num_vars
        saved_phase = [0] * num_vars
        for name, phase in self.phase_hint.items():
            idx = compiled.index_of.get(name)
            if idx is not None:
                saved_phase[idx] = 1 if phase else 0
        if self._order is not None:
            # Seed activities so the static order breaks ties.
            rank = len(self._order)
            for position, name in enumerate(self._order):
                idx = compiled.index_of.get(name)
                if idx is not None:
                    activity[idx] = float(rank - position) * 1e-6

        watches: list[list[int]] = [[] for _ in range(2 * num_vars)]
        initial_units: list[int] = []
        for ci, cl in enumerate(clauses):
            if len(cl) == 1:
                initial_units.append(cl[0])
            else:
                watches[cl[0]].append(ci)
                watches[cl[1]].append(ci)

        trail: list[int] = []
        trail_lim: list[int] = []
        qhead = 0

        def current_level() -> int:
            return len(trail_lim)

        def lit_value(lit: int) -> int:
            v = values[var_of(lit)]
            if v == _UNASSIGNED:
                return _UNASSIGNED
            return v ^ (lit & 1)

        def enqueue(lit: int, reason_clause: Optional[int]) -> bool:
            var = var_of(lit)
            value = 1 ^ (lit & 1)
            if values[var] != _UNASSIGNED:
                return values[var] == value
            values[var] = value
            level[var] = current_level()
            reason[var] = reason_clause
            trail.append(lit)
            return True

        def propagate() -> Optional[int]:
            """Returns conflicting clause index, or None."""
            nonlocal qhead
            while qhead < len(trail):
                lit = trail[qhead]
                qhead += 1
                false_lit = negate(lit)
                watching = watches[false_lit]
                i = 0
                while i < len(watching):
                    ci = watching[i]
                    cl = clauses[ci]
                    if cl[0] == false_lit:
                        cl[0], cl[1] = cl[1], cl[0]
                    first = cl[0]
                    if lit_value(first) == 1:
                        i += 1
                        continue
                    found = False
                    for k in range(2, len(cl)):
                        if lit_value(cl[k]) != 0:
                            cl[1], cl[k] = cl[k], cl[1]
                            watches[cl[1]].append(ci)
                            watching[i] = watching[-1]
                            watching.pop()
                            found = True
                            break
                    if found:
                        continue
                    if lit_value(first) == 0:
                        return ci
                    stats.propagations += 1
                    enqueue(first, ci)
                    i += 1
            return None

        def analyze(conflict_ci: int) -> tuple[list[int], int]:
            """First-UIP conflict analysis (MiniSat structure).

            Relies on the invariant that a reason clause stores its implied
            literal at position 0.

            Returns:
                (learned clause with asserting literal first, backjump level).
            """
            learned: list[int] = []
            seen = [False] * num_vars
            path_count = 0
            p: Optional[int] = None
            ci: Optional[int] = conflict_ci
            index = len(trail) - 1
            while True:
                assert ci is not None
                cl = clauses[ci]
                # Skip position 0 when it is the literal we resolved on.
                for q in cl[0 if p is None else 1 :]:
                    var = q >> 1
                    if not seen[var] and level[var] > 0:
                        seen[var] = True
                        activity[var] += 1.0
                        if level[var] >= current_level():
                            path_count += 1
                        else:
                            learned.append(q)
                while not seen[trail[index] >> 1]:
                    index -= 1
                p = trail[index]
                var = p >> 1
                seen[var] = False
                path_count -= 1
                index -= 1
                if path_count <= 0:
                    break
                ci = reason[var]
            learned.insert(0, negate(p))
            if len(learned) == 1:
                return learned, 0
            back_level = max(level[q >> 1] for q in learned[1:])
            return learned, back_level

        def backjump(target_level: int) -> None:
            nonlocal qhead
            if current_level() <= target_level:
                return
            limit = trail_lim[target_level]
            while len(trail) > limit:
                lit = trail.pop()
                var = var_of(lit)
                saved_phase[var] = values[var]
                values[var] = _UNASSIGNED
                reason[var] = None
            del trail_lim[target_level:]
            qhead = len(trail)

        def pick_branch() -> int:
            best, best_act = -1, -1.0
            for var in range(num_vars):
                if values[var] == _UNASSIGNED and activity[var] > best_act:
                    best, best_act = var, activity[var]
            return best

        for lit in initial_units:
            if not enqueue(lit, None):
                stats.time_seconds = time.perf_counter() - start
                return SatResult(SatStatus.UNSAT, stats=stats)
        if propagate() is not None:
            stats.time_seconds = time.perf_counter() - start
            return SatResult(SatStatus.UNSAT, stats=stats)

        restart_limit = self.restart_interval
        conflicts_since_restart = 0

        while True:
            conflict = propagate()
            if conflict is not None:
                stats.conflicts += 1
                conflicts_since_restart += 1
                if (
                    self.max_conflicts is not None
                    and stats.conflicts > self.max_conflicts
                ):
                    stats.time_seconds = time.perf_counter() - start
                    return SatResult(SatStatus.UNKNOWN, stats=stats)
                if current_level() == 0:
                    stats.time_seconds = time.perf_counter() - start
                    return SatResult(SatStatus.UNSAT, stats=stats)
                learned, back_level = analyze(conflict)
                backjump(back_level)
                ci = len(clauses)
                if len(learned) >= 2:
                    # Watch invariant: position 1 must hold a literal from
                    # the backjump level, else future backtracks can leave
                    # the clause incorrectly watched.
                    best = max(
                        range(1, len(learned)), key=lambda j: level[learned[j] >> 1]
                    )
                    learned[1], learned[best] = learned[best], learned[1]
                clauses.append(learned)
                stats.learned_clauses += 1
                if len(learned) >= 2:
                    watches[learned[0]].append(ci)
                    watches[learned[1]].append(ci)
                    enqueue(learned[0], ci)
                else:
                    enqueue(learned[0], None)
                for var in range(num_vars):
                    activity[var] *= self.decay
                continue

            if conflicts_since_restart >= restart_limit:
                conflicts_since_restart = 0
                restart_limit = int(restart_limit * 1.5)
                stats.restarts += 1
                backjump(0)
                continue

            var = pick_branch()
            if var == -1:
                stats.time_seconds = time.perf_counter() - start
                model = compiled.decode_assignment(values)
                return SatResult(SatStatus.SAT, assignment=model, stats=stats)
            stats.decisions += 1
            stats.nodes += 1
            trail_lim.append(len(trail))
            lit = 2 * var + (0 if saved_phase[var] == 1 else 1)
            enqueue(lit, None)


def solve_cdcl(formula: CnfFormula, **kwargs) -> SatResult:
    """Convenience wrapper around :class:`CdclSolver`."""
    return CdclSolver(**kwargs).solve(formula)
