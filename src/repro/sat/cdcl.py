"""Conflict-driven clause learning (CDCL) SAT solver.

A reference solver in the GRASP lineage the paper cites ([23], Silva &
Sakallah): unit propagation with watched literals, first-UIP conflict
analysis, non-chronological backjumping, VSIDS-style activities and
geometric restarts.  The paper models conflict learning abstractly via
the sub-formula cache of Algorithm 1; this solver is the concrete modern
counterpart and serves as a cross-check oracle and an ablation point.

The solver is split in two layers:

* :class:`CdclCore` — a *persistent* integer-level engine.  Variables
  and clauses are appended over its lifetime, ``solve(assumptions)``
  can be called any number of times, and learned clauses, VSIDS
  activities, and saved phases survive between calls.  This is the
  substrate of the incremental ATPG path
  (:mod:`repro.sat.incremental`), which solves a whole fault list as
  one incremental sequence instead of thousands of cold starts.
* :class:`CdclSolver` — the formula-level wrapper with the classic
  one-shot ``solve(formula)`` API.  It compiles the formula (cached,
  so repeated solves on the same formula skip recompilation) and runs
  a fresh core per call.

Storage layout (the flat-array kernel)
--------------------------------------

All per-variable and per-literal state lives in flat parallel *lists*
of small ints, indexed by variable or literal — no objects, no dicts,
no attribute loads on the hot paths.  Plain lists, not ``array``-typed
arenas, and deliberately so: on CPython, ``array('q')``/``array('b')``
element reads construct a fresh ``int`` object for every value outside
the small-int cache (clause refs and literals routinely exceed 256),
and measured propagation throughput is *lower* than with lists, whose
elements are already boxed once and shared.  Lists also grow by
doubling inside the allocator, so bulk extension via
:meth:`CdclCore.new_vars` already avoids per-variable rebuilds; the
arenas' win on a C backend (contiguity, no pointer chase) simply does
not materialise under the CPython object model.

Truth values are stored per *literal* (``lit_truth[lit]``, with
``lit_truth[lit ^ 1]`` kept complementary) so the propagation loop
needs no shift/xor per probe; there is no separate per-variable value
array at all — ``lit_truth[2 * var]`` *is* the variable's value, and
the public :attr:`CdclCore.values` view is derived from it as a
stride-2 slice snapshot on demand.

Clauses of three or more literals live in a single packed integer
arena: a clause reference ``ref`` is an index into ``arena`` where the
clause's literals start, with the clause length at ``arena[ref - 1]``.
Watch lists are flat lists of refs, and the implication graph
(``reason``) is a parallel per-variable list (-1 = decision).

**Binary clauses** (exactly two literals after root simplification) are
kept out of the watch lists entirely.  Each literal owns a flat
successor array ``bin_others[lit]`` — the implication edges
``¬lit → other`` — with the owning clause refs in a parallel
``bin_refs[lit]`` array, and propagation runs a tight pre-pass over the
successors before touching the long-clause watch lists: a binary clause
needs no replacement-watch search, no literal permutation, and its
reason is encoded directly in the ``reason`` array
(``reason[var] = -2 - falsified_lit``) so conflict analysis resolves it
without an arena read.  Splitting the successors from the refs keeps
the pre-pass a bare C-speed iteration (one list read and one truth
probe per edge); the parallel ref is only consulted on the rare
conflict.  Tseitin CNF of AND/OR netlists is roughly two-thirds binary
clauses, which makes this the propagation fast path.  The clauses
themselves still occupy the arena (for proofs, analysis of binary
*conflicts*, and :meth:`CdclCore.read_clause`); only their watch
plumbing is special.

Long-clause watch entries carry a **blocker literal** (MiniSat 2.2
style) in a parallel ``blockers[lit]`` array: the last literal of the
clause observed true.  While the blocker holds, a watch visit is two
list reads and a compare — no arena access, no literal swap.

The kernel is required to stay **bit-identical** to the object-graph
reference implementation (:mod:`repro.sat.cdcl_ref`) — same verdicts,
same propagation/decision/conflict/restart counters, same DRUP proofs —
because both perform the same binary-first propagation and the same
in-place literal permutations in the same order;
``tests/sat/test_kernel_parity.py`` enforces this over the fuzz corpus.

Dead arena space (detached learned clauses, swept groups) is reclaimed
by :meth:`CdclCore.collect`, which compacts the arena while preserving
watch-list and binary-edge order so the search trajectory is
unaffected.

Cross-fault structural learning hooks
-------------------------------------

When ``structural_lbd_max`` is set, the core tags each learned clause
whose variables all lie below ``structural_var_ceiling`` (the variable
count frozen when the base formula was complete) and whose LBD is at or
below the threshold.  Base variables are allocated first and never
released, so they occupy exactly the index prefix ``[0, ceiling)``;
everything at or above the ceiling — activation guards, per-fault delta
variables, recycled indices — is transient.  A tagged clause mentions
only base variables, and since every guarded clause contains a negative
activation literal (a variable above the ceiling), assigning all
transient variables so the guards are false satisfies every non-base
clause: the tagged clause is a consequence of the base formula alone,
sound to share with any solver whose base is a superset
(:mod:`repro.atpg.sharing`).  The incremental layer drains
``structural_fresh`` / ``structural_fresh_units`` after each solve.
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from heapq import heapify, heappop, heappush
from typing import Optional

from repro.sat.cnf import CnfFormula
from repro.sat.compile import compile_formula, negate
from repro.sat.drup import DrupLog
from repro.sat.result import SatResult, SatStatus, SolverStats

_UNASSIGNED = -1

#: Rescale threshold for VSIDS activities (MiniSat's 1e100 scheme).
_ACTIVITY_CAP = 1e100


class CdclCore:
    """Persistent CDCL engine over integer literals (flat-array kernel).

    State (assignment trail, watches, learned-clause database, VSIDS
    activities, saved phases) lives across :meth:`solve` calls.  New
    variables and clauses may be appended between calls; callers that
    append guarded clause groups (activation literals) can release the
    group's variables back for recycling once the group is retired and
    trigger :meth:`collect` to sweep root-satisfied clauses.

    Clauses are stored in a packed integer arena (see the module
    docstring); ``base`` and ``learned`` hold arena refs, and the
    solver may permute a long clause's literal order in place during
    watch maintenance (the literal *set* is never changed; binary
    clauses are never permuted).

    Args:
        restart_interval: conflicts before the first restart (grows 1.5x).
        decay: VSIDS activity decay factor per conflict.
        proof: optional :class:`~repro.sat.drup.DrupLog` to record a
            DRUP proof into — every learned clause, every root-level
            simplification, every clause discarded by
            :meth:`reduce_learned` / :meth:`collect`, and the final
            empty clause on a root refutation.  Proof logging is sound
            for the one-shot lifecycle (build formula, then solve);
            variable recycling re-binds indices, so incremental UNSATs
            certify via assumption-core replay on a fresh proof-logged
            core instead (see :mod:`repro.atpg.certify`).
        learned_db_min: learned-clause count floor before DB reduction
            triggers (lower it in tests to force reduction traffic).
        learned_db_factor: reduction also waits for the learned DB to
            outgrow ``factor * len(base)``.
    """

    def __init__(
        self,
        restart_interval: int = 128,
        decay: float = 0.95,
        proof: Optional["DrupLog"] = None,
        learned_db_min: int = 1000,
        learned_db_factor: float = 2.0,
    ) -> None:
        self.restart_interval = restart_interval
        self.decay = decay
        self.proof = proof
        self.learned_db_min = learned_db_min
        self.learned_db_factor = learned_db_factor

        self.level: list[int] = []
        #: Implication-graph edge per variable: an arena ref (>= 0) for
        #: long-clause reasons, -1 for decisions/none, and ``-2 - lit``
        #: for binary reasons where ``lit`` is the falsified literal of
        #: the binary clause (conflict analysis resolves a binary
        #: reason with just that literal, no arena access).
        self.reason: list[int] = []
        #: VSIDS activity per var, stored *negated* (always <= 0.0):
        #: heap entries are ``(activity[var], var)`` directly, so the
        #: hot requeue paths build no negated copy per push.
        self.activity: list[float] = []
        self.saved_phase: list[int] = []
        self.released = bytearray()
        #: Per-literal truth: lit_truth[lit] is -1 unassigned, else the
        #: truth value (0/1) of the *literal* under the assignment.
        self.lit_truth: list[int] = []
        #: Watch lists (long clauses only): per-literal lists of refs,
        #: with a parallel blocker literal per entry (clause skipped
        #: without arena access while the blocker is true).
        self.watches: list[list[int]] = []
        self.blockers: list[list[int]] = []
        #: Binary implication edges: bin_others[lit] holds the successor
        #: literals (one per binary clause {lit, other}), bin_refs[lit]
        #: the owning clause refs at matching indices.
        self.bin_others: list[list[int]] = []
        self.bin_refs: list[list[int]] = []

        #: Packed clause storage: a clause ref points at its first
        #: literal; arena[ref - 1] holds the clause length.
        self.arena: list[int] = []
        self.base: list[int] = []
        self.learned: list[int] = []
        self._lbd: dict[int, int] = {}  # ref -> literal block distance

        self.trail: list[int] = []
        self.trail_lim: list[int] = []
        self.qhead = 0
        self.root_failed = False

        self._var_inc = 1.0
        #: Lazy-deletion branching heap.  Entries are (activity, var)
        #: (activities are stored negated, so min-heap order is
        #: highest-activity-first)
        #: tuples under C-implemented heapq: pops depend only on the
        #: entry multiset, never on internal layout, so bulk heap
        #: construction (new_vars, backjump batching) cannot change the
        #: search trajectory.
        self._heap: list[tuple[float, int]] = []
        #: cur_in_heap[var] == 1 while the heap holds an entry whose key
        #: matches the var's *current* activity.  ``_pick_branch`` only
        #: accepts current-key entries, so the pick is a pure function
        #: of (values, released, activity) — suppressing duplicate
        #: pushes here cannot change the search trajectory, it only
        #: keeps the lazy-deletion heap free of redundant entries.
        self._cur_in_heap = bytearray()
        #: Count of vars that are unassigned and not released — the
        #: SAT-detection counter.  When it hits zero the model is total
        #: over live vars, and solve() concludes SAT without draining
        #: the lazy-deletion heap's stale entries one pop at a time.
        self._active_unassigned = 0
        self._free: list[int] = []
        #: Vars released while still root-assigned (activation literals);
        #: recycled by :meth:`collect` once their clauses are swept.
        self._zombie: list[int] = []
        self._seen = bytearray()  # reusable conflict-analysis scratch

        #: Structural-learning hooks (cross-fault clause sharing).
        #: Learned clauses whose variables all lie below
        #: ``structural_var_ceiling`` (the base-variable prefix — see the
        #: module docstring) with LBD <= ``structural_lbd_max`` queue
        #: their refs in ``structural_fresh`` (root units in
        #: ``structural_fresh_units`` as bare literals).  Tracking is
        #: off (zero cost) while ``structural_lbd_max`` is None.
        self.structural_lbd_max: Optional[int] = None
        self.structural_var_ceiling = 0
        self.structural_fresh: list[int] = []
        self.structural_fresh_units: list[int] = []

    # ------------------------------------------------------------------
    # Variables
    # ------------------------------------------------------------------
    @property
    def num_vars(self) -> int:
        """Allocated variable count (including recyclable slots)."""
        return len(self.level)

    @property
    def values(self) -> list[int]:
        """Per-variable truth values (-1 unassigned, else 0/1).

        Derived from ``lit_truth`` by a C-level stride-2 slice —
        ``lit_truth[2 * var]`` is exactly the truth value of ``var``, so
        the kernel keeps no separate per-variable value array (one
        fewer store per enqueue and per unwind).  Callers get a fresh
        snapshot list; mutations to it do not touch solver state.
        """
        return self.lit_truth[::2]

    def new_var(self) -> int:
        """Allocate a variable index (recycling released ones)."""
        if self._free:
            var = self._free.pop()
            self.released[var] = 0
            self.activity[var] = 0.0
            self.saved_phase[var] = 0
            self._active_unassigned += 1
            heappush(self._heap, (0.0, var))
            self._cur_in_heap[var] = 1
            return var
        var = len(self.level)
        self.level.append(0)
        self.reason.append(-1)
        self.activity.append(0.0)
        self.saved_phase.append(0)
        self.released.append(0)
        self.lit_truth.append(_UNASSIGNED)
        self.lit_truth.append(_UNASSIGNED)
        for _ in range(2):
            self.watches.append([])
            self.blockers.append([])
            self.bin_others.append([])
            self.bin_refs.append([])
        self._seen.append(0)
        self._cur_in_heap.append(1)
        self._active_unassigned += 1
        heappush(self._heap, (0.0, var))
        return var

    def new_vars(self, count: int) -> None:
        """Bulk-allocate ``count`` fresh variables.

        Semantically identical to ``count`` calls of :meth:`new_var`
        (the branching heap receives the same entry multiset, and heap
        pops depend only on the multiset, so the trajectory is
        unchanged), but the flat state arrays are extended in one shot —
        this is how one-shot solves avoid a per-variable core rebuild.
        """
        if count <= 0:
            return
        if self._free:
            # Recycling in play: take the exact scalar path.
            for _ in range(count):
                self.new_var()
            return
        start = len(self.level)
        self.level.extend([0] * count)
        self.reason.extend([-1] * count)
        self.activity.extend([0.0] * count)
        self.saved_phase.extend([0] * count)
        self.released.extend(bytes(count))
        self.lit_truth.extend([_UNASSIGNED] * (2 * count))
        self._seen.extend(bytes(count))
        self._cur_in_heap.extend(b"\x01" * count)
        self._active_unassigned += count
        watches = self.watches
        blockers = self.blockers
        bin_others = self.bin_others
        bin_refs = self.bin_refs
        for _ in range(2 * count):
            watches.append([])
            blockers.append([])
            bin_others.append([])
            bin_refs.append([])
        entries = [(0.0, var) for var in range(start, start + count)]
        if self._heap:
            for entry in entries:
                heappush(self._heap, entry)
        else:
            # Strictly increasing keys form a valid heap as-is.
            self._heap = entries

    def release_var(self, var: int, defer: bool = False) -> None:
        """Mark ``var`` dead.  Immediately recyclable unless ``defer``
        (for vars still root-assigned, e.g. activation literals, which
        :meth:`collect` recycles after sweeping their clauses)."""
        self.released[var] = 1
        unassigned = self.lit_truth[var << 1] == _UNASSIGNED
        if unassigned:
            self._active_unassigned -= 1
        if defer or not unassigned:
            self._zombie.append(var)
        else:
            self._free.append(var)

    def set_activity(self, var: int, value: float) -> None:
        """Seed a variable's activity (static-order tie-breaking)."""
        self.activity[var] = -value
        self._cur_in_heap[var] = 0  # any in-heap entry is now stale
        if self.lit_truth[var << 1] == _UNASSIGNED and not self.released[var]:
            heappush(self._heap, (-value, var))
            self._cur_in_heap[var] = 1

    # ------------------------------------------------------------------
    # Clauses
    # ------------------------------------------------------------------
    def read_clause(self, ref: int) -> list[int]:
        """The literals of the clause at ``ref`` (a copy)."""
        return self.arena[ref : ref + self.arena[ref - 1]]

    def _alloc(self, lits: list[int]) -> int:
        """Store ``lits`` in the arena and return the clause ref."""
        arena = self.arena
        arena.append(len(lits))
        ref = len(arena)
        arena.extend(lits)
        return ref

    def _attach_binary(self, a: int, b: int, ref: int) -> None:
        """Record the implication edges ``¬a → b`` and ``¬b → a``."""
        self.bin_others[a].append(b)
        self.bin_refs[a].append(ref)
        self.bin_others[b].append(a)
        self.bin_refs[b].append(ref)

    def add_clause(self, lits: list[int]) -> bool:
        """Append a problem clause (root simplified).

        Must be called at decision level 0.  The literals are copied
        into the arena (the caller's list is never retained or
        mutated).  Returns ``False`` when the database became
        root-inconsistent.
        """
        if self.root_failed:
            return False
        lit_truth = self.lit_truth
        kept: Optional[list[int]] = None  # lazily copied on simplification
        for index, lit in enumerate(lits):
            value = lit_truth[lit]
            if value == 1:
                return True  # satisfied at root: never attach
            if value == 0:
                if kept is None:
                    kept = lits[:index]
                continue
            if kept is not None:
                kept.append(lit)
        clause = lits if kept is None else kept
        if self.proof is not None and kept is not None:
            # A root-simplified clause differs from the caller's input
            # (which the checker sees as part of the formula), so it is
            # a derived clause the proof must justify: it is RUP because
            # the dropped literals are root-false by unit propagation.
            if clause:
                self.proof.add(clause)
            else:
                self.proof.add_empty()
        if not clause:
            self.root_failed = True
            return False
        if len(clause) == 1:
            if not self._enqueue(clause[0], -1):
                if self.proof is not None:
                    self.proof.add_empty()
                self.root_failed = True
                return False
            return True
        ref = self._alloc(clause)
        self.base.append(ref)
        if len(clause) == 2:
            self._attach_binary(clause[0], clause[1], ref)
        else:
            self.watches[clause[0]].append(ref)
            self.blockers[clause[0]].append(clause[1])
            self.watches[clause[1]].append(ref)
            self.blockers[clause[1]].append(clause[0])
        return True

    def _detach(self, ref: int) -> None:
        """Remove the clause at ``ref`` from its watch structures."""
        arena = self.arena
        if arena[ref - 1] == 2:
            for lit in (arena[ref], arena[ref + 1]):
                refs = self.bin_refs[lit]
                others = self.bin_others[lit]
                j = refs.index(ref)
                refs[j] = refs[-1]
                refs.pop()
                others[j] = others[-1]
                others.pop()
            return
        for lit in (arena[ref], arena[ref + 1]):
            watching = self.watches[lit]
            blks = self.blockers[lit]
            i = watching.index(ref)
            watching[i] = watching[-1]
            watching.pop()
            blks[i] = blks[-1]
            blks.pop()

    # ------------------------------------------------------------------
    # Assignment machinery
    # ------------------------------------------------------------------
    def current_level(self) -> int:
        return len(self.trail_lim)

    def _lit_value(self, lit: int) -> int:
        return self.lit_truth[lit]

    def _enqueue(self, lit: int, reason_ref: int = -1) -> bool:
        lit_truth = self.lit_truth
        value = lit_truth[lit]
        if value != _UNASSIGNED:
            return value == 1
        var = lit >> 1
        if not self.released[var]:
            self._active_unassigned -= 1
        lit_truth[lit] = 1
        lit_truth[lit ^ 1] = 0
        self.level[var] = len(self.trail_lim)
        self.reason[var] = reason_ref
        self.trail.append(lit)
        return True

    def _propagate(self, stats: SolverStats) -> int:
        """Unit propagation.  Returns a conflicting clause ref, or -1.

        Each dequeued literal first walks its flat binary-implication
        edges (no watch surgery, no replacement search, reason encoded
        as ``-2 - falsified_lit``), then the long-clause watch list.
        """
        arena = self.arena
        lit_truth = self.lit_truth
        watches = self.watches
        blockers = self.blockers
        bin_others = self.bin_others
        trail = self.trail
        level = self.level
        reason = self.reason
        current = len(self.trail_lim)
        qhead = self.qhead
        # Every trail append inside this call is one propagation, so the
        # counter is derived from trail growth instead of maintained in
        # the hot enqueue bodies.
        entry_len = len(trail)
        while qhead < len(trail):
            lit = trail[qhead]
            qhead += 1
            false_lit = lit ^ 1
            # Binary fast path: every edge is ¬false_lit → other.  A
            # bare C-iterator loop: one list read and one truth probe
            # per already-satisfied edge.
            others = bin_others[false_lit]
            for other in others:
                ov = lit_truth[other]
                if ov == 1:
                    continue
                if ov == 0:  # both literals false: conflict
                    self.qhead = qhead
                    delta = len(trail) - entry_len
                    stats.propagations += delta
                    self._active_unassigned -= delta
                    # The conflicting edge is the *first* edge carrying
                    # this successor value: an earlier duplicate would
                    # itself have conflicted (or enqueued the literal)
                    # first.  ``.index`` therefore recovers its ref.
                    return self.bin_refs[false_lit][others.index(other)]
                var = other >> 1
                lit_truth[other] = 1
                lit_truth[other ^ 1] = 0
                level[var] = current
                reason[var] = -2 - false_lit
                trail.append(other)
            # Long clauses (size >= 3) via two watched literals.  Each
            # entry carries a blocker literal; while it holds true the
            # clause is satisfied and skipped without arena access.
            watching = watches[false_lit]
            blks = blockers[false_lit]
            i = 0
            end_w = len(watching)
            while i < end_w:
                if lit_truth[blks[i]] == 1:
                    i += 1
                    continue
                ref = watching[i]
                first = arena[ref]
                if first == false_lit:
                    first = arena[ref + 1]
                    arena[ref] = first
                    arena[ref + 1] = false_lit
                fv = lit_truth[first]
                if fv == 1:
                    blks[i] = first
                    i += 1
                    continue
                size = arena[ref - 1]
                found = False
                for k in range(ref + 2, ref + size):
                    other = arena[k]
                    if lit_truth[other] != 0:
                        arena[ref + 1] = other
                        arena[k] = false_lit
                        watches[other].append(ref)
                        blockers[other].append(first)
                        end_w -= 1
                        watching[i] = watching[end_w]
                        watching.pop()
                        blks[i] = blks[end_w]
                        blks.pop()
                        found = True
                        break
                if found:
                    continue
                if fv == 0:  # first is false: conflict
                    self.qhead = qhead
                    delta = len(trail) - entry_len
                    stats.propagations += delta
                    self._active_unassigned -= delta
                    return ref
                # first is the implied literal: inlined _enqueue.
                var = first >> 1
                lit_truth[first] = 1
                lit_truth[first ^ 1] = 0
                level[var] = current
                reason[var] = ref
                trail.append(first)
                blks[i] = first
                i += 1
        self.qhead = qhead
        delta = len(trail) - entry_len
        stats.propagations += delta
        self._active_unassigned -= delta
        return -1

    def propagate_root(self, stats: Optional[SolverStats] = None) -> bool:
        """Settle root-level units (after appends).  False on conflict."""
        if self.root_failed:
            return False
        if self._propagate(stats or SolverStats()) >= 0:
            if self.proof is not None:
                self.proof.add_empty()
            self.root_failed = True
            return False
        return True

    def backjump(self, target_level: int) -> None:
        """Undo assignments above ``target_level``, saving phases.

        Re-inserted branching candidates are heapified in bulk when the
        batch is large: ``heappop`` always returns the smallest entry of
        the heap's multiset and entries are totally ordered tuples, so
        bulk heapify yields the exact pop sequence per-entry ``heappush``
        would — the trajectory is unchanged, at O(n) instead of
        O(n log n) for deep unwinds.
        """
        if len(self.trail_lim) <= target_level:
            return
        limit = self.trail_lim[target_level]
        trail = self.trail
        lit_truth = self.lit_truth
        saved_phase = self.saved_phase
        reason = self.reason
        released = self.released
        activity = self.activity
        heap = self._heap
        cur_in_heap = self._cur_in_heap
        requeue: list[tuple[float, int]] = []
        # Unwind as one slice: per-variable effects are idempotent and
        # independent, and the heap requeue below depends only on the
        # entry multiset, so iteration order is free.
        unwound = trail[limit:]
        del trail[limit:]
        n_released = 0
        for lit in unwound:
            var = lit >> 1
            # The trail literal was true, so the var's value is its
            # polarity — no value array to consult (or to clear).
            saved_phase[var] = 1 ^ (lit & 1)
            lit_truth[lit] = _UNASSIGNED
            lit_truth[lit ^ 1] = _UNASSIGNED
            reason[var] = -1
            if released[var]:
                n_released += 1
            elif not cur_in_heap[var]:
                requeue.append((activity[var], var))
                cur_in_heap[var] = 1
        self._active_unassigned += len(unwound) - n_released
        # heapify is O(heap + batch) vs O(batch * log heap) for pushes;
        # only worth it when the batch rivals the heap (lazy deletion
        # leaves stale entries, so the heap can be much larger).
        if len(requeue) > 32 and len(self._heap) < 3 * len(requeue):
            heap.extend(requeue)
            heapify(heap)
        else:
            for entry in requeue:
                heappush(heap, entry)
        del self.trail_lim[target_level:]
        self.qhead = len(trail)

    # ------------------------------------------------------------------
    # VSIDS
    # ------------------------------------------------------------------
    def _bump(self, var: int) -> None:
        value = self.activity[var] - self._var_inc
        self.activity[var] = value
        if self.lit_truth[var << 1] == _UNASSIGNED and not self.released[var]:
            heappush(self._heap, (value, var))
            self._cur_in_heap[var] = 1
        else:
            self._cur_in_heap[var] = 0  # in-heap entry (if any) is stale
        if value < -_ACTIVITY_CAP:
            self._rescale()

    def _rescale(self) -> None:
        scale = 1.0 / _ACTIVITY_CAP
        for var in range(len(self.activity)):
            self.activity[var] *= scale
        self._var_inc *= scale
        lit_truth = self.lit_truth
        self._heap = [
            (self.activity[var], var)
            for var in range(len(self.level))
            if lit_truth[var << 1] == _UNASSIGNED and not self.released[var]
        ]
        heapify(self._heap)
        self._cur_in_heap = bytearray(len(self.level))
        for _, var in self._heap:
            self._cur_in_heap[var] = 1

    def _pick_branch(self) -> int:
        heap = self._heap
        lit_truth = self.lit_truth
        activity = self.activity
        released = self.released
        cur_in_heap = self._cur_in_heap
        while heap:
            negact, var = heappop(heap)
            if negact == activity[var]:
                cur_in_heap[var] = 0  # the current-key entry just left
                if lit_truth[var << 1] == _UNASSIGNED and not released[var]:
                    return var
        return -1

    # ------------------------------------------------------------------
    # Conflict analysis
    # ------------------------------------------------------------------
    def _analyze(
        self, conflict: int, stats: SolverStats
    ) -> tuple[list[int], int, int]:
        """First-UIP conflict analysis (MiniSat structure).

        Relies on the invariant that a long reason clause stores its
        implied literal at position 0; binary reasons carry their single
        remaining literal in the ``reason`` encoding itself.

        Returns:
            (learned clause with asserting literal first, backjump
            level, literal block distance of the learned clause).
        """
        arena = self.arena
        learned: list[int] = []
        seen = self._seen  # zeroed on every exit path below
        touched: list[int] = []
        level = self.level
        trail = self.trail
        reason = self.reason
        lit_truth = self.lit_truth
        released = self.released
        activity = self.activity
        cur_in_heap = self._cur_in_heap
        heap = self._heap
        var_inc = self._var_inc
        path_count = 0
        first_pass = True
        ref = conflict
        index = len(trail) - 1
        current = len(self.trail_lim)
        while True:
            if ref >= 0:
                # Skip position 0 when it is the literal we resolved on.
                start = ref if first_pass else ref + 1
                for pos in range(start, ref + arena[ref - 1]):
                    q = arena[pos]
                    var = q >> 1
                    if not seen[var]:
                        lv = level[var]
                        if lv > 0:
                            seen[var] = 1
                            touched.append(var)
                            # Inlined _bump (activities stored negated).
                            act = activity[var] - var_inc
                            activity[var] = act
                            if (
                                lit_truth[q & -2] == -1
                                and not released[var]
                            ):
                                heappush(heap, (act, var))
                                cur_in_heap[var] = 1
                            else:
                                cur_in_heap[var] = 0
                            if act < -_ACTIVITY_CAP:
                                self._rescale()
                                var_inc = self._var_inc
                                heap = self._heap
                                cur_in_heap = self._cur_in_heap
                            if lv >= current:
                                path_count += 1
                            else:
                                learned.append(q)
            else:
                # Binary reason: resolve with the encoded literal.
                q = -2 - ref
                var = q >> 1
                if not seen[var]:
                    lv = level[var]
                    if lv > 0:
                        seen[var] = 1
                        touched.append(var)
                        act = activity[var] - var_inc
                        activity[var] = act
                        if lit_truth[q & -2] == -1 and not released[var]:
                            heappush(heap, (act, var))
                            cur_in_heap[var] = 1
                        else:
                            cur_in_heap[var] = 0
                        if act < -_ACTIVITY_CAP:
                            self._rescale()
                            var_inc = self._var_inc
                            heap = self._heap
                            cur_in_heap = self._cur_in_heap
                        if lv >= current:
                            path_count += 1
                        else:
                            learned.append(q)
            first_pass = False
            while not seen[trail[index] >> 1]:
                index -= 1
            p = trail[index]
            var = p >> 1
            seen[var] = 0
            path_count -= 1
            index -= 1
            if path_count <= 0:
                break
            ref = reason[var]
        for var in touched:
            seen[var] = 0
        learned.insert(0, negate(p))
        if len(learned) == 1:
            return learned, 0, 1
        back_level = max(level[q >> 1] for q in learned[1:])
        lbd = len({level[q >> 1] for q in learned})
        return learned, back_level, lbd

    def _record_learned(
        self, learned: list[int], lbd: int, stats: SolverStats
    ) -> None:
        """Attach a learned clause and assert its first literal."""
        stats.learned_clauses += 1
        if self.proof is not None:
            # Copy now: watch maintenance permutes the arena clause.
            self.proof.add(learned)
        slm = self.structural_lbd_max
        size = len(learned)
        if size == 2:
            ref = self._alloc(learned)
            self.learned.append(ref)
            self._lbd[ref] = lbd
            self._attach_binary(learned[0], learned[1], ref)
            self._enqueue(learned[0], -2 - learned[1])
        elif size > 2:
            # Watch invariant: position 1 must hold a literal from the
            # backjump level, else future backtracks can leave the
            # clause incorrectly watched.
            level = self.level
            best = 1
            best_level = level[learned[1] >> 1]
            for j in range(2, size):
                lv = level[learned[j] >> 1]
                if lv > best_level:  # strict: first maximum, like max()
                    best_level = lv
                    best = j
            learned[1], learned[best] = learned[best], learned[1]
            ref = self._alloc(learned)
            self.learned.append(ref)
            self._lbd[ref] = lbd
            self.watches[learned[0]].append(ref)
            self.blockers[learned[0]].append(learned[1])
            self.watches[learned[1]].append(ref)
            self.blockers[learned[1]].append(learned[0])
            self._enqueue(learned[0], ref)
        else:
            if (
                slm is not None
                and (learned[0] >> 1) < self.structural_var_ceiling
            ):
                self.structural_fresh_units.append(learned[0])
            self._enqueue(learned[0], -1)
            return
        if slm is not None and lbd <= slm:
            ceiling = self.structural_var_ceiling
            if all((q >> 1) < ceiling for q in learned):
                self.structural_fresh.append(ref)

    def reduce_learned(self) -> int:
        """Drop the worst half of the learned database.

        Clauses are ranked by (LBD, length); glue clauses (LBD <= 2),
        binaries, and clauses locked as reasons on the current trail are
        always kept.  Returns the number of clauses removed.  Detached
        clauses leave garbage in the arena until the next
        :meth:`collect` compaction.
        """
        arena = self.arena
        locked = {ref for ref in self.reason if ref >= 0}
        lbd = self._lbd
        candidates = [
            ref
            for ref in self.learned
            if ref not in locked
            and arena[ref - 1] > 2
            and lbd.get(ref, 99) > 2
        ]
        candidates.sort(key=lambda ref: (lbd.get(ref, 99), arena[ref - 1]))
        victims = set(candidates[len(candidates) // 2 :])
        if not victims:
            return 0
        for ref in self.learned:
            if ref in victims:
                self._detach(ref)
                lbd.pop(ref, None)
                if self.proof is not None:
                    self.proof.delete(self.read_clause(ref))
        self.learned = [ref for ref in self.learned if ref not in victims]
        return len(victims)

    # ------------------------------------------------------------------
    # Garbage collection (activation-literal retirement)
    # ------------------------------------------------------------------
    def collect(self) -> int:
        """Sweep clauses satisfied at the root and recycle zombie vars.

        Retiring an activation literal ``t`` (root unit ``¬t``)
        permanently satisfies every clause tagged with ``¬t`` — the
        group's deltas and any learned clause derived from them.  This
        sweep removes them, compacts the clause arena, rebuilds the
        watch lists and binary edges, and returns deferred-release
        variables (the ``t``s themselves) to the free list.  Must be
        called at decision level 0 with propagation settled.

        Returns the number of clauses removed.
        """
        assert len(self.trail_lim) == 0
        arena = self.arena
        lit_truth = self.lit_truth

        removed = 0
        for name in ("base", "learned"):
            kept: list[int] = []
            for ref in getattr(self, name):
                satisfied = False
                for pos in range(ref, ref + arena[ref - 1]):
                    if lit_truth[arena[pos]] == 1:
                        satisfied = True
                        break
                if satisfied:
                    removed += 1
                    self._lbd.pop(ref, None)
                    if self.proof is not None:
                        self.proof.delete(self.read_clause(ref))
                else:
                    kept.append(ref)
            setattr(self, name, kept)
        if not removed and not self._zombie:
            return 0

        # Drop zombie vars from the root trail and recycle them.
        if self._zombie:
            zombies = set(self._zombie)
            self.trail = [
                lit for lit in self.trail if (lit >> 1) not in zombies
            ]
            self.qhead = len(self.trail)
            for var in self._zombie:
                lit_truth[2 * var] = _UNASSIGNED
                lit_truth[2 * var + 1] = _UNASSIGNED
                self.reason[var] = -1
                self.activity[var] = 0.0
                self.saved_phase[var] = 0
                self._free.append(var)
            self._zombie.clear()

        # Compact the arena and rebuild watches; pick non-root-false
        # watch positions so the two-watched-literal invariant holds
        # from a clean slate (binary clauses are never permuted, in
        # either core).  Watch-list and binary-edge order is rebuilt
        # from base+learned order exactly as the reference core does,
        # so the search trajectory is unaffected by compaction.
        new_arena: list[int] = []
        remap: dict[int, int] = {}
        n_lits = 2 * len(self.level)
        self.watches = [[] for _ in range(n_lits)]
        self.blockers = [[] for _ in range(n_lits)]
        self.bin_others = [[] for _ in range(n_lits)]
        self.bin_refs = [[] for _ in range(n_lits)]
        watches = self.watches
        blockers = self.blockers
        bin_others = self.bin_others
        bin_refs = self.bin_refs
        for bucket in (self.base, self.learned):
            for idx, ref in enumerate(bucket):
                size = arena[ref - 1]
                if size == 2:
                    a = arena[ref]
                    b = arena[ref + 1]
                    new_arena.append(2)
                    new_ref = len(new_arena)
                    new_arena.append(a)
                    new_arena.append(b)
                    remap[ref] = new_ref
                    bucket[idx] = new_ref
                    bin_others[a].append(b)
                    bin_refs[a].append(new_ref)
                    bin_others[b].append(a)
                    bin_refs[b].append(new_ref)
                    continue
                cl = arena[ref : ref + size]
                free = 0
                for k in range(size):
                    # Non-false literal: unassigned (-1) or true (1).
                    if lit_truth[cl[k]] != 0:
                        cl[free], cl[k] = cl[k], cl[free]
                        free += 1
                        if free == 2:
                            break
                new_arena.append(size)
                new_ref = len(new_arena)
                new_arena.extend(cl)
                remap[ref] = new_ref
                bucket[idx] = new_ref
                watches[cl[0]].append(new_ref)
                blockers[cl[0]].append(cl[1])
                watches[cl[1]].append(new_ref)
                blockers[cl[1]].append(cl[0])
        self.arena = new_arena
        self._lbd = {
            remap[ref]: value
            for ref, value in self._lbd.items()
            if ref in remap
        }
        # Root-level reasons may point at swept clauses (or encode
        # binary edges); they are never dereferenced — conflict
        # analysis skips level-0 literals — so a dangling entry simply
        # becomes -1.
        self.reason = [
            remap.get(ref, -1) if ref >= 0 else -1 for ref in self.reason
        ]
        self.structural_fresh = [
            remap[ref] for ref in self.structural_fresh if ref in remap
        ]
        return removed

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def clause_bytes_estimate(self) -> int:
        """Rough heap footprint of the clause database, in bytes.

        Counts per-literal plus per-clause overhead of the live clauses
        (matching the reference core's accounting) — deliberately an
        estimate, used only to trigger reduction / budget aborts, not
        for accounting.
        """
        arena = self.arena
        lits = sum(arena[ref - 1] for ref in self.base)
        lits += sum(arena[ref - 1] for ref in self.learned)
        n_clauses = len(self.base) + len(self.learned)
        return lits * 36 + n_clauses * 72

    def solve(
        self,
        assumptions: Sequence[int] = (),
        max_conflicts: Optional[int] = None,
        deadline_at: Optional[float] = None,
        mem_budget_mb: Optional[float] = None,
    ) -> tuple[SatStatus, SolverStats]:
        """CDCL search under ``assumptions``.

        Assumption literals are decided first, in order; if one is
        falsified the answer is UNSAT *under the assumptions* (the
        database stays consistent and future calls are fine).  On SAT
        the assignment is left in place for the caller to decode; the
        next call (or :meth:`backjump`) harvests it as saved phases.

        Args:
            max_conflicts: conflict budget for this call.
            deadline_at: absolute ``time.monotonic()`` cutoff, checked
                periodically alongside the conflict budget (every 64
                conflicts and every 512 decisions) so an over-deadline
                search stops within a bounded slice of work.
            mem_budget_mb: clause-database memory budget.  Checked every
                64 conflicts; an over-budget database is first squeezed
                via :meth:`reduce_learned`, and if still over budget the
                call returns ``UNKNOWN`` with ``stats.mem_limit_hit``
                set so callers can distinguish the abort cause.

        Returns:
            (status, per-call statistics).  ``UNKNOWN`` when the
            conflict budget, the deadline, or the memory budget was
            exceeded.
        """
        stats = SolverStats()
        mem_budget_bytes = (
            None if mem_budget_mb is None else mem_budget_mb * 1024 * 1024
        )
        self.backjump(0)
        if self.root_failed or self._propagate(stats) >= 0:
            if not self.root_failed and self.proof is not None:
                self.proof.add_empty()
            self.root_failed = True
            return SatStatus.UNSAT, stats
        if deadline_at is not None and time.monotonic() >= deadline_at:
            return SatStatus.UNKNOWN, stats

        restart_limit = self.restart_interval
        conflicts_since_restart = 0

        while True:
            conflict = self._propagate(stats)
            if conflict >= 0:
                stats.conflicts += 1
                conflicts_since_restart += 1
                if (
                    max_conflicts is not None
                    and stats.conflicts > max_conflicts
                ):
                    self.backjump(0)
                    return SatStatus.UNKNOWN, stats
                if (
                    deadline_at is not None
                    and stats.conflicts & 63 == 0
                    and time.monotonic() >= deadline_at
                ):
                    self.backjump(0)
                    return SatStatus.UNKNOWN, stats
                if (
                    mem_budget_bytes is not None
                    and stats.conflicts & 63 == 0
                    and self.clause_bytes_estimate() > mem_budget_bytes
                ):
                    self.reduce_learned()
                    if self.clause_bytes_estimate() > mem_budget_bytes:
                        stats.mem_limit_hit = True
                        self.backjump(0)
                        return SatStatus.UNKNOWN, stats
                if len(self.trail_lim) == 0:
                    if self.proof is not None:
                        self.proof.add_empty()
                    self.root_failed = True
                    return SatStatus.UNSAT, stats
                learned, back_level, lbd = self._analyze(conflict, stats)
                self.backjump(back_level)
                self._record_learned(learned, lbd, stats)
                self._var_inc /= self.decay
                if self._var_inc > _ACTIVITY_CAP:
                    self._rescale()
                if len(self.learned) > max(
                    self.learned_db_min,
                    int(self.learned_db_factor * len(self.base)),
                ):
                    self.reduce_learned()
                continue

            if conflicts_since_restart >= restart_limit:
                conflicts_since_restart = 0
                restart_limit = int(restart_limit * 1.5)
                stats.restarts += 1
                self.backjump(0)
                continue

            lit = None
            while len(self.trail_lim) < len(assumptions):
                p = assumptions[len(self.trail_lim)]
                value = self.lit_truth[p]
                if value == 1:
                    # Already satisfied: open a dummy level and move on.
                    self.trail_lim.append(len(self.trail))
                elif value == 0:
                    self.backjump(0)
                    return SatStatus.UNSAT, stats
                else:
                    lit = p
                    break
            if lit is None:
                if self._active_unassigned == 0:
                    # Total over live vars: SAT without draining the
                    # heap's stale entries (they stay and are skipped
                    # lazily by future picks, same pop order).  Once
                    # stale entries dominate, compact to exactly the
                    # current-key entries — the flag invariant says
                    # cur_in_heap[var] == 1 iff the heap holds an entry
                    # at var's current activity, so the rebuilt heap has
                    # the same live-entry multiset and the same pick
                    # sequence, minus inert stale pops.
                    if len(self._heap) > 2 * len(self.level) + 64:
                        activity = self.activity
                        self._heap = [
                            (activity[var], var)
                            for var, flagged in enumerate(self._cur_in_heap)
                            if flagged
                        ]
                        heapify(self._heap)
                    return SatStatus.SAT, stats
                var = self._pick_branch()
                if var == -1:
                    return SatStatus.SAT, stats
                stats.decisions += 1
                stats.nodes += 1
                if (
                    deadline_at is not None
                    and stats.decisions & 511 == 0
                    and time.monotonic() >= deadline_at
                ):
                    self.backjump(0)
                    return SatStatus.UNKNOWN, stats
                lit = 2 * var + (0 if self.saved_phase[var] == 1 else 1)
            self.trail_lim.append(len(self.trail))
            self._enqueue(lit, -1)


class CdclSolver:
    """One-shot CDCL solver over a compiled CNF.

    Args:
        max_conflicts: conflict budget; exceeded search returns ``UNKNOWN``.
        deadline_at: absolute ``time.monotonic()`` wall-clock cutoff,
            checked periodically in the search loop; exceeded search
            returns ``UNKNOWN``.
        restart_interval: conflicts before the first restart (grows 1.5x).
        decay: VSIDS activity decay factor per conflict.
        phase_hint: optional map from variable name to preferred phase.
        order: optional static variable order used to break activity ties.

    The compiled form is cached per formula: repeated solves on the
    same formula skip recompilation.  Each call still searches from a
    cold state — use :class:`CdclCore` / :mod:`repro.sat.incremental`
    when learned clauses should persist between solves.
    """

    def __init__(
        self,
        max_conflicts: Optional[int] = None,
        restart_interval: int = 128,
        decay: float = 0.95,
        phase_hint: Optional[dict[str, int]] = None,
        order: Optional[Sequence[str]] = None,
        deadline_at: Optional[float] = None,
        mem_budget_mb: Optional[float] = None,
    ) -> None:
        self.max_conflicts = max_conflicts
        self.deadline_at = deadline_at
        self.mem_budget_mb = mem_budget_mb
        self.restart_interval = restart_interval
        self.decay = decay
        self.phase_hint = phase_hint or {}
        self._order = list(order) if order is not None else None
        self._compiled_for: Optional[CnfFormula] = None
        self._compiled = None

    def solve(self, formula: CnfFormula) -> SatResult:
        """Decide satisfiability of ``formula``."""
        start = time.perf_counter()
        if self._compiled_for is None or not (
            self._compiled_for is formula or self._compiled_for == formula
        ):
            self._compiled = compile_formula(formula)
            self._compiled_for = formula
        compiled = self._compiled

        core = CdclCore(
            restart_interval=self.restart_interval, decay=self.decay
        )
        core.new_vars(compiled.num_vars)
        for name, phase in self.phase_hint.items():
            idx = compiled.index_of.get(name)
            if idx is not None:
                core.saved_phase[idx] = 1 if phase else 0
        if self._order is not None:
            # Seed activities so the static order breaks ties.
            rank = len(self._order)
            for position, name in enumerate(self._order):
                idx = compiled.index_of.get(name)
                if idx is not None:
                    core.set_activity(idx, float(rank - position) * 1e-6)

        for clause in compiled.clauses:
            if not core.add_clause(clause):
                break
        if core.root_failed:
            stats = SolverStats()
            stats.time_seconds = time.perf_counter() - start
            return SatResult(SatStatus.UNSAT, stats=stats)
        if compiled.num_vars == 0:
            stats = SolverStats()
            stats.time_seconds = time.perf_counter() - start
            return SatResult(SatStatus.SAT, assignment={}, stats=stats)

        status, stats = core.solve(
            max_conflicts=self.max_conflicts,
            deadline_at=self.deadline_at,
            mem_budget_mb=self.mem_budget_mb,
        )
        stats.time_seconds = time.perf_counter() - start
        if status is SatStatus.SAT:
            model = compiled.decode_assignment(core.values)
            return SatResult(SatStatus.SAT, assignment=model, stats=stats)
        return SatResult(status, stats=stats)


def solve_cdcl(formula: CnfFormula, **kwargs) -> SatResult:
    """Convenience wrapper around :class:`CdclSolver`."""
    return CdclSolver(**kwargs).solve(formula)
