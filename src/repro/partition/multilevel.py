"""Multilevel hypergraph bisection (the hMETIS algorithmic recipe).

Coarsen the hypergraph by edge-coarsening matchings until it is small,
bisect the coarsest graph with FM from several random starts, then project
back through the hierarchy refining with FM at each level — the structure
of Karypis et al.'s multilevel scheme that the paper used via hMETIS.

Supports locked anchor vertices (terminal propagation): anchors are never
matched during coarsening and stay pinned to their side at every level,
so recursive-bisection linear arrangement can bias each split towards the
already-placed context.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.hypergraph import Hypergraph
from repro.partition.fm import BisectionResult, edge_cut, fm_bisect


@dataclass
class _Level:
    """One coarsening level: the graph and the vertex → cluster map."""

    graph: Hypergraph
    cluster_of: dict[str, str]  # fine vertex -> coarse vertex


def _coarsen_once(
    graph: Hypergraph, rng: random.Random, locked: frozenset[str]
) -> _Level | None:
    """One edge-coarsening pass; None if no meaningful contraction."""
    incidence = graph.incident_edges()
    vertices = list(graph.vertices)
    rng.shuffle(vertices)

    matched: dict[str, str] = {}
    used: set[str] = set()
    for vertex in vertices:
        if vertex in used:
            continue
        if vertex in locked:
            matched[vertex] = vertex
            used.add(vertex)
            continue
        # Prefer a partner sharing the smallest hyperedge (strongest tie).
        best_partner: str | None = None
        best_size = 1 << 30
        for edge_index in incidence[vertex]:
            _, members = graph.edges[edge_index]
            if len(members) >= best_size:
                continue
            for member in members:
                if member != vertex and member not in used and member not in locked:
                    best_partner = member
                    best_size = len(members)
                    break
        if best_partner is not None:
            cluster = f"{vertex}+{best_partner}"
            matched[vertex] = cluster
            matched[best_partner] = cluster
            used.add(vertex)
            used.add(best_partner)
        else:
            matched[vertex] = vertex
            used.add(vertex)

    coarse_names = sorted(set(matched.values()))
    if len(coarse_names) >= graph.num_vertices:
        return None

    coarse_edges: dict[tuple[str, ...], str] = {}
    for label, members in graph.edges:
        coarse_members = tuple(sorted({matched[m] for m in members}))
        if len(coarse_members) >= 2 and coarse_members not in coarse_edges:
            coarse_edges[coarse_members] = label
    coarse = Hypergraph(
        tuple(coarse_names),
        tuple((label, members) for members, label in coarse_edges.items()),
    )
    return _Level(coarse, matched)


def multilevel_bisect(
    graph: Hypergraph,
    *,
    coarse_threshold: int = 40,
    num_starts: int = 4,
    balance: float = 0.1,
    seed: int = 0,
    locked_left: tuple[str, ...] = (),
    locked_right: tuple[str, ...] = (),
) -> BisectionResult:
    """hMETIS-style multilevel min-cut bisection.

    Args:
        graph: hypergraph to bisect.
        coarse_threshold: stop coarsening below this many vertices.
        num_starts: random FM starts at the coarsest level.
        balance: FM balance tolerance at every level.
        seed: RNG seed controlling matching and initial partitions.
        locked_left: anchor vertices pinned to the left side.
        locked_right: anchor vertices pinned to the right side.

    Returns:
        A :class:`BisectionResult` over the *free* vertices only (anchors
        are excluded from the returned sides).
    """
    locked = frozenset(locked_left) | frozenset(locked_right)
    free_count = graph.num_vertices - len(locked)
    if free_count <= 1:
        free = [v for v in graph.vertices if v not in locked]
        return BisectionResult(free, [], 0)

    rng = random.Random(seed)
    levels: list[_Level] = []
    current = graph
    while current.num_vertices > max(coarse_threshold, 2 * len(locked) + 2):
        level = _coarsen_once(current, rng, locked)
        if level is None:
            break
        levels.append(level)
        current = level.graph

    # Initial partition at the coarsest level: best of several FM starts.
    best: BisectionResult | None = None
    for attempt in range(max(1, num_starts)):
        candidate = fm_bisect(
            current,
            balance=balance,
            seed=seed * 7919 + attempt,
            locked_left=tuple(locked_left),
            locked_right=tuple(locked_right),
        )
        if best is None or candidate.cut < best.cut:
            best = candidate
    assert best is not None
    left_set = set(best.left)

    # Uncoarsen, refining at each level.
    fine_graphs = [graph] + [level.graph for level in levels[:-1]]
    for level, fine in zip(reversed(levels), reversed(fine_graphs)):
        projected = [
            vertex
            for vertex in fine.vertices
            if vertex not in locked and level.cluster_of[vertex] in left_set
        ]
        refined = fm_bisect(
            fine,
            initial_left=projected,
            balance=balance,
            seed=seed,
            locked_left=tuple(locked_left),
            locked_right=tuple(locked_right),
        )
        left_set = set(refined.left)
        best = refined

    side_of = {v: (0 if v in left_set else 1) for v in graph.vertices if v not in locked}
    side_of.update({v: 0 for v in locked_left})
    side_of.update({v: 1 for v in locked_right})
    left = [v for v in graph.vertices if side_of[v] == 0 and v not in locked]
    right = [v for v in graph.vertices if side_of[v] == 1 and v not in locked]
    return BisectionResult(left, right, edge_cut(graph, side_of))