"""Fiduccia–Mattheyses hypergraph bisection.

Our stand-in for hMETIS (the paper's Section 5.2.1 uses hMETIS inside a
recursive min-cut bisection).  Classic FM structure: tentatively move the
highest-gain unlocked vertex that keeps the balance constraint, lock it,
and at the end of the pass rewind to the best prefix.  For robustness we
recompute the exact gain of affected neighbours after each move from the
edge pin counters instead of using the delta-update rules; the move
selection itself stays O(1) via gain buckets.
"""

from __future__ import annotations

import random
from collections.abc import Sequence
from dataclasses import dataclass

from repro.core.hypergraph import Hypergraph


@dataclass
class BisectionResult:
    """Outcome of a bisection: the two sides and the achieved cut size."""

    left: list[str]
    right: list[str]
    cut: int


def edge_cut(graph: Hypergraph, side_of: dict[str, int]) -> int:
    """Number of hyperedges spanning both sides."""
    cut = 0
    for _, members in graph.edges:
        sides = {side_of[m] for m in members}
        if len(sides) > 1:
            cut += 1
    return cut


class _GainBuckets:
    """Bucket array keyed by gain with O(1) insert/remove/update.

    Buckets are insertion-ordered dicts, not sets: within one gain value
    the tie-break is arrival order, which does not depend on string
    hashing.  With set buckets the chosen move varied with
    ``PYTHONHASHSEED``, making arrangements differ across processes even
    for a fixed partitioner seed.
    """

    def __init__(self, max_gain: int) -> None:
        self.max_gain = max(max_gain, 1)
        self.buckets: list[dict[str, None]] = [
            {} for _ in range(2 * self.max_gain + 1)
        ]
        self.gain_of: dict[str, int] = {}
        self.best = -1

    def _clamp(self, gain: int) -> int:
        return max(-self.max_gain, min(self.max_gain, gain))

    def insert(self, vertex: str, gain: int) -> None:
        index = self._clamp(gain) + self.max_gain
        self.buckets[index][vertex] = None
        self.gain_of[vertex] = gain
        if index > self.best:
            self.best = index

    def discard(self, vertex: str) -> None:
        if vertex in self.gain_of:
            index = self._clamp(self.gain_of.pop(vertex)) + self.max_gain
            self.buckets[index].pop(vertex, None)

    def set_gain(self, vertex: str, gain: int) -> None:
        if vertex not in self.gain_of:
            return
        self.discard(vertex)
        self.insert(vertex, gain)

    def pop_best(self, allowed) -> str | None:
        """Remove and return the highest-gain vertex passing ``allowed``."""
        index = min(self.best, 2 * self.max_gain)
        while index >= 0:
            bucket = self.buckets[index]
            for vertex in bucket:
                if allowed(vertex):
                    del bucket[vertex]
                    del self.gain_of[vertex]
                    self.best = index
                    return vertex
            index -= 1
        return None


def _vertex_gain(
    vertex: str,
    side: int,
    incidence: dict[str, list[int]],
    edge_counts: list[list[int]],
) -> int:
    """Exact FM gain of moving ``vertex`` to the other side.

    Moving removes an edge from the cut when the vertex is the sole member
    on its side (and the edge has members opposite); it adds an edge to
    the cut when the edge currently lies entirely on the vertex's side.
    """
    gain = 0
    other = 1 - side
    for edge_index in incidence[vertex]:
        counts = edge_counts[edge_index]
        if counts[side] == 1 and counts[other] > 0:
            gain += 1
        elif counts[other] == 0:
            gain -= 1
    return gain


def fm_bisect(
    graph: Hypergraph,
    *,
    initial_left: Sequence[str] | None = None,
    balance: float = 0.1,
    max_passes: int = 8,
    seed: int = 0,
    locked_left: Sequence[str] = (),
    locked_right: Sequence[str] = (),
) -> BisectionResult:
    """Bisect ``graph`` minimising hyperedge cut.

    Args:
        graph: hypergraph to bisect.
        initial_left: starting left side; defaults to a random half.
        balance: allowed deviation — each side keeps at least
            ``max(1, floor((0.5 - balance) * n))`` free vertices.
        max_passes: improvement passes (each pass is a full FM sweep).
        seed: RNG seed for the initial random split.
        locked_left: anchor vertices pinned to side 0 (terminal
            propagation for recursive-bisection MLA).
        locked_right: anchor vertices pinned to side 1.
    """
    locked = {v: 0 for v in locked_left}
    locked.update({v: 1 for v in locked_right})
    vertices = list(graph.vertices)
    free = [v for v in vertices if v not in locked]
    n = len(free)
    if n == 0:
        left = [v for v in vertices if locked.get(v) == 0]
        right = [v for v in vertices if locked.get(v) == 1]
        side_of = dict(locked)
        return BisectionResult(left, right, edge_cut(graph, side_of))
    if n == 1 and not locked:
        return BisectionResult(list(free), [], 0)

    rng = random.Random(seed)
    if initial_left is None:
        shuffled = free[:]
        rng.shuffle(shuffled)
        left_set = set(shuffled[: n // 2])
    else:
        left_set = set(initial_left) - set(locked)

    side_of = {v: (0 if v in left_set else 1) for v in free}
    side_of.update(locked)
    incidence = graph.incident_edges()
    min_side = max(1, int((0.5 - balance) * n))

    for _ in range(max_passes):
        improved = _fm_pass(
            graph, side_of, incidence, min_side, frozenset(locked)
        )
        if not improved:
            break

    left = [v for v in free if side_of[v] == 0]
    right = [v for v in free if side_of[v] == 1]
    return BisectionResult(left, right, edge_cut(graph, side_of))


def _fm_pass(
    graph: Hypergraph,
    side_of: dict[str, int],
    incidence: dict[str, list[int]],
    min_side: int,
    locked: frozenset[str] = frozenset(),
) -> bool:
    """One FM sweep mutating ``side_of``; True if the cut improved."""
    vertices = [v for v in graph.vertices if v not in locked]
    max_degree = max((len(incidence[v]) for v in vertices), default=0)
    if max_degree == 0:
        return False

    edge_counts: list[list[int]] = []
    members_of: list[tuple[str, ...]] = []
    for _, members in graph.edges:
        left = sum(1 for m in members if side_of[m] == 0)
        edge_counts.append([left, len(members) - left])
        members_of.append(members)

    buckets = _GainBuckets(max_degree)
    for vertex in vertices:
        buckets.insert(
            vertex, _vertex_gain(vertex, side_of[vertex], incidence, edge_counts)
        )

    counts = [0, 0]
    for vertex in vertices:
        counts[side_of[vertex]] += 1

    def allowed(vertex: str) -> bool:
        return counts[side_of[vertex]] - 1 >= min_side

    moved: list[str] = []
    cumulative = 0
    best_prefix = 0
    best_value = 0

    while True:
        vertex = buckets.pop_best(allowed)
        if vertex is None:
            break
        gain = _vertex_gain(vertex, side_of[vertex], incidence, edge_counts)
        src = side_of[vertex]
        dst = 1 - src

        # First-seen order (dict, not set): the re-bucketing below moves
        # each vertex to the back of its gain bucket, so iteration order
        # here shapes future tie-breaks and must not depend on hashing.
        affected: dict[str, None] = {}
        for edge_index in incidence[vertex]:
            edge_counts[edge_index][src] -= 1
            edge_counts[edge_index][dst] += 1
            for member in members_of[edge_index]:
                affected[member] = None
        side_of[vertex] = dst
        counts[src] -= 1
        counts[dst] += 1

        for other in affected:
            if other != vertex and other in buckets.gain_of:
                buckets.set_gain(
                    other,
                    _vertex_gain(other, side_of[other], incidence, edge_counts),
                )

        moved.append(vertex)
        cumulative += gain
        if cumulative > best_value:
            best_value = cumulative
            best_prefix = len(moved)

    # Rewind moves beyond the best prefix.
    for vertex in reversed(moved[best_prefix:]):
        side_of[vertex] = 1 - side_of[vertex]
    return best_value > 0
