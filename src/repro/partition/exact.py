"""Exact minimum cut-width by dynamic programming over vertex subsets.

Used for the leaves of the recursive min-cut linear arrangement (the
paper performs "an exact MLA for each of these partitions" once they are
sufficiently small) and as a ground-truth oracle in tests.

The recurrence: for a prefix set S,

    W(S) = min over v in S of  max( W(S \\ {v}),  cut(S) )

where cut(S) is the number of hyperedges with members on both sides of
(S, V \\ S).  O(2^n · n) states with O(1) amortised cut evaluation via
precomputed edge bitmasks.
"""

from __future__ import annotations

from repro.core.hypergraph import Hypergraph

#: Hard cap on exact DP size; 2^20 subsets is the practical Python limit.
MAX_EXACT_VERTICES = 18


def exact_min_cutwidth(
    graph: Hypergraph, return_order: bool = True
) -> tuple[int, list[str] | None]:
    """Minimum cut-width of ``graph`` and an optimal ordering.

    Args:
        graph: hypergraph with at most :data:`MAX_EXACT_VERTICES` vertices.
        return_order: when False, skip order reconstruction (saves memory).

    Returns:
        ``(W_min, order)``; ``order`` is None when ``return_order`` is
        False or the graph is empty.

    Raises:
        ValueError: if the graph is too large for exact DP.
    """
    vertices = list(graph.vertices)
    n = len(vertices)
    if n == 0:
        return 0, ([] if return_order else None)
    if n > MAX_EXACT_VERTICES:
        raise ValueError(
            f"exact cut-width limited to {MAX_EXACT_VERTICES} vertices, got {n}"
        )

    index_of = {v: i for i, v in enumerate(vertices)}
    edge_masks = []
    for _, members in graph.edges:
        mask = 0
        for member in members:
            mask |= 1 << index_of[member]
        edge_masks.append(mask)

    full = (1 << n) - 1

    def cut_of(subset: int) -> int:
        count = 0
        complement = full & ~subset
        for mask in edge_masks:
            if (mask & subset) and (mask & complement):
                count += 1
        return count

    # cut values cached per subset (cut is needed for every S regardless
    # of which vertex was placed last).
    size = 1 << n
    width = [0] * size  # W(S)
    choice = [0] * size if return_order else None
    # Iterate subsets in increasing popcount order via plain range —
    # W(S) depends only on strict subsets S\{v}, and S\{v} < S as ints.
    for subset in range(1, size):
        c = cut_of(subset)
        best = 1 << 30
        best_vertex = -1
        s = subset
        while s:
            bit = s & (-s)
            s ^= bit
            previous = subset ^ bit
            candidate = width[previous]
            if c > candidate:
                candidate = c
            if candidate < best:
                best = candidate
                best_vertex = bit.bit_length() - 1
        width[subset] = best
        if choice is not None:
            choice[subset] = best_vertex

    if not return_order:
        return width[full], None

    order_indices: list[int] = []
    subset = full
    while subset:
        last = choice[subset]
        order_indices.append(last)
        subset ^= 1 << last
    order_indices.reverse()
    return width[full], [vertices[i] for i in order_indices]
