"""Hypergraph partitioning: FM bisection, multilevel scheme, exact DP."""

from repro.partition.exact import MAX_EXACT_VERTICES, exact_min_cutwidth
from repro.partition.fm import BisectionResult, edge_cut, fm_bisect
from repro.partition.multilevel import multilevel_bisect

__all__ = [
    "BisectionResult",
    "MAX_EXACT_VERTICES",
    "edge_cut",
    "exact_min_cutwidth",
    "fm_bisect",
    "multilevel_bisect",
]
