"""Fast cut-width analysis: dedup, warm-start MLA, supervised fan-out.

The Figure-8 experiment (Section 5.2.2) measures, for every fault ψ, the
cut-width of its relevant sub-circuit C_ψ^sub.  Computed naively — one
sub-circuit extraction, one hypergraph build, and one full recursive
min-cut-bisection MLA per fault — large circuits must be subsampled with
``max_faults`` just to terminate.  This module amortises that work the
same way the SAT path amortises encoding work across a fault batch:

* **Sub-circuit dedup.**  C_ψ^sub depends on ψ only through the set of
  relevant nets and observing outputs, and faults cluster heavily: the
  two polarities of a net always share a sub-circuit, and in practice so
  do most faults observed by the same output group (the bench circuit
  has 548 collapsed faults but only 38 distinct sub-circuits).  Each
  fault is keyed by its *signature* — (observing outputs, relevant net
  set) — and the arrangement runs once per signature.

* **Warm-start MLA** (``mode="warm"``).  A fault's sub-circuit is
  covered by the cones of its observing outputs, so a cached per-cone
  arrangement restricted to the sub-circuit's nets is a strong seed
  order — Lemma 4.2's interleave argument is exactly why a good
  enclosing order stays good on a subset.  The recursive bisection is
  then skipped entirely in favour of best-of-pool selection plus the
  sliding-window polish (:func:`repro.core.mla.warm_min_cut_arrangement`).

* **Cold parity mode** (``mode="cold"``, the default).  Each distinct
  signature is analysed exactly as the historical sequential estimator
  did (same ``estimate_cutwidth`` call, same DFS-cone candidate, same
  seed), so results are bit-identical to the pre-pipeline
  ``fault_width_samples`` — just deduplicated and parallelisable.

* **Supervised parallel sweep.**  Faults are sharded by observing-output
  cone (:func:`repro.atpg.parallel.shard_faults_by_cone`, which keeps
  every signature on a single worker so dedup survives sharding) and run
  under a :class:`~repro.atpg.supervisor.ShardSupervisor`: per-shard
  timeouts, retry with bisection splitting, degradation to in-process
  execution, and a run deadline.  Because every per-fault result is a
  pure function of (network, signature, seed), the merged sweep is
  bit-identical to a sequential one regardless of worker count or how
  shards were split.
"""

from __future__ import annotations

import multiprocessing
import time
from collections.abc import Sequence
from dataclasses import dataclass, field, replace
from typing import Optional

from repro.atpg.faults import Fault, collapse_faults
from repro.atpg.supervisor import RunHealth, ShardSupervisor
from repro.circuits.network import Network
from repro.core.bounds import FaultWidthSample, subsample_faults, theorem_4_1_bound
from repro.core.cutwidth import mla_ordering
from repro.core.hypergraph import circuit_hypergraph
from repro.core.mla import estimate_cutwidth, warm_min_cut_arrangement
from repro.core.ordering import dfs_cone_ordering

#: A fault's sub-circuit signature: (observing outputs, relevant nets).
#: Two faults with equal signatures have identical C_ψ^sub up to naming.
Signature = tuple[tuple[str, ...], frozenset[str]]


@dataclass
class WidthStudyStats:
    """Aggregate perf counters for one width study, mirroring
    :class:`~repro.atpg.engine.EngineStats`.

    Stage times partition the hot path: ``signature`` (fanout/fanin
    traversals and signature lookup), ``cone`` (per-output cone
    arrangements feeding the warm-start cache), ``arrange`` (per-
    signature sub-circuit extraction, hypergraph build and MLA), and
    ``merge`` (coordinator-side deterministic merge).  Cache counters
    distinguish the two caches: ``sub_cache_*`` for the per-signature
    sample memo, ``cone_cache_*`` for the warm-start cone arrangements.
    """

    signature_time: float = 0.0
    cone_time: float = 0.0
    arrange_time: float = 0.0
    merge_time: float = 0.0
    wall_time: float = 0.0
    sub_cache_hits: int = 0
    sub_cache_misses: int = 0
    cone_cache_hits: int = 0
    cone_cache_misses: int = 0
    warm_starts: int = 0
    cold_runs: int = 0
    workers: int = 1
    shards: int = 1
    health: RunHealth = field(default_factory=RunHealth)

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of faults served from the sub-circuit memo."""
        total = self.sub_cache_hits + self.sub_cache_misses
        return self.sub_cache_hits / total if total else 0.0

    def stage_times(self) -> dict[str, float]:
        """Per-stage wall times, keyed by stage name."""
        return {
            "signature": self.signature_time,
            "cone": self.cone_time,
            "arrange": self.arrange_time,
            "merge": self.merge_time,
        }

    def merge(self, other: "WidthStudyStats") -> None:
        """Accumulate another shard's counters (parallel merging).

        Stage times and cache counters add; ``workers``/``shards`` are
        topology facts the coordinator sets explicitly.
        """
        self.signature_time += other.signature_time
        self.cone_time += other.cone_time
        self.arrange_time += other.arrange_time
        self.merge_time += other.merge_time
        self.sub_cache_hits += other.sub_cache_hits
        self.sub_cache_misses += other.sub_cache_misses
        self.cone_cache_hits += other.cone_cache_hits
        self.cone_cache_misses += other.cone_cache_misses
        self.warm_starts += other.warm_starts
        self.cold_runs += other.cold_runs
        self.health.merge(other.health)

    def as_dict(self) -> dict:
        """JSON-ready view (the ``stats`` block of ``BENCH_width.json``)."""
        return {
            "stage_times": self.stage_times(),
            "wall_time": self.wall_time,
            "sub_cache_hits": self.sub_cache_hits,
            "sub_cache_misses": self.sub_cache_misses,
            "cache_hit_rate": self.cache_hit_rate,
            "cone_cache_hits": self.cone_cache_hits,
            "cone_cache_misses": self.cone_cache_misses,
            "warm_starts": self.warm_starts,
            "cold_runs": self.cold_runs,
            "workers": self.workers,
            "shards": self.shards,
            "health": self.health.as_dict(),
        }


@dataclass
class WidthStudyReport:
    """Outcome of one width study over a fault list.

    Attributes:
        circuit: network name.
        mode: ``"cold"`` (parity with the historical estimator) or
            ``"warm"`` (cone-seeded arrangements).
        seed: MLA seed used for every arrangement.
        faults: the chosen fault list, in canonical (net, value) order —
            exactly the faults the sweep attempted, after subsampling.
        samples: one sample per analysed observable fault, in canonical
            fault order.
        unobservable: faults with no path to any primary output.
        skipped: (fault, reason) pairs for faults whose shard the
            supervisor gave up on (timeout / crash / deadline).
    """

    circuit: str
    mode: str
    seed: int
    faults: list[Fault] = field(default_factory=list)
    samples: list[FaultWidthSample] = field(default_factory=list)
    unobservable: list[Fault] = field(default_factory=list)
    skipped: list[tuple[Fault, str]] = field(default_factory=list)
    stats: WidthStudyStats = field(default_factory=WidthStudyStats)

    @property
    def max_cutwidth(self) -> int:
        return max((s.cutwidth for s in self.samples), default=0)

    def as_dict(self) -> dict:
        """JSON-ready summary (samples abbreviated to plot columns)."""
        return {
            "circuit": self.circuit,
            "mode": self.mode,
            "seed": self.seed,
            "n_faults": len(self.faults),
            "n_samples": len(self.samples),
            "n_unobservable": len(self.unobservable),
            "n_skipped": len(self.skipped),
            "max_cutwidth": self.max_cutwidth,
            "stats": self.stats.as_dict(),
        }


@dataclass
class _WidthShardJob:
    """Everything a worker needs to run one width shard (must pickle)."""

    network: Network
    faults: list[Fault]
    seed: int
    mode: str
    leaf_size: int
    bounds: bool


@dataclass
class _WidthShardResult:
    """One shard's samples plus its local perf counters."""

    samples: list[FaultWidthSample]
    unobservable: list[Fault]
    stats: WidthStudyStats


class _ShardAnalyzer:
    """Per-worker analysis state: signature memo + cone arrangement cache.

    One instance lives for the duration of a shard (or the whole run, in
    sequential mode), so every cache is per-process — nothing needs to
    cross the fork boundary except the job in and the samples out.
    """

    def __init__(
        self,
        network: Network,
        *,
        seed: int,
        mode: str,
        leaf_size: int,
        bounds: bool,
    ) -> None:
        self.network = network
        self.seed = seed
        self.mode = mode
        self.leaf_size = leaf_size
        self.bounds = bounds
        self.stats = WidthStudyStats()
        # fault.net -> signature (None = unobservable); both stuck-at
        # polarities of a net share one fanout traversal.
        self._net_sigs: dict[str, Optional[Signature]] = {}
        # signature -> (size, cutwidth, k_fo, theorem_bound)
        self._memo: dict[
            Signature, tuple[int, int, Optional[int], Optional[int]]
        ] = {}
        # primary output -> cached cone arrangement order (warm mode).
        self._cone_orders: dict[str, list[str]] = {}

    def run(self, faults: Sequence[Fault]) -> _WidthShardResult:
        samples: list[FaultWidthSample] = []
        unobservable: list[Fault] = []
        for fault in faults:
            start = time.perf_counter()
            signature = self._signature(fault)
            self.stats.signature_time += time.perf_counter() - start
            if signature is None:
                unobservable.append(fault)
                continue
            cached = self._memo.get(signature)
            if cached is None:
                self.stats.sub_cache_misses += 1
                cached = self._analyse(signature)
                self._memo[signature] = cached
            else:
                self.stats.sub_cache_hits += 1
            size, width, k_fo, bound = cached
            samples.append(
                FaultWidthSample(
                    fault=fault,
                    sub_circuit_size=size,
                    cutwidth=width,
                    k_fo=k_fo,
                    theorem_bound=bound,
                )
            )
        return _WidthShardResult(
            samples=samples, unobservable=unobservable, stats=self.stats
        )

    # ------------------------------------------------------------------
    def _signature(self, fault: Fault) -> Optional[Signature]:
        if fault.net in self._net_sigs:
            return self._net_sigs[fault.net]
        tfo = self.network.transitive_fanout([fault.net])
        observing = tuple(
            out for out in self.network.outputs if out in tfo
        )
        signature: Optional[Signature] = None
        if observing:
            relevant = frozenset(self.network.transitive_fanin(tfo))
            signature = (observing, relevant)
        self._net_sigs[fault.net] = signature
        return signature

    def _analyse(
        self, signature: Signature
    ) -> tuple[int, int, Optional[int], Optional[int]]:
        """One arrangement for one distinct sub-circuit."""
        observing, relevant = signature
        seeds: list[list[str]] = []
        if self.mode == "warm":
            seeds = [self._warm_seed_order(observing, relevant)]

        start = time.perf_counter()
        sub = self.network.subnetwork(
            set(relevant),
            outputs=list(observing),
            name=f"{self.network.name}.sub({','.join(observing)})",
        )
        graph = circuit_hypergraph(sub)
        candidates = [dfs_cone_ordering(sub)]
        if self.mode == "warm":
            vertex_set = set(graph.vertices)
            restricted = [
                [net for net in order if net in vertex_set] for order in seeds
            ]
            result = warm_min_cut_arrangement(
                graph,
                restricted,
                seed=self.seed,
                leaf_size=self.leaf_size,
                candidate_orders=candidates,
            )
            width = result.cutwidth
            if any(len(order) == graph.num_vertices for order in restricted):
                self.stats.warm_starts += 1
            else:
                self.stats.cold_runs += 1
        else:
            # Parity path: the exact historical estimator call, so the
            # deduplicated sweep is bit-identical to the old per-fault loop.
            width = estimate_cutwidth(
                graph,
                seed=self.seed,
                leaf_size=self.leaf_size,
                candidate_orders=candidates,
            )
            self.stats.cold_runs += 1
        self.stats.arrange_time += time.perf_counter() - start

        k_fo: Optional[int] = None
        bound: Optional[int] = None
        if self.bounds:
            k_fo = max(1, sub.max_fanout())
            bound = theorem_4_1_bound(graph.num_vertices, k_fo, width)
        return graph.num_vertices, width, k_fo, bound

    def _warm_seed_order(
        self, observing: tuple[str, ...], relevant: frozenset[str]
    ) -> list[str]:
        """Seed order from the enclosing cones' cached arrangements.

        Concatenates the observing cones' arrangements (first occurrence
        wins), keeping only relevant nets; relevant nets outside every
        observing cone — dead fanout branches — go first, matching the
        DFS-cone idiom of placing out-of-cone nets up front.
        """
        start = time.perf_counter()
        merged: dict[str, None] = {}
        for output in observing:
            order = self._cone_orders.get(output)
            if order is None:
                self.stats.cone_cache_misses += 1
                cone = self.network.output_cone(output)
                order = mla_ordering(cone, seed=self.seed).order
                self._cone_orders[output] = order
            else:
                self.stats.cone_cache_hits += 1
            for net in order:
                merged[net] = None
        self.stats.cone_time += time.perf_counter() - start
        outside = [
            net
            for net in self.network.topological_order()
            if net in relevant and net not in merged
        ]
        return outside + [net for net in merged if net in relevant]


def _run_width_shard(job: _WidthShardJob) -> _WidthShardResult:
    """Worker entry point: analyse one shard with per-process caches."""
    analyzer = _ShardAnalyzer(
        job.network,
        seed=job.seed,
        mode=job.mode,
        leaf_size=job.leaf_size,
        bounds=job.bounds,
    )
    return analyzer.run(job.faults)


def _split_width_shard(job: _WidthShardJob) -> list[_WidthShardJob]:
    """Halve a failing shard (canonical fault order preserved)."""
    if len(job.faults) < 2:
        return [job]
    mid = len(job.faults) // 2
    return [
        replace(job, faults=job.faults[:mid]),
        replace(job, faults=job.faults[mid:]),
    ]


class WidthAnalysisPipeline:
    """Deduplicated, optionally parallel Figure-8 width sweeps.

    Args:
        network: the (decomposed) circuit.
        seed: MLA seed for every arrangement.
        mode: ``"cold"`` (default) reproduces the historical estimator
            bit-for-bit per distinct sub-circuit; ``"warm"`` seeds each
            arrangement from cached enclosing-cone orders and skips the
            recursive bisection.
        workers: worker process count; ``1`` (or platforms without
            ``fork``) runs in-process.
        leaf_size: MLA exact-leaf size (forwarded to the estimator).
        bounds: also evaluate each sample's Theorem 4.1 bound
            ``n · 2^(2·k_fo·W)`` with the sub-circuit's own k_fo.
        shards_per_worker: shard granularity multiplier.
        shard_timeout: per-shard wall-clock budget in seconds.
        deadline: run-level wall-clock budget in seconds; faults not
            analysed in time are reported in ``report.skipped``.
    """

    def __init__(
        self,
        network: Network,
        *,
        seed: int = 0,
        mode: str = "cold",
        workers: int = 1,
        leaf_size: int = 12,
        bounds: bool = False,
        shards_per_worker: int = 2,
        shard_timeout: Optional[float] = None,
        deadline: Optional[float] = None,
    ) -> None:
        if mode not in ("cold", "warm"):
            raise ValueError(f"mode must be 'cold' or 'warm', got {mode!r}")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if shards_per_worker < 1:
            raise ValueError("shards_per_worker must be >= 1")
        if shard_timeout is not None and shard_timeout <= 0:
            raise ValueError("shard_timeout must be > 0 seconds")
        if deadline is not None and deadline < 0:
            raise ValueError("deadline must be >= 0 seconds")
        self.network = network
        self.seed = seed
        self.mode = mode
        self.workers = workers
        self.leaf_size = leaf_size
        self.bounds = bounds
        self.shards_per_worker = shards_per_worker
        self.shard_timeout = shard_timeout
        self.deadline = deadline
        #: Worker entry point; tests monkeypatch this with chaos
        #: variants (crashing / hanging shards) to exercise supervision.
        self._shard_runner = _run_width_shard

    @staticmethod
    def can_fork() -> bool:
        """True if this platform supports fork-based worker pools."""
        return "fork" in multiprocessing.get_all_start_methods()

    def run(
        self,
        faults: Optional[Sequence[Fault]] = None,
        *,
        max_faults: Optional[int] = None,
    ) -> WidthStudyReport:
        """Sweep the fault list; every requested fault is accounted for.

        Args:
            faults: fault list; collapsed list by default.  Always
                canonicalised to (net, value) order first, so results do
                not depend on caller ordering.
            max_faults: optional deterministic subsample cap (see
                :func:`repro.core.bounds.subsample_faults`).

        Returns:
            A :class:`WidthStudyReport`; ``samples + unobservable +
            skipped`` partition the chosen fault list exactly.
        """
        wall_start = time.perf_counter()
        if faults is None:
            faults = collapse_faults(self.network)
        chosen = subsample_faults(faults, max_faults)
        deadline_at = (
            time.monotonic() + self.deadline
            if self.deadline is not None
            else None
        )

        num_shards = max(
            1, min(self.workers * self.shards_per_worker, len(chosen))
        )
        if num_shards > 1:
            from repro.atpg.parallel import shard_faults_by_cone

            shards = shard_faults_by_cone(self.network, chosen, num_shards)
        else:
            shards = [list(chosen)] if chosen else []
        jobs = [
            _WidthShardJob(
                network=self.network,
                faults=shard,
                seed=self.seed,
                mode=self.mode,
                leaf_size=self.leaf_size,
                bounds=self.bounds,
            )
            for shard in shards
        ]
        use_pool = self.workers > 1 and self.can_fork() and len(jobs) > 1
        supervisor = ShardSupervisor(
            self._shard_runner,
            split_job=_split_width_shard,
            workers=min(self.workers, max(1, len(jobs))),
            shard_timeout=self.shard_timeout,
            deadline_at=deadline_at,
            use_processes=use_pool,
            mark_degraded=(
                self.workers > 1 and len(jobs) > 1 and not use_pool
            ),
        )
        report = supervisor.run(jobs)
        return self._merge(chosen, report, len(jobs), use_pool, wall_start)

    # ------------------------------------------------------------------
    def _merge(
        self,
        chosen: list[Fault],
        report,
        num_shards: int,
        use_pool: bool,
        wall_start: float,
    ) -> WidthStudyReport:
        """Deterministic merge: canonical fault order, sharding-invariant.

        Each per-fault sample is a pure function of (network, signature,
        seed), so sorting the union of shard results by the canonical
        fault rank reproduces the sequential sweep bit-for-bit no matter
        how shards were packed, split, or retried.
        """
        merge_start = time.perf_counter()
        rank = {fault: index for index, fault in enumerate(chosen)}
        stats = WidthStudyStats()
        samples: list[FaultWidthSample] = []
        unobservable: list[Fault] = []
        for result in report.results:
            samples.extend(result.samples)
            unobservable.extend(result.unobservable)
            stats.merge(result.stats)
        samples.sort(key=lambda sample: rank[sample.fault])
        unobservable.sort(key=lambda fault: rank[fault])

        skipped: list[tuple[Fault, str]] = []
        for failed in report.failed:
            for fault in failed.job.faults:
                skipped.append((fault, failed.reason))
        skipped.sort(key=lambda pair: rank[pair[0]])

        stats.health.merge(report.health)
        reasons: dict[str, int] = {}
        for _, reason in skipped:
            reasons[reason] = reasons.get(reason, 0) + 1
        stats.health.abort_reasons = reasons
        stats.workers = self.workers if use_pool else 1
        stats.shards = num_shards
        stats.merge_time = time.perf_counter() - merge_start
        stats.wall_time = time.perf_counter() - wall_start
        return WidthStudyReport(
            circuit=self.network.name,
            mode=self.mode,
            seed=self.seed,
            faults=chosen,
            samples=samples,
            unobservable=unobservable,
            skipped=skipped,
            stats=stats,
        )
