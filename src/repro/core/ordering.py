"""Variable orderings, including the Lemma 4.2 fault-ordering construction.

Lemma 4.2: given any ordering h of the circuit's nets and any fault ψ,
there is an ordering h_ψ of the ATPG circuit C_ψ^ATPG with

    W(C_ψ^ATPG, h_ψ) ≤ 2·W(C, h) + 2.

The constructive proof interleaves each faulty-cone copy immediately
after its good twin and appends the XOR comparison node at the end of its
cone: every good hyperedge contributes at most one crossing copy of
itself plus one mirrored copy (2·W), and the two XOR input nets add at
most one crossing each (+2).  :func:`fault_ordering` realises this
construction; the lemma's inequality is verified empirically in the test
suite over exhaustive fault lists.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.atpg.miter import FAULTY_PREFIX, XOR_PREFIX, AtpgCircuit
from repro.circuits.network import Network
from repro.core.hypergraph import circuit_hypergraph, cut_width_under_order


def topological_ordering(network: Network) -> list[str]:
    """Plain topological order — the naive baseline ordering."""
    return network.topological_order()


def reverse_topological_ordering(network: Network) -> list[str]:
    """Outputs-first order (what an output-driven search would explore)."""
    return list(reversed(network.topological_order()))


def bfs_ordering(network: Network) -> list[str]:
    """Breadth-first order from the primary inputs (level order)."""
    levels = network.levels()
    return sorted(network.topological_order(), key=lambda n: (levels[n],))


def dfs_cone_ordering(network: Network) -> list[str]:
    """Depth-first cone packing: the tree-ordering generalised to DAGs.

    Visits each output cone depth-first, descending into larger (estimated)
    subtrees first and emitting each net after its fanin — on fanout-free
    circuits this coincides with :func:`repro.core.kbounded.tree_ordering`
    and achieves the Lemma 5.2 bound.  On DAGs with local reconvergence it
    remains a strong low-cut-width candidate, and is fed to the MLA as a
    seed order.
    """
    sizes: dict[str, int] = {}
    for net in network.topological_order():
        gate = network.gate(net)
        sizes[net] = 1 + sum(sizes[src] for src in gate.inputs)

    order: list[str] = []
    visited: set[str] = set()

    def visit(root: str) -> None:
        stack: list[tuple[str, int]] = [(root, 0)]
        while stack:
            net, state = stack.pop()
            if state == 0:
                if net in visited:
                    continue
                visited.add(net)
                stack.append((net, 1))
                children = sorted(
                    network.gate(net).inputs, key=lambda c: -sizes[c]
                )
                # Push in reverse so the largest subtree is visited first.
                for child in reversed(children):
                    if child not in visited:
                        stack.append((child, 0))
            else:
                order.append(net)

    # Visit output cones in circuit order (construction/topological), so
    # cones that share logic with their neighbours stay adjacent.
    position = {net: i for i, net in enumerate(network.topological_order())}
    for output in sorted(set(network.outputs), key=lambda o: position[o]):
        visit(output)
    # Nets outside every output cone (dangling) go first; they only have
    # edges among themselves.
    outside = [net for net in network.topological_order() if net not in visited]
    return outside + order


def fault_ordering(
    atpg: AtpgCircuit, base_order: Sequence[str], output: str
) -> list[str]:
    """The Lemma 4.2 ordering h_ψ for one XOR output cone of the miter.

    Args:
        atpg: the assembled ATPG circuit.
        base_order: ordering h of the original circuit's nets (any
            superset of the cone's nets is accepted).
        output: the observing primary output o whose XOR cone to order;
            must be one of ``atpg.observing_outputs``.

    Returns:
        An ordering of exactly the nets of TFI(xor$o) in the miter:
        good nets in h-order, each faulty twin immediately after its good
        net, the XOR node last.

    Raises:
        ValueError: if ``output`` is not observed by this miter or the
            base order misses cone nets.
    """
    if output not in atpg.observing_outputs:
        raise ValueError(f"{output!r} does not observe fault {atpg.fault}")
    xor_net = XOR_PREFIX + output
    cone = atpg.network.transitive_fanin([xor_net])

    order: list[str] = []
    placed: set[str] = set()
    for net in base_order:
        if net in cone and net not in placed:
            order.append(net)
            placed.add(net)
            twin = FAULTY_PREFIX + net
            if twin in cone and twin not in placed:
                order.append(twin)
                placed.add(twin)
    remaining = sorted(cone - placed - {xor_net})
    if remaining:
        missing_good = [n for n in remaining if not n.startswith(FAULTY_PREFIX)]
        if missing_good:
            raise ValueError(
                f"base order misses cone nets, e.g. {missing_good[:3]}"
            )
        order.extend(remaining)  # faulty nets whose twins were dropped
    order.append(xor_net)
    return order


def fault_orderings(
    atpg: AtpgCircuit, base_order: Sequence[str]
) -> dict[str, list[str]]:
    """Lemma 4.3's set H_ψ: one interleaved ordering per XOR output cone."""
    return {
        output: fault_ordering(atpg, base_order, output)
        for output in atpg.observing_outputs
    }


def miter_cutwidth_under_fault_ordering(
    atpg: AtpgCircuit, base_order: Sequence[str]
) -> int:
    """W(C_ψ^ATPG, H_ψ) — the multi-output Equation 4.4 maximum.

    Each XOR cone is extracted as a single-output circuit and measured
    under its interleaved ordering.
    """
    widths = []
    for output in atpg.observing_outputs:
        xor_net = XOR_PREFIX + output
        cone = atpg.network.output_cone(xor_net)
        graph = circuit_hypergraph(cone)
        order = fault_ordering(atpg, base_order, output)
        widths.append(cut_width_under_order(graph, order))
    return max(widths, default=0)


def restrict_order(order: Sequence[str], keep: set[str]) -> list[str]:
    """The order restricted to ``keep`` (relative positions preserved)."""
    return [net for net in order if net in keep]
