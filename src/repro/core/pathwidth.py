"""Vertex separation (pathwidth) — a companion width measure.

Extension beyond the paper: the vertex-separation number of a circuit's
hypergraph under an ordering counts *active vertices* (placed vertices
that still share a hyperedge with an unplaced one) instead of crossing
edges.  Its minimum over orderings equals the pathwidth of the underlying
graph, and it is tied to cut-width by

    vs(G, h) ≤ W(G, h) · (r − 1)

where r is the maximum hyperedge size (every active vertex belongs to a
crossing edge, and a crossing edge has at most r − 1 members on the
prefix side; for ordinary graphs this is the classic vs ≤ cw).  Hence
log-bounded cut-width implies log-bounded pathwidth for bounded-fanout
circuits — connecting the paper's result to the treewidth-parameterised
SAT literature that followed it.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.hypergraph import Hypergraph

#: Exact-DP size limit (same regime as exact cut-width).
MAX_EXACT_VS = 18


def vertex_separation_under_order(
    graph: Hypergraph, order: Sequence[str]
) -> int:
    """vs(G, h): max number of active prefix vertices over all prefixes."""
    position = {vertex: i for i, vertex in enumerate(order)}
    if len(position) != graph.num_vertices or set(position) != set(
        graph.vertices
    ):
        raise ValueError("order must be a permutation of the vertices")

    # A vertex is active from its own position until the last position
    # among members of all edges containing it (exclusive).
    last_touch = {vertex: position[vertex] for vertex in graph.vertices}
    for _, members in graph.edges:
        latest = max(position[m] for m in members)
        for member in members:
            if latest > last_touch[member]:
                last_touch[member] = latest

    n = len(order)
    delta = [0] * (n + 1)
    for vertex in graph.vertices:
        start = position[vertex]
        end = last_touch[vertex]
        if end > start:
            delta[start] += 1
            delta[end] -= 1
    best = 0
    running = 0
    for i in range(n):
        running += delta[i]
        if running > best:
            best = running
    return best


def exact_min_vertex_separation(graph: Hypergraph) -> tuple[int, list[str] | None]:
    """Minimum vertex separation by subset DP (pathwidth of the graph).

    Raises:
        ValueError: above :data:`MAX_EXACT_VS` vertices.
    """
    vertices = list(graph.vertices)
    n = len(vertices)
    if n == 0:
        return 0, []
    if n > MAX_EXACT_VS:
        raise ValueError(f"exact vertex separation limited to {MAX_EXACT_VS}")

    index_of = {v: i for i, v in enumerate(vertices)}
    neighbour_mask = [0] * n
    for _, members in graph.edges:
        bits = 0
        for member in members:
            bits |= 1 << index_of[member]
        for member in members:
            neighbour_mask[index_of[member]] |= bits
    for i in range(n):
        neighbour_mask[i] &= ~(1 << i)

    full = (1 << n) - 1
    size = 1 << n
    cost = [0] * size
    choice = [0] * size

    def active(subset: int) -> int:
        count = 0
        complement = full & ~subset
        s = subset
        while s:
            bit = s & (-s)
            s ^= bit
            if neighbour_mask[bit.bit_length() - 1] & complement:
                count += 1
        return count

    for subset in range(1, size):
        boundary = active(subset)
        best = 1 << 30
        best_vertex = -1
        s = subset
        while s:
            bit = s & (-s)
            s ^= bit
            candidate = max(cost[subset ^ bit], boundary)
            if candidate < best:
                best = candidate
                best_vertex = bit.bit_length() - 1
        cost[subset] = best
        choice[subset] = best_vertex

    order_indices = []
    subset = full
    while subset:
        last = choice[subset]
        order_indices.append(last)
        subset ^= 1 << last
    order_indices.reverse()
    return cost[full], [vertices[i] for i in order_indices]
