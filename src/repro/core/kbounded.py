"""k-bounded circuits (Fujiwara; paper Section 3.2) and tree orderings.

A circuit is *k-bounded* if its nodes partition into disjoint blocks such
that each block has at most k (external) inputs and the blocks form a DAG
with no reconvergent paths — all reconvergence is local to a block.
Theorem 5.1 shows every k-bounded circuit is log-bounded-width; the
companion construction here (:func:`tree_ordering`) realises Lemma 5.2's
(k−1)·log n cut-width orderings for fanout-free (tree) circuits.
"""

from __future__ import annotations

import math
from collections.abc import Mapping
from dataclasses import dataclass

from repro.circuits.network import Network
from repro.core.hypergraph import circuit_hypergraph, cut_width_under_order


@dataclass
class BlockPartition:
    """A candidate k-bounded partition: block id per net."""

    block_of: dict[str, int]

    def blocks(self) -> dict[int, list[str]]:
        grouped: dict[int, list[str]] = {}
        for net, block in self.block_of.items():
            grouped.setdefault(block, []).append(net)
        return grouped


def check_k_bounded(
    network: Network, partition: BlockPartition, k: int
) -> tuple[bool, str]:
    """Verify the two k-boundedness conditions for a given partition.

    Returns:
        (ok, reason) — reason explains the first violation when not ok.
    """
    block_of = partition.block_of
    for net in network.nets:
        if net not in block_of:
            return False, f"net {net!r} not assigned to a block"

    # Condition 1: each block has at most k external inputs.
    block_inputs: dict[int, set[str]] = {}
    for net in network.nets:
        gate = network.gate(net)
        block = block_of[net]
        for src in gate.inputs:
            if block_of[src] != block:
                block_inputs.setdefault(block, set()).add(src)
        block_inputs.setdefault(block, set())
    for block, sources in block_inputs.items():
        if len(sources) > k:
            return False, f"block {block} has {len(sources)} inputs (> {k})"

    # Condition 2: block DAG has no reconvergent paths — i.e. between any
    # ordered block pair there is at most one distinct path.  Equivalent:
    # the number of paths from u to v is <= 1 for all pairs; we count
    # paths with DP over the block DAG (counts capped at 2).
    edges: set[tuple[int, int]] = set()
    for net in network.nets:
        gate = network.gate(net)
        dst = block_of[net]
        for src in gate.inputs:
            if block_of[src] != dst:
                edges.add((block_of[src], dst))

    blocks = sorted({b for b in block_of.values()})
    successors: dict[int, list[int]] = {b: [] for b in blocks}
    indegree: dict[int, int] = {b: 0 for b in blocks}
    for src, dst in edges:
        successors[src].append(dst)
        indegree[dst] += 1

    # Topological order of the block graph (cycle => invalid partition).
    ready = [b for b in blocks if indegree[b] == 0]
    topo: list[int] = []
    remaining = dict(indegree)
    while ready:
        block = ready.pop()
        topo.append(block)
        for nxt in successors[block]:
            remaining[nxt] -= 1
            if remaining[nxt] == 0:
                ready.append(nxt)
    if len(topo) != len(blocks):
        return False, "block graph is cyclic"

    for source in blocks:
        paths = {b: 0 for b in blocks}
        paths[source] = 1
        for block in topo:
            if paths[block] == 0:
                continue
            for nxt in successors[block]:
                paths[nxt] = min(2, paths[nxt] + paths[block])
                if paths[nxt] >= 2:
                    return (
                        False,
                        f"blocks {source}->{nxt} connected by multiple paths",
                    )
    return True, "ok"


def singleton_partition(network: Network) -> BlockPartition:
    """Every net its own block — valid exactly for fanout-free circuits."""
    return BlockPartition(
        block_of={net: i for i, net in enumerate(network.topological_order())}
    )


def greedy_k_bounded_partition(
    network: Network, k: int
) -> BlockPartition | None:
    """Heuristic search for a k-bounded partition.

    Strategy: start from singleton blocks, then repeatedly merge each
    reconvergence "diamond" into the block of its dominator while the
    input bound allows.  Returns None if the heuristic fails (which does
    *not* prove the circuit is not k-bounded — the recognition problem is
    not known to be tractable in general).
    """
    partition = singleton_partition(network)
    ok, _ = check_k_bounded(network, partition, k)
    if ok:
        return partition

    # Merge fanout-reconvergence regions: for each net with fanout > 1,
    # try absorbing its entire fanout cone up to the reconvergence point.
    block_of = dict(partition.block_of)
    changed = True
    while changed:
        changed = False
        candidate = BlockPartition(block_of=dict(block_of))
        ok, reason = check_k_bounded(network, candidate, k)
        if ok:
            return candidate
        for net in network.topological_order():
            if len(network.fanouts(net)) <= 1:
                continue
            cone = network.transitive_fanout([net])
            target = block_of[net]
            merged = dict(block_of)
            for member in cone:
                merged[member] = target
            trial = BlockPartition(block_of=merged)
            trial_ok, _ = check_k_bounded(network, trial, k)
            if trial_ok:
                return trial
            # Keep the merge only if it does not break the input bound.
            inputs = _block_external_inputs(network, merged, target)
            if len(inputs) <= k and merged != block_of:
                block_of = merged
                changed = True
                break
    final = BlockPartition(block_of=block_of)
    ok, _ = check_k_bounded(network, final, k)
    return final if ok else None


def _block_external_inputs(
    network: Network, block_of: Mapping[str, int], block: int
) -> set[str]:
    inputs: set[str] = set()
    for net in network.nets:
        if block_of[net] != block:
            continue
        for src in network.gate(net).inputs:
            if block_of[src] != block:
                inputs.add(src)
    return inputs


def is_fanout_free(network: Network) -> bool:
    """True if no net feeds more than one gate (tree circuit)."""
    return all(len(network.fanouts(net)) <= 1 for net in network.nets)


def tree_ordering(network: Network) -> list[str]:
    """Lemma 5.2's ordering for a fanout-free single-output circuit.

    Recursively order each child subtree (largest first), concatenating,
    with the root last.  For a k-ary tree this achieves cut-width at most
    (k−1)·log2(n) + O(1).

    Raises:
        ValueError: if the circuit has fanout or multiple outputs.
    """
    if not is_fanout_free(network):
        raise ValueError("tree_ordering requires a fanout-free circuit")
    if len(network.outputs) != 1:
        raise ValueError("tree_ordering requires a single-output circuit")

    sizes: dict[str, int] = {}
    for net in network.topological_order():
        gate = network.gate(net)
        sizes[net] = 1 + sum(sizes[src] for src in gate.inputs)

    order: list[str] = []

    def visit(net: str) -> None:
        gate = network.gate(net)
        children = sorted(gate.inputs, key=lambda c: -sizes[c])
        for child in children:
            visit(child)
        order.append(net)

    visit(network.outputs[0])
    # Nets outside the output cone (unused inputs) go first; they are
    # isolated vertices and cannot affect the cut-width.
    outside = [net for net in network.topological_order() if net not in set(order)]
    return outside + order


def lemma_5_2_bound(network: Network) -> float:
    """(k−1)·log2(n) for a tree circuit with max fanin k."""
    k = max(2, network.max_fanin())
    n = max(2, len(network.nets))
    return (k - 1) * math.log2(n)


def tree_cutwidth(network: Network) -> int:
    """Cut-width achieved by :func:`tree_ordering`."""
    graph = circuit_hypergraph(network)
    return cut_width_under_order(graph, tree_ordering(network))
