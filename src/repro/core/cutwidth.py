"""Circuit-level cut-width API (Definition 4.1 and Equation 4.4).

Single-output circuits map to one hypergraph; multi-output circuits are
treated as a set of single-output cones with cut-width the maximum over
cones and orderings chosen per cone (Section 4.3).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.circuits.network import Network
from repro.core.hypergraph import (
    Hypergraph,
    circuit_hypergraph,
    cut_width_under_order,
)
from repro.core.mla import MlaResult, estimate_cutwidth, min_cut_linear_arrangement
from repro.partition.exact import MAX_EXACT_VERTICES, exact_min_cutwidth


def circuit_cutwidth_under_order(network: Network, order: Sequence[str]) -> int:
    """W(C, h) for a single-output (or jointly ordered) circuit."""
    return cut_width_under_order(circuit_hypergraph(network), order)


def minimum_cutwidth(network: Network, *, seed: int = 0) -> int:
    """Estimate of W_min(C) for the circuit as one hypergraph.

    Exact (subset DP) for small circuits; otherwise the Section 5.2.1
    recursive-bisection MLA upper bound, seeded with a DFS cone packing
    of the circuit (the structural candidate the pure hypergraph view
    cannot see).
    """
    from repro.core.ordering import dfs_cone_ordering

    graph = circuit_hypergraph(network)
    candidates = [dfs_cone_ordering(network)] if network.outputs else []
    return estimate_cutwidth(graph, seed=seed, candidate_orders=candidates)


def mla_ordering(network: Network, *, seed: int = 0) -> MlaResult:
    """A concrete low-cut-width ordering of the circuit's nets."""
    from repro.core.ordering import dfs_cone_ordering

    graph = circuit_hypergraph(network)
    if graph.num_vertices <= MAX_EXACT_VERTICES:
        width, order = exact_min_cutwidth(graph)
        assert order is not None
        return MlaResult(order=order, cutwidth=width)
    candidates = [dfs_cone_ordering(network)] if network.outputs else []
    return min_cut_linear_arrangement(
        graph, seed=seed, candidate_orders=candidates
    )


@dataclass
class MultiOutputCutwidth:
    """Equation 4.4 data: per-cone orderings and the overall W(C, H)."""

    per_output: dict[str, MlaResult]

    @property
    def cutwidth(self) -> int:
        """W(C, H) = max over output cones (Equation 4.4)."""
        return max(
            (result.cutwidth for result in self.per_output.values()), default=0
        )

    @property
    def max_cone_size(self) -> int:
        """n_max of Equation 4.5: largest cone variable count."""
        return max(
            (len(result.order) for result in self.per_output.values()), default=0
        )

    def ordering_for(self, output: str) -> list[str]:
        return list(self.per_output[output].order)


def output_cone_arrangements(
    network: Network, *, seed: int = 0
) -> dict[str, MlaResult]:
    """One MLA arrangement per primary-output cone.

    The arrangement cache primitive of the width pipeline: every fault
    sub-circuit is covered by the cones of its observing outputs, so the
    per-cone orders computed here serve as warm-start seeds
    (restricted to the sub-circuit's nets) for every fault in that cone.
    """
    per_output: dict[str, MlaResult] = {}
    for output in network.outputs:
        cone = network.output_cone(output)
        per_output[output] = mla_ordering(cone, seed=seed)
    return per_output


def multi_output_cutwidth(
    network: Network, *, seed: int = 0
) -> MultiOutputCutwidth:
    """Compute W(C, H) by arranging each output cone independently."""
    return MultiOutputCutwidth(
        per_output=output_cone_arrangements(network, seed=seed)
    )


def cutwidth_of_hypergraph(graph: Hypergraph, *, seed: int = 0) -> int:
    """Direct hypergraph cut-width estimate (exact when small)."""
    return estimate_cutwidth(graph, seed=seed)
