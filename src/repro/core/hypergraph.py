"""Undirected hypergraph view of a Boolean network (paper Section 4.2).

The network is "seen as an undirected hypergraph with the signals as the
hyperedges, and the gates, inputs and outputs as the nodes".  A signal net
spans its driving gate plus every gate that reads it; direction is
deliberately discarded — this is the operational difference from the
Berman/McMillan BDD widths discussed in Section 6.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass, field

from repro.circuits.network import Network


@dataclass
class Hypergraph:
    """An undirected hypergraph over string-named vertices.

    Attributes:
        vertices: all vertices, in a deterministic order.
        edges: each hyperedge as a tuple of distinct member vertices,
            paired with a label (the signal net name for circuit graphs).
    """

    vertices: tuple[str, ...]
    edges: tuple[tuple[str, tuple[str, ...]], ...] = field(default=())
    _incidence: dict[str, list[int]] | None = field(
        default=None, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        vertex_set = set(self.vertices)
        if len(vertex_set) != len(self.vertices):
            raise ValueError("duplicate vertices")
        for label, members in self.edges:
            for member in members:
                if member not in vertex_set:
                    raise ValueError(
                        f"edge {label!r} references unknown vertex {member!r}"
                    )

    @property
    def num_vertices(self) -> int:
        return len(self.vertices)

    @property
    def num_edges(self) -> int:
        return len(self.edges)

    def incident_edges(self) -> dict[str, list[int]]:
        """Map from vertex to indices of edges containing it.

        Memoised: the graph is immutable by convention, and arrangement
        search (FM passes, degree-1 packing, window refinement) asks for
        the incidence map many times over.
        """
        if self._incidence is None:
            incidence: dict[str, list[int]] = {v: [] for v in self.vertices}
            for index, (_, members) in enumerate(self.edges):
                for member in members:
                    incidence[member].append(index)
            object.__setattr__(self, "_incidence", incidence)
        return self._incidence

    def degree(self, vertex: str) -> int:
        """Number of hyperedges containing ``vertex``."""
        return len(self.incident_edges()[vertex])

    def restricted_to(self, keep: Iterable[str]) -> "Hypergraph":
        """Sub-hypergraph induced on ``keep``; edges shrink, singletons drop."""
        keep_set = set(keep)
        vertices = tuple(v for v in self.vertices if v in keep_set)
        edges = []
        for label, members in self.edges:
            inside = tuple(m for m in members if m in keep_set)
            if len(inside) >= 2:
                edges.append((label, inside))
        return Hypergraph(vertices, tuple(edges))


def circuit_hypergraph(network: Network) -> Hypergraph:
    """The paper's hypergraph of a circuit.

    One vertex per net (i.e. per gate / primary input — the net and its
    driver are identified); one hyperedge per signal net spanning the
    driver and all its readers.  Nets with no readers yield singleton
    edges which can never cross a cut and are dropped.
    """
    vertices = tuple(network.topological_order())
    edges: list[tuple[str, tuple[str, ...]]] = []
    for net in vertices:
        readers = network.fanouts(net)
        members = (net, *readers)
        if len(members) >= 2:
            edges.append((net, members))
    return Hypergraph(vertices, tuple(edges))


def cut_width_under_order(
    graph: Hypergraph, order: Sequence[str]
) -> int:
    """W(G, h): maximum number of hyperedges crossing any gap of ``order``.

    Definition 4.1 of the paper: an edge crosses position *i* if it has one
    member at position ≤ i and another at position > i.

    Args:
        graph: the hypergraph.
        order: a permutation of the graph's vertices.

    Raises:
        ValueError: if ``order`` is not a permutation of the vertices.
    """
    profile = cut_profile(graph, order)
    return max(profile, default=0)


def cut_profile(graph: Hypergraph, order: Sequence[str]) -> list[int]:
    """Edge-crossing count after each prefix of ``order``.

    ``profile[i]`` is the number of hyperedges with a member among
    ``order[:i+1]`` and a member among ``order[i+1:]``.  The max of this
    list is the cut-width under the ordering.
    """
    position = {vertex: i for i, vertex in enumerate(order)}
    if len(position) != graph.num_vertices or set(position) != set(graph.vertices):
        raise ValueError("order must be a permutation of the hypergraph vertices")

    n = len(order)
    profile = [0] * n
    for _, members in graph.edges:
        first = min(position[m] for m in members)
        last = max(position[m] for m in members)
        if first == last:
            continue
        # Edge is live in gaps first..last-1 (after prefix ending at i).
        profile[first] += 1
        profile[last] -= 1
    # Prefix-sum the difference array.
    running = 0
    for i in range(n):
        running += profile[i]
        profile[i] = running
    return profile


def crossing_edges(
    graph: Hypergraph, prefix: Iterable[str]
) -> list[str]:
    """Labels of edges crossing the cut (prefix, rest).

    The paper's cut ``(δ_V, δ̄_V)``: an edge crosses if it has members on
    both sides.
    """
    inside = set(prefix)
    labels = []
    for label, members in graph.edges:
        has_in = any(m in inside for m in members)
        has_out = any(m not in inside for m in members)
        if has_in and has_out:
            labels.append(label)
    return labels


def cut_size(graph: Hypergraph, prefix: Iterable[str]) -> int:
    """|(δ_V, δ̄_V)|: number of distinct nets crossing the cut."""
    return len(crossing_edges(graph, prefix))


def order_positions(order: Sequence[str]) -> Mapping[str, int]:
    """Utility: vertex → position map for an ordering."""
    return {vertex: i for i, vertex in enumerate(order)}
