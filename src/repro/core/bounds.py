"""Runtime bounds of Theorem 4.1 / Equation 4.5 and the log-bounded-width
classification of Definition 5.1.

All bound evaluations are exact integer arithmetic (the quantities are
2-powers), so tests can assert the inequalities without floating-point
slack.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.atpg.faults import Fault
from repro.circuits.network import Network
from repro.core.cutwidth import multi_output_cutwidth


def theorem_4_1_bound(num_variables: int, k_fo: int, cutwidth: int) -> int:
    """RHS of Theorem 4.1: n · 2^(2·k_fo·W(C,h)) node-visit bound."""
    return num_variables * (1 << (2 * k_fo * cutwidth))


def equation_4_5_bound(
    num_outputs: int, n_max: int, k_fo: int, cutwidth: int
) -> int:
    """RHS of Equation 4.5: p · n_max · 2^(2·k_fo·W(C,H))."""
    return num_outputs * n_max * (1 << (2 * k_fo * cutwidth))


def lemma_4_2_bound(base_cutwidth: int) -> int:
    """RHS of Lemma 4.2/4.3: 2·W(C,h) + 2."""
    return 2 * base_cutwidth + 2


@dataclass
class FaultWidthSample:
    """One Figure-8 data point: a fault's sub-circuit size and cut-width.

    ``k_fo`` and ``theorem_bound`` are filled only when the width
    pipeline is asked to evaluate Theorem 4.1 per point
    (``n · 2^(2·k_fo·W)`` with the sub-circuit's own max fanout).
    """

    fault: Fault
    sub_circuit_size: int
    cutwidth: int
    k_fo: int | None = None
    theorem_bound: int | None = None


def subsample_faults(
    faults: list[Fault] | None, max_faults: int | None
) -> list[Fault]:
    """Deterministic, order-insensitive even subsample of a fault list.

    The list is first canonicalised to (net, value) order — the order
    :func:`repro.atpg.faults.collapse_faults` already produces — so the
    selection depends only on the fault *set*, never on caller ordering.
    With a cap, every ``len/max``-th fault of the canonical order is
    taken (``faults[int(i * step)]``), spreading picks evenly across the
    circuit; without one the canonical list is returned whole.
    """
    if faults is None:
        return []
    ordered = sorted(faults)
    if max_faults is not None and len(ordered) > max_faults:
        step = len(ordered) / max_faults
        ordered = [ordered[int(i * step)] for i in range(max_faults)]
    return ordered


def fault_width_samples(
    network: Network,
    *,
    faults: list[Fault] | None = None,
    seed: int = 0,
    max_faults: int | None = None,
) -> list[FaultWidthSample]:
    """Cut-width of C_ψ^sub versus its size, per fault (Section 5.2.2).

    Delegates to the :class:`~repro.core.width_pipeline.
    WidthAnalysisPipeline` in cold (parity) mode, so faults sharing a
    sub-circuit hit the signature memo instead of re-running the MLA;
    per-fault results are bit-identical to the historical from-scratch
    loop.

    Args:
        network: the (decomposed) circuit.
        faults: fault list; collapsed list by default.  Canonicalised to
            (net, value) order before subsampling, so the selection is
            caller-order-insensitive (see :func:`subsample_faults`).
        seed: RNG seed for the MLA estimator.
        max_faults: optional cap (evenly subsampled) to bound runtime on
            large circuits.

    Returns:
        One sample per observable fault.
    """
    from repro.core.width_pipeline import WidthAnalysisPipeline

    report = WidthAnalysisPipeline(network, seed=seed).run(
        faults=faults, max_faults=max_faults
    )
    return report.samples


@dataclass
class LogBoundedWidthVerdict:
    """Empirical Definition 5.1 check for one circuit.

    ``ratios`` holds W(C_ψ^sub) / log2(|C_ψ^sub|) per fault; the circuit
    is judged log-bounded-width (empirically) when the ratios do not grow
    with size — summarised by ``max_ratio`` and the fitted model from the
    Figure-8 analysis.
    """

    circuit: str
    samples: list[FaultWidthSample]
    max_ratio: float
    mean_ratio: float

    @property
    def plausibly_log_bounded(self) -> bool:
        """Heuristic verdict: all ratios below a generous constant."""
        return self.max_ratio <= 8.0


def log_bounded_width_verdict(
    network: Network, *, seed: int = 0, max_faults: int | None = None
) -> LogBoundedWidthVerdict:
    """Evaluate the Definition 5.1 ratio W / log2(size) across all faults."""
    samples = fault_width_samples(network, seed=seed, max_faults=max_faults)
    ratios = [
        s.cutwidth / max(1.0, math.log2(s.sub_circuit_size))
        for s in samples
        if s.sub_circuit_size >= 2
    ]
    return LogBoundedWidthVerdict(
        circuit=network.name,
        samples=samples,
        max_ratio=max(ratios, default=0.0),
        mean_ratio=(sum(ratios) / len(ratios)) if ratios else 0.0,
    )


def lemma_5_1_runtime_bound(network: Network, *, seed: int = 0) -> int:
    """Polynomial node bound for a log-bounded-width circuit's ATPG.

    Instantiates Equation 4.5 with the measured W(C, H): if W is
    O(log n), this value is polynomial in n — the content of Lemma 5.1.
    """
    k_fo = max(1, network.max_fanout())
    result = multi_output_cutwidth(network, seed=seed)
    return equation_4_5_bound(
        num_outputs=max(1, len(network.outputs)),
        n_max=max(1, result.max_cone_size),
        k_fo=k_fo,
        cutwidth=result.cutwidth,
    )
