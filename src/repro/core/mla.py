"""Approximate min-cut linear arrangement (paper Section 5.2.1).

The paper estimates circuit cut-width as "the value of the max-cut
obtained under a min-cut linear arrangement", approximated by a placement
"based on recursive mincut bipartitioning, until the partitions are
sufficiently small", followed by "an exact MLA for each of these
partitions" — hMETIS doing the bipartitioning.  We implement the same
recipe with our multilevel FM partitioner plus two standard quality
measures the 1990s placement literature used:

* **terminal propagation** — each recursive split sees two locked anchor
  vertices standing for the already-placed context left and right of the
  current block, so cuts line up globally;
* **candidate seeding** — callers may pass structure-derived candidate
  orders (e.g. a DFS cone packing of the circuit); the best of all
  candidates is kept and locally refined.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.core.hypergraph import (
    Hypergraph,
    cut_profile,
    cut_width_under_order,
)
from repro.partition.exact import MAX_EXACT_VERTICES, exact_min_cutwidth
from repro.partition.multilevel import multilevel_bisect

_LEFT_ANCHOR = "$anchorL"
_RIGHT_ANCHOR = "$anchorR"


@dataclass
class MlaResult:
    """An arrangement and its achieved cut-width."""

    order: list[str]
    cutwidth: int

    def profile(self, graph: Hypergraph) -> list[int]:
        """Cut size after every prefix of the arrangement."""
        return cut_profile(graph, self.order)


def min_cut_linear_arrangement(
    graph: Hypergraph,
    *,
    leaf_size: int = 12,
    seed: int = 0,
    refine: bool = True,
    candidate_orders: Sequence[Sequence[str]] = (),
) -> MlaResult:
    """Recursive-bisection MLA with exact leaf arrangements.

    Args:
        graph: hypergraph to arrange.
        leaf_size: partitions at or below this size are solved exactly
            (must not exceed :data:`MAX_EXACT_VERTICES`).
        seed: RNG seed for the partitioner.
        refine: run a sliding-window local improvement afterwards.
        candidate_orders: additional full orderings to consider (e.g.
            DFS cone packings); the overall best order wins.

    Returns:
        An :class:`MlaResult`; ``cutwidth`` is an upper bound on the true
        minimum cut-width.
    """
    if leaf_size > MAX_EXACT_VERTICES:
        raise ValueError(
            f"leaf_size must be <= {MAX_EXACT_VERTICES}, got {leaf_size}"
        )
    if graph.num_vertices == 0:
        return MlaResult(order=[], cutwidth=0)

    orders: list[list[str]] = [
        _arrange(graph, list(graph.vertices), set(), set(), leaf_size, seed),
        # The vertex order itself: for bottom-up-built circuits this is the
        # construction order, whose locality is often hard to beat.
        list(graph.vertices),
    ]
    vertex_set = set(graph.vertices)
    for candidate in candidate_orders:
        if _is_permutation(candidate, vertex_set):
            orders.append(list(candidate))
    return _best_of_pool(graph, orders, refine=refine, window=min(8, leaf_size))


def warm_min_cut_arrangement(
    graph: Hypergraph,
    seed_orders: Sequence[Sequence[str]],
    *,
    leaf_size: int = 12,
    seed: int = 0,
    refine: bool = True,
    candidate_orders: Sequence[Sequence[str]] = (),
) -> MlaResult:
    """Arrangement seeded from already-computed orders, skipping recursion.

    The warm path of the width pipeline: a fault's sub-circuit is a
    subset of its enclosing output cones, so restricting a cached cone
    arrangement to the sub-circuit (``restrict_order``) gives a strong
    starting order — Lemma 4.2's interleave argument is exactly why a
    good enclosing order stays good on the subset.  The recursive
    bisection of :func:`min_cut_linear_arrangement` is replaced by a
    best-of-pool selection over the seeds plus degree-1 packing and the
    sliding-window polish.

    Falls back to the cold path when no seed order is a permutation of
    the graph's vertices, and to the exact DP when the graph is small
    enough (``MAX_EXACT_VERTICES``) — both keep the result an upper
    bound of the same quality class as the cold estimator.

    Args:
        graph: hypergraph to arrange.
        seed_orders: candidate full orderings from enclosing-cone caches.
        leaf_size: window size control (and cold-fallback leaf size).
        seed: RNG seed used only by the cold fallback.
        refine: run the sliding-window polish on the best seed.
        candidate_orders: extra orderings to consider alongside the seeds
            (these alone do not count as a warm start).
    """
    if leaf_size > MAX_EXACT_VERTICES:
        raise ValueError(
            f"leaf_size must be <= {MAX_EXACT_VERTICES}, got {leaf_size}"
        )
    if graph.num_vertices == 0:
        return MlaResult(order=[], cutwidth=0)
    if graph.num_vertices <= MAX_EXACT_VERTICES:
        width, order = exact_min_cutwidth(graph)
        assert order is not None
        return MlaResult(order=order, cutwidth=width)

    vertex_set = set(graph.vertices)
    seeds = [list(c) for c in seed_orders if _is_permutation(c, vertex_set)]
    if not seeds:
        return min_cut_linear_arrangement(
            graph,
            leaf_size=leaf_size,
            seed=seed,
            refine=refine,
            candidate_orders=candidate_orders,
        )
    orders = seeds + [list(graph.vertices)]
    for candidate in candidate_orders:
        if _is_permutation(candidate, vertex_set):
            orders.append(list(candidate))
    return _best_of_pool(graph, orders, refine=refine, window=min(8, leaf_size))


def _is_permutation(candidate: Sequence[str], vertex_set: set[str]) -> bool:
    return set(candidate) == vertex_set and len(candidate) == len(vertex_set)


def _best_of_pool(
    graph: Hypergraph,
    orders: list[list[str]],
    *,
    refine: bool,
    window: int,
) -> MlaResult:
    """Pick the best order from a pool, after packing and optional polish.

    Degree-1 packing almost always helps (it shortens every packed
    vertex's single edge) but interacting moves can occasionally hurt,
    so keep the unpacked originals in the pool too.
    """
    orders = orders + [_pack_degree_one(graph, order) for order in orders]
    best = min(orders, key=lambda o: cut_width_under_order(graph, o))
    if refine and len(best) > 2:
        best = _window_refine(graph, best, window=window)
    return MlaResult(order=best, cutwidth=cut_width_under_order(graph, best))


def _arrange(
    graph: Hypergraph,
    subset: list[str],
    left_context: set[str],
    right_context: set[str],
    leaf_size: int,
    seed: int,
) -> list[str]:
    """Arrange ``subset`` given already-placed context on either side."""
    if len(subset) <= 1:
        return list(subset)
    if len(subset) <= leaf_size:
        _, order = exact_min_cutwidth(graph.restricted_to(subset))
        assert order is not None
        # Restore vertices isolated within the leaf (dropped by
        # restricted_to when all their edges leave the subset).
        missing = [v for v in subset if v not in set(order)]
        return order + missing

    sub = _context_hypergraph(graph, subset, left_context, right_context)
    locked_left = (_LEFT_ANCHOR,) if _LEFT_ANCHOR in sub.vertices else ()
    locked_right = (_RIGHT_ANCHOR,) if _RIGHT_ANCHOR in sub.vertices else ()
    result = multilevel_bisect(
        sub,
        seed=seed,
        locked_left=locked_left,
        locked_right=locked_right,
    )
    left, right = result.left, result.right
    if not left or not right:
        half = len(subset) // 2
        left, right = subset[:half], subset[half:]

    left_order = _arrange(
        graph,
        left,
        left_context,
        right_context | set(right),
        leaf_size,
        seed + 1,
    )
    right_order = _arrange(
        graph,
        right,
        left_context | set(left),
        right_context,
        leaf_size,
        seed + 2,
    )
    return left_order + right_order


def _context_hypergraph(
    graph: Hypergraph,
    subset: list[str],
    left_context: set[str],
    right_context: set[str],
) -> Hypergraph:
    """Induced sub-hypergraph plus terminal-propagation anchor vertices."""
    inside = set(subset)
    edges: list[tuple[str, tuple[str, ...]]] = []
    uses_left = uses_right = False
    for label, members in graph.edges:
        local = [m for m in members if m in inside]
        if not local:
            continue
        extended = list(local)
        if any(m in left_context for m in members):
            extended.append(_LEFT_ANCHOR)
            uses_left = True
        if any(m in right_context for m in members):
            extended.append(_RIGHT_ANCHOR)
            uses_right = True
        if len(extended) >= 2:
            edges.append((label, tuple(extended)))
    vertices = list(subset)
    if uses_left:
        vertices.append(_LEFT_ANCHOR)
    if uses_right:
        vertices.append(_RIGHT_ANCHOR)
    return Hypergraph(tuple(vertices), tuple(edges))


def _pack_degree_one(graph: Hypergraph, order: list[str]) -> list[str]:
    """Move each degree-1 vertex right next to a member of its only edge.

    Safe normalisation: removing a vertex from a linear order merges two
    adjacent gaps (never raising any crossing count) and re-inserting it
    splits one gap into two whose crossing sets differ only by the
    vertex's single edge — which now spans minimally.  Primary inputs
    read once and unread output gates are the common cases; circuits
    built "all PIs first" benefit enormously.
    """
    incidence = graph.incident_edges()
    movable: dict[str, int] = {}
    for vertex in graph.vertices:
        if len(incidence[vertex]) == 1:
            movable[vertex] = incidence[vertex][0]

    # Keep at least one member of every edge unmoved to anchor it.
    anchored: set[str] = set()
    for vertex in list(movable):
        edge_index = movable[vertex]
        members = graph.edges[edge_index][1]
        if all(m in movable for m in members):
            anchor = members[0]
            anchored.add(anchor)
    for vertex in anchored:
        movable.pop(vertex, None)

    backbone = [v for v in order if v not in movable]
    position = {v: i for i, v in enumerate(backbone)}
    inserts: dict[int, list[str]] = {}
    front: list[str] = []
    for vertex in order:
        edge_index = movable.get(vertex)
        if edge_index is None:
            continue
        members = graph.edges[edge_index][1]
        others = [position[m] for m in members if m in position]
        if not others:
            front.append(vertex)
            continue
        inserts.setdefault(min(others), []).append(vertex)

    result = list(front)
    for index, vertex in enumerate(backbone):
        result.extend(inserts.get(index, ()))
        result.append(vertex)
    return result


def _window_refine(
    graph: Hypergraph, order: list[str], window: int
) -> list[str]:
    """Slide a window over the order, exactly re-arranging each window.

    A candidate window re-ordering is accepted only when the *global*
    cut-width does not increase, so external edges are always accounted
    for.
    """
    best_order = order
    best_width = cut_width_under_order(graph, order)
    step = max(1, window // 2)
    for start in range(0, max(1, len(order) - window + 1), step):
        segment = best_order[start : start + window]
        if len(segment) < 3:
            continue
        sub = graph.restricted_to(segment)
        _, local = exact_min_cutwidth(sub)
        if local is None:
            continue
        # Vertices isolated in the window keep their relative slot order.
        missing = [v for v in segment if v not in set(local)]
        candidate = (
            best_order[:start] + local + missing + best_order[start + window :]
        )
        width = cut_width_under_order(graph, candidate)
        if width < best_width:
            best_order = candidate
            best_width = width
    return best_order


def window_refine(
    graph: Hypergraph, order: Sequence[str], *, window: int = 8
) -> list[str]:
    """Public sliding-window polish: never worsens the cut-width.

    Exposed for callers (the width pipeline) that want to cheaply improve
    an externally-produced arrangement without a full MLA run.
    """
    return _window_refine(graph, list(order), window)


def estimate_cutwidth(
    graph: Hypergraph,
    *,
    seed: int = 0,
    leaf_size: int = 12,
    candidate_orders: Sequence[Sequence[str]] = (),
) -> int:
    """Cut-width estimate: exact when small, MLA upper bound otherwise."""
    if graph.num_vertices <= MAX_EXACT_VERTICES:
        width, _ = exact_min_cutwidth(graph, return_order=False)
        return width
    return min_cut_linear_arrangement(
        graph, seed=seed, leaf_size=leaf_size, candidate_orders=candidate_orders
    ).cutwidth
