"""Command-line interface: ``python -m repro <command>``.

Commands regenerate the paper's figures (as text reports) and expose the
ATPG/cut-width tooling on user netlists.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

#: Unified abort/exit semantics shared by the ``atpg``, ``width-study``,
#: and ``fig8`` subcommands: a netlist that fails structural validation
#: exits 2, a run stopped by ``--deadline`` exits 3, and both print a
#: machine-greppable ``abort: <reason>`` line to stderr.  The reason
#: strings are the same constants the engines record in
#: ``RunHealth.abort_reasons`` (see :mod:`repro.atpg.supervisor`).
EXIT_OK = 0
EXIT_VALIDATION = 2
EXIT_DEADLINE = 3
ABORT_VALIDATION = "validation_failed"
ABORT_DEADLINE = "deadline_exceeded"


def _positive_int(text: str) -> int:
    """Argparse type for strictly positive integer options."""
    try:
        value = int(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"not an integer: {text!r}") from exc
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _bounded_int(maximum: int, what: str):
    """Argparse type: strictly positive int with an absurdity ceiling.

    Perf knobs fail here, at parse time with exit code 2, instead of
    deep inside the engine (or, worse, succeeding while quietly
    thrashing — a million-bit fault-simulation word is "valid").
    """

    def parse(text: str) -> int:
        value = _positive_int(text)
        if value > maximum:
            raise argparse.ArgumentTypeError(
                f"absurd {what}: {value} (max {maximum})"
            )
        return value

    return parse


def _positive_float(text: str) -> float:
    """Argparse type for strictly positive float options."""
    try:
        value = float(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"not a number: {text!r}") from exc
    if not value > 0 or value != value or value == float("inf"):
        raise argparse.ArgumentTypeError(f"must be > 0, got {text}")
    return value


def _nonnegative_float(text: str) -> float:
    """Argparse type for float options that allow zero."""
    try:
        value = float(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"not a number: {text!r}") from exc
    if not value >= 0 or value == float("inf"):
        raise argparse.ArgumentTypeError(f"must be >= 0, got {text}")
    return value


def _abort(reason: str) -> None:
    """Print the unified abort line (``abort: <reason>``) to stderr."""
    print(f"abort: {reason}", file=sys.stderr)


def _cmd_example(args: argparse.Namespace) -> int:
    from repro.experiments.example_circuit import run_example

    print(run_example().render())
    return 0


def _cmd_fig1(args: argparse.Namespace) -> int:
    from repro.experiments.fig1_tegus import run_fig1

    report = run_fig1(
        suites=tuple(args.suite),
        solver=args.solver,
        max_faults_per_circuit=args.max_faults,
    )
    print(report.render())
    if args.plot:
        print(report.render_plot())
    return 0


def _cmd_fig8(args: argparse.Namespace) -> int:
    import time

    from repro.experiments.fig8_cutwidth_study import run_fig8

    deadline_at = (
        time.monotonic() + args.deadline if args.deadline is not None else None
    )
    deadline_hit = False
    for suite in args.suite:
        remaining = None
        if deadline_at is not None:
            remaining = max(0.0, deadline_at - time.monotonic())
        report = run_fig8(
            suite,
            max_faults_per_circuit=args.max_faults,
            seed=args.seed,
            workers=args.workers,
            deadline=remaining,
        )
        print(report.render())
        if not report.fits():
            print(
                f"warning: fig8 ({suite}) has only {report.n_usable} usable "
                "points (need >= 4); curve fits skipped",
                file=sys.stderr,
            )
        if args.plot:
            print(report.render_plot())
        deadline_hit = deadline_hit or report.deadline_hit
    if deadline_hit:
        _abort(ABORT_DEADLINE)
        return EXIT_DEADLINE
    return EXIT_OK


def _cmd_gen_study(args: argparse.Namespace) -> int:
    from repro.experiments.fig_generated import run_generated_study

    report = run_generated_study(
        sizes=args.sizes, faults_per_circuit=args.max_faults, seed=args.seed
    )
    print(report.render())
    return 0


def _cmd_phase_transition(args: argparse.Namespace) -> int:
    from repro.experiments.phase_transition import run_phase_transition

    report = run_phase_transition(
        local_levels=args.local_levels,
        global_levels=args.global_levels,
        sizes=args.sizes,
        faults_per_circuit=args.max_faults,
    )
    print(report.render())
    return 0


def _cmd_bdd_compare(args: argparse.Namespace) -> int:
    from repro.experiments.bdd_comparison import run_bdd_comparison

    print(run_bdd_comparison().render())
    return 0


def _cmd_width_effort(args: argparse.Namespace) -> int:
    from repro.experiments.width_vs_effort import run_width_vs_effort
    from repro.gen.benchmarks import load_circuit

    for name in args.circuit:
        network = load_circuit(args.suite_name, name)
        report = run_width_vs_effort(network, max_faults=args.max_faults)
        print(report.render())
    return 0


def _cmd_suite_table(args: argparse.Namespace) -> int:
    from repro.experiments.suite_table import run_suite_table

    for suite in args.suite:
        report = run_suite_table(
            suite, max_faults_per_circuit=args.max_faults
        )
        print(report.render())
    return 0


def _cmd_ablations(args: argparse.Namespace) -> int:
    from repro.experiments.ablations import run_ablations

    print(run_ablations().render())
    return 0


def _load_netlist(path: str):
    from repro.io.bench import load_bench
    from repro.io.blif import load_blif
    from repro.io.verilog import load_verilog

    suffix = Path(path).suffix.lower()
    if suffix == ".blif":
        return load_blif(path)
    if suffix in (".v", ".sv"):
        return load_verilog(path)
    return load_bench(path)


def _bench_payload(summary, solver: str, solver_mode: str = "incremental") -> dict:
    """The ``--bench-json`` document for an ATPG summary.

    Schema (documented in README.md § Performance):
    ``circuit``/``solver``/``solver_mode``/``faults``/``status_counts``/
    ``fault_coverage`` describe the run outcome; ``wall_time_s`` and
    ``instances_per_sec`` the throughput; ``stats`` the per-stage times,
    solver search rates, and cache/parallel counters (see
    ``EngineStats.as_dict``); ``worker_stats`` the per-shard stage times
    of a parallel run.
    """
    wall = summary.stats.wall_time
    payload = {
        "circuit": summary.circuit,
        "solver": solver,
        "solver_mode": solver_mode,
        "faults": len(summary.records),
        "status_counts": summary.status_counts(),
        "fault_coverage": summary.fault_coverage,
        "wall_time_s": wall,
        "instances_per_sec": len(summary.records) / wall if wall else 0.0,
        "stats": summary.stats.as_dict(),
    }
    if summary.worker_stats:
        payload["worker_stats"] = [ws.as_dict() for ws in summary.worker_stats]
    return payload


def _cmd_atpg(args: argparse.Namespace) -> int:
    from repro.atpg.engine import AtpgEngine, FaultStatus
    from repro.atpg.parallel import ParallelAtpgEngine
    from repro.circuits.decompose import tech_decompose
    from repro.circuits.validate import ValidationError

    network = _load_netlist(args.netlist)
    if args.decompose:
        network = tech_decompose(network)
    validate = not args.no_validate
    # Checkpoint/resume and shard supervision live in the parallel
    # engine; it runs in-process when workers == 1, so any of those
    # flags routes through it.
    supervised = (
        args.workers > 1
        or args.resume is not None
        or args.checkpoint is not None
        or args.shard_timeout is not None
    )
    try:
        if supervised:
            engine = ParallelAtpgEngine(
                network,
                workers=args.workers,
                solver=args.solver,
                max_conflicts=args.max_conflicts_per_fault,
                drop_block_size=args.block_size,
                solver_mode=args.solver_mode,
                validate=validate,
                deadline=args.deadline,
                shard_timeout=args.shard_timeout,
                certify=args.certify,
                mem_budget_mb=args.mem_budget_mb,
                share_learned=args.share_learned,
                order=args.order,
                budget_policy=args.budget_policy,
                hardness_model=args.hardness_model,
            )
        else:
            engine = AtpgEngine(
                network,
                solver=args.solver,
                max_conflicts=args.max_conflicts_per_fault,
                drop_block_size=args.block_size,
                order=args.order,
                solver_mode=args.solver_mode,
                validate=validate,
                deadline=args.deadline,
                certify=args.certify,
                mem_budget_mb=args.mem_budget_mb,
                share_learned=args.share_learned,
                budget_policy=args.budget_policy,
                hardness_model=args.hardness_model,
            )
    except ValidationError as exc:
        print(f"error: invalid netlist {args.netlist}: {exc}", file=sys.stderr)
        _abort(ABORT_VALIDATION)
        return EXIT_VALIDATION
    if supervised:
        checkpoint = args.checkpoint if args.checkpoint else args.resume
        summary = engine.run(
            fault_dropping=not args.no_dropping,
            resume_from=args.resume,
            checkpoint_to=checkpoint,
        )
    else:
        summary = engine.run(fault_dropping=not args.no_dropping)
    print(f"circuit {network.name}: {len(summary.records)} faults")
    for status in FaultStatus:
        count = len(summary.by_status(status))
        if count:
            print(f"  {status.value}: {count}")
    print(f"  fault coverage: {summary.fault_coverage:.1%}")
    stats = summary.stats
    stages = " ".join(
        f"{name}={seconds:.3f}s" for name, seconds in stats.stage_times().items()
    )
    print(f"  stages: {stages} (wall {stats.wall_time:.3f}s)")
    print(
        f"  cnf cache: {stats.cache_hits} hits / {stats.cache_misses} misses "
        f"({stats.cache_hit_rate:.1%}); sat calls: {stats.sat_calls}"
    )
    rates = stats.solver_rates()
    print(
        f"  solver: {stats.propagations} props, {stats.decisions} decisions, "
        f"{stats.conflicts} conflicts "
        f"({rates['propagations_per_sec']:,.0f} props/s)"
    )
    if stats.workers > 1:
        print(
            f"  parallel: {stats.workers} workers, {stats.shards} shards, "
            f"{stats.replay_solves} replay solves"
        )
    if stats.budget_escalations or stats.hard_routed:
        print(
            f"  hardness: {stats.budget_escalations} budget escalations, "
            f"{stats.hard_routed} hard-routed faults"
        )
    if stats.shared_promoted or stats.shared_injected:
        print(
            f"  clause sharing: {stats.shared_promoted} promoted, "
            f"{stats.shared_injected} injected, "
            f"hit rate {stats.shared_hit_rate:.1%}"
        )
    health = stats.health
    if args.certify != "off":
        print(
            f"  certification ({args.certify}): {health.certified} certified, "
            f"{health.uncertified} uncertified; "
            f"disagreements={health.disagreements} "
            f"escalations={health.escalations}"
        )
    if not health.clean:
        reasons = " ".join(
            f"{reason}={count}"
            for reason, count in sorted(health.abort_reasons.items())
        )
        print(
            f"  health: retries={health.retries} "
            f"timeouts={health.timed_out_shards} "
            f"crashes={health.crashed_shards} "
            f"splits={health.shard_splits} "
            f"degraded={health.degraded} "
            f"deadline_hit={health.deadline_hit}"
            + (f" aborts[{reasons}]" if reasons else "")
        )
    if args.bench_json:
        from repro.io.atomic import atomic_write_json

        payload = _bench_payload(summary, args.solver, args.solver_mode)
        atomic_write_json(args.bench_json, payload)
        print(f"  bench json -> {args.bench_json}")
    if args.compact:
        from repro.atpg.compaction import reverse_order_compaction
        from repro.atpg.faults import collapse_faults

        patterns = summary.tests()
        compacted = reverse_order_compaction(
            network, collapse_faults(network), patterns
        )
        print(f"  patterns: {len(patterns)} -> {len(compacted)} after "
              "reverse-order compaction")
    if health.deadline_hit:
        _abort(ABORT_DEADLINE)
        return EXIT_DEADLINE
    return EXIT_OK


def _width_bench_payload(report) -> dict:
    """The ``--bench-json`` document for a width study.

    Schema (documented in README.md § Performance): run identity
    (``circuit``/``mode``/``seed``), outcome counts, ``max_cutwidth``,
    throughput, and ``stats`` with per-stage times, the two cache hit
    counters, and supervision health (``WidthStudyStats.as_dict``).
    """
    payload = report.as_dict()
    wall = report.stats.wall_time
    payload["faults_per_sec"] = len(report.faults) / wall if wall else 0.0
    return payload


def _cmd_width_study(args: argparse.Namespace) -> int:
    from repro.circuits.decompose import tech_decompose
    from repro.circuits.validate import ValidationError, check_network
    from repro.core.width_pipeline import WidthAnalysisPipeline

    if args.netlist is not None:
        networks = [_load_netlist(args.netlist)]
        if args.decompose:
            networks = [tech_decompose(networks[0])]
    else:
        from repro.gen.benchmarks import load_circuit

        networks = [
            load_circuit(args.suite_name, name) for name in args.circuit
        ]

    # The width pipeline itself does no structural validation, so the
    # CLI enforces the same trust boundary as ``atpg``: a cyclic or
    # undriven netlist fails fast with the unified validation exit code.
    if not args.no_validate:
        for network in networks:
            try:
                check_network(network)
            except ValidationError as exc:
                print(
                    f"error: invalid netlist {network.name}: {exc}",
                    file=sys.stderr,
                )
                _abort(ABORT_VALIDATION)
                return EXIT_VALIDATION

    max_faults = None if args.no_cap else args.max_faults
    deadline_hit = False
    payloads = []
    for network in networks:
        pipeline = WidthAnalysisPipeline(
            network,
            seed=args.seed,
            mode=args.mla,
            workers=args.workers,
            bounds=args.bounds,
            shard_timeout=args.shard_timeout,
            deadline=args.deadline,
        )
        report = pipeline.run(max_faults=max_faults)
        stats = report.stats
        print(
            f"circuit {report.circuit}: {len(report.faults)} faults -> "
            f"{len(report.samples)} samples, "
            f"{len(report.unobservable)} unobservable, "
            f"{len(report.skipped)} skipped"
        )
        print(
            f"  max cut-width: {report.max_cutwidth} "
            f"(mode={report.mode}, seed={report.seed})"
        )
        stages = " ".join(
            f"{name}={seconds:.3f}s"
            for name, seconds in stats.stage_times().items()
        )
        print(f"  stages: {stages} (wall {stats.wall_time:.3f}s)")
        print(
            f"  sub-circuit memo: {stats.sub_cache_hits} hits / "
            f"{stats.sub_cache_misses} misses ({stats.cache_hit_rate:.1%})"
        )
        if args.mla == "warm":
            print(
                f"  cone cache: {stats.cone_cache_hits} hits / "
                f"{stats.cone_cache_misses} misses; "
                f"{stats.warm_starts} warm starts, "
                f"{stats.cold_runs} cold runs"
            )
        if stats.workers > 1:
            print(f"  parallel: {stats.workers} workers, {stats.shards} shards")
        if args.bounds and report.samples:
            worst = max(report.samples, key=lambda s: s.theorem_bound or 0)
            bound = worst.theorem_bound or 0
            # Bounds are exact (huge) ints; 10^300+ overflows float repr.
            text = f"{bound:.3e}" if bound < 10**300 else f"~10^{len(str(bound)) - 1}"
            print(
                f"  largest Theorem 4.1 bound: {text} "
                f"({worst.fault}, n={worst.sub_circuit_size}, "
                f"k_fo={worst.k_fo}, W={worst.cutwidth})"
            )
        health = stats.health
        if not health.clean:
            print(
                f"  health: retries={health.retries} "
                f"timeouts={health.timed_out_shards} "
                f"crashes={health.crashed_shards} "
                f"splits={health.shard_splits} "
                f"degraded={health.degraded} "
                f"deadline_hit={health.deadline_hit}"
            )
        deadline_hit = deadline_hit or health.deadline_hit
        payloads.append(_width_bench_payload(report))
    if args.bench_json:
        from repro.io.atomic import atomic_write_json

        document = payloads[0] if len(payloads) == 1 else payloads
        atomic_write_json(args.bench_json, document)
        print(f"  bench json -> {args.bench_json}")
    if deadline_hit:
        _abort(ABORT_DEADLINE)
        return EXIT_DEADLINE
    return EXIT_OK


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.circuits.decompose import tech_decompose
    from repro.circuits.stats import profile

    network = _load_netlist(args.netlist)
    if args.decompose:
        network = tech_decompose(network)
    print(profile(network).render())
    return 0


def _cmd_cutwidth(args: argparse.Namespace) -> int:
    from repro.circuits.decompose import tech_decompose
    from repro.core.cutwidth import multi_output_cutwidth

    network = _load_netlist(args.netlist)
    if args.decompose:
        network = tech_decompose(network)
    result = multi_output_cutwidth(network, seed=args.seed)
    print(f"circuit {network.name}: W(C, H) = {result.cutwidth}")
    for output, mla in sorted(result.per_output.items()):
        print(f"  cone {output}: |V|={len(mla.order)} W={mla.cutwidth}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service.budgets import BackpressureConfig, TenantPolicy
    from repro.service.server import ServiceConfig, serve

    config = ServiceConfig(
        data_dir=args.data_dir,
        host=args.host,
        port=args.port,
        max_concurrent_jobs=args.max_concurrent_jobs,
        workers_per_job=args.workers,
        drain_timeout_s=args.drain_timeout,
        cache_max_mb=args.cache_max_mb,
        node_id=args.node_id,
        lease_ttl_s=args.lease_ttl,
        scan_interval_s=args.scan_interval,
        backpressure=BackpressureConfig(
            hard_limit=args.queue_limit,
            soft_limit=args.queue_soft_limit,
            degraded_max_conflicts=args.degraded_max_conflicts,
            retry_after_s=args.retry_after,
        ),
        default_policy=TenantPolicy(
            max_conflicts=args.tenant_max_conflicts,
            max_deadline_s=args.tenant_max_deadline,
            max_queued=args.tenant_max_queued,
        ),
    )
    return serve(config)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Why is ATPG Easy?' (DAC 1999)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("example", help="Figures 4-7 running example")
    p.set_defaults(func=_cmd_example)

    p = sub.add_parser("fig1", help="Figure 1: solve effort vs instance size")
    p.add_argument("--suite", action="append", default=None)
    p.add_argument("--solver", default="cdcl")
    p.add_argument("--max-faults", type=int, default=None)
    p.add_argument("--plot", action="store_true")
    p.set_defaults(func=_cmd_fig1)

    p = sub.add_parser("fig8", help="Figure 8: cut-width vs size study")
    p.add_argument("--suite", action="append", default=None)
    p.add_argument("--max-faults", type=int, default=60)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--workers", type=_bounded_int(256, "worker count"), default=1,
        help="worker processes per circuit width sweep",
    )
    p.add_argument(
        "--deadline", type=_nonnegative_float, default=None, metavar="SECONDS",
        help="run-level wall-clock budget across all suites; past it "
        "remaining circuits are skipped and the command exits 3 "
        "(abort: deadline_exceeded)",
    )
    p.add_argument("--plot", action="store_true")
    p.set_defaults(func=_cmd_fig8)

    p = sub.add_parser(
        "width-study",
        help="per-fault cut-width sweep (dedup + parallel width pipeline)",
    )
    p.add_argument(
        "netlist", nargs="?", default=None,
        help=".bench/.blif/.v netlist; omit to use --suite-name/--circuit",
    )
    p.add_argument("--suite-name", default="mcnc")
    p.add_argument("--circuit", action="append", default=None)
    p.add_argument("--decompose", action="store_true")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--max-faults", type=int, default=60,
        help="deterministic even subsample cap (see --no-cap)",
    )
    p.add_argument(
        "--no-cap", action="store_true",
        help="sweep the full collapsed fault universe (overrides "
        "--max-faults)",
    )
    p.add_argument(
        "--workers", type=_bounded_int(256, "worker count"), default=1,
        help="worker processes (>1 fans shards out under supervision)",
    )
    p.add_argument(
        "--mla", choices=("cold", "warm"), default="cold",
        help="cold = historical-estimator parity per distinct "
        "sub-circuit (default); warm = seed arrangements from cached "
        "enclosing-cone orders, skipping the recursive bisection",
    )
    p.add_argument(
        "--bounds", action="store_true",
        help="evaluate each sample's Theorem 4.1 bound n*2^(2*k_fo*W)",
    )
    p.add_argument(
        "--shard-timeout", type=_positive_float, default=None, metavar="SECONDS",
        help="per-shard wall-clock budget (terminated, retried, split)",
    )
    p.add_argument(
        "--deadline", type=_nonnegative_float, default=None, metavar="SECONDS",
        help="run-level wall-clock budget; unanalysed faults are "
        "reported as skipped (deadline_exceeded)",
    )
    p.add_argument(
        "--bench-json", default=None, metavar="PATH",
        help="write stage-time/cache/health JSON to PATH",
    )
    p.add_argument(
        "--no-validate", action="store_true",
        help="skip structural netlist validation (cyclic/undriven-net "
        "checks) before the width sweep",
    )
    p.set_defaults(func=_cmd_width_study)

    p = sub.add_parser("gen-study", help="Section 5.2.3 generated circuits")
    p.add_argument("--sizes", type=int, nargs="*", default=None)
    p.add_argument("--max-faults", type=int, default=25)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_gen_study)

    p = sub.add_parser("bdd-compare", help="Section 6 BDD bound comparison")
    p.set_defaults(func=_cmd_bdd_compare)

    p = sub.add_parser(
        "phase-transition",
        help="extension: width growth vs reconvergence parameter",
    )
    p.add_argument("--local-levels", type=float, nargs="*", default=None)
    p.add_argument("--global-levels", type=float, nargs="*", default=None)
    p.add_argument("--sizes", type=int, nargs="*", default=None)
    p.add_argument("--max-faults", type=int, default=8)
    p.set_defaults(func=_cmd_phase_transition)

    p = sub.add_parser("ablations", help="caching and ordering ablations")
    p.set_defaults(func=_cmd_ablations)

    p = sub.add_parser(
        "width-effort",
        help="extension: does cut-width predict per-instance SAT effort?",
    )
    p.add_argument("--suite-name", default="mcnc")
    p.add_argument(
        "--circuit", action="append", default=None,
    )
    p.add_argument("--max-faults", type=int, default=30)
    p.set_defaults(func=_cmd_width_effort)

    p = sub.add_parser(
        "suite-table", help="per-circuit summary table for a suite"
    )
    p.add_argument("--suite", action="append", default=None)
    p.add_argument("--max-faults", type=int, default=None)
    p.set_defaults(func=_cmd_suite_table)

    p = sub.add_parser(
        "atpg", help="run ATPG on a .bench/.blif/.v netlist"
    )
    p.add_argument("netlist")
    p.add_argument("--solver", default="cdcl")
    p.add_argument(
        "--solver-mode", choices=("incremental", "fresh"),
        default="incremental",
        help="incremental = persistent per-cone CDCL solver with "
        "assumption-guarded fault deltas (default); fresh = cold start "
        "per fault",
    )
    p.add_argument("--no-dropping", action="store_true")
    p.add_argument("--decompose", action="store_true")
    p.add_argument("--compact", action="store_true")
    p.add_argument(
        "--workers", type=_bounded_int(256, "worker count"), default=1,
        help="worker processes (>1 uses ParallelAtpgEngine)",
    )
    p.add_argument(
        "--order", choices=("auto", "scoap", "hardness", "given"),
        default="auto",
        help="fault processing order (auto = SCOAP easiest-first; "
        "hardness = learned fault-hardness predictor, easiest first — "
        "verdicts and coverage are identical to scoap, only the "
        "schedule moves)",
    )
    p.add_argument(
        "--budget-policy", choices=("fixed", "predicted"), default="fixed",
        help="per-fault conflict budgets: fixed = every fault gets "
        "--max-conflicts-per-fault; predicted = tight learned budget "
        "first, escalating to the full budget on exhaustion (verdicts "
        "identical, schedule cheaper on mispredicted-easy faults)",
    )
    p.add_argument(
        "--hardness-model", default=None, metavar="PATH",
        help="trained hardness model JSON (tools/train_hardness.py) for "
        "--order hardness / --budget-policy predicted; defaults to the "
        "shipped model",
    )
    p.add_argument(
        "--block-size", type=_bounded_int(1 << 16, "block width"), default=64,
        help="patterns per packed fault-simulation block (any width "
        ">= 1: blocks ride arbitrary-precision integer words)",
    )
    p.add_argument(
        "--bench-json", default=None, metavar="PATH",
        help="write throughput/cache/stage-time JSON to PATH",
    )
    p.add_argument(
        "--deadline", type=_nonnegative_float, default=None, metavar="SECONDS",
        help="run-level wall-clock budget; past it the run stops "
        "cleanly with remaining faults ABORTED (deadline_exceeded)",
    )
    p.add_argument(
        "--shard-timeout", type=_positive_float, default=None, metavar="SECONDS",
        help="per-shard wall-clock budget; a shard exceeding it is "
        "terminated, retried, and split on repeat failure",
    )
    p.add_argument(
        "--checkpoint", default=None, metavar="PATH",
        help="journal per-fault records to a JSONL file as shards "
        "complete (resumable with --resume)",
    )
    p.add_argument(
        "--resume", default=None, metavar="PATH",
        help="resume an interrupted run from its checkpoint journal "
        "(continues journaling to the same file unless --checkpoint "
        "overrides it)",
    )
    p.add_argument(
        "--no-validate", action="store_true",
        help="skip structural netlist validation (cyclic/undriven-net "
        "checks) before ATPG",
    )
    p.add_argument(
        "--certify", choices=("off", "witness", "full"), default="off",
        help="certify verdicts before trusting them: witness = replay "
        "every TESTABLE pattern through fault simulation; full = also "
        "check a DRUP proof (or cross-solver agreement) for every "
        "UNTESTABLE verdict; failures escalate through independent "
        "solvers (incremental -> fresh CDCL -> DPLL reference)",
    )
    p.add_argument(
        "--max-conflicts-per-fault", type=_positive_int, default=100_000,
        metavar="N",
        help="per-fault solver conflict budget; exhausted faults abort "
        "with budget_exhausted (deterministic, final on resume)",
    )
    p.add_argument(
        "--mem-budget-mb", type=_positive_float, default=None, metavar="MB",
        help="clause-database memory budget per SAT call; past it the "
        "fault aborts with mem_budget_exceeded (and, under --certify, "
        "escalates to the next solver rung)",
    )
    p.add_argument(
        "--share-learned", choices=("off", "cone"), default="cone",
        help="cross-fault structural clause sharing (incremental mode): "
        "cone = promote low-LBD base-only learned clauses into a "
        "run-wide store and pre-seed sibling output cones' solvers "
        "(default); off = no sharing.  Verdicts are identical either "
        "way; stats land in --bench-json (shared_promoted / "
        "shared_injected / shared_hit_rate)",
    )
    p.set_defaults(func=_cmd_atpg)

    p = sub.add_parser("profile", help="shape statistics of a netlist")
    p.add_argument("netlist")
    p.add_argument("--decompose", action="store_true")
    p.set_defaults(func=_cmd_profile)

    p = sub.add_parser("cutwidth", help="estimate cut-width of a netlist")
    p.add_argument("netlist")
    p.add_argument("--decompose", action="store_true")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_cutwidth)

    p = sub.add_parser(
        "serve",
        help="crash-safe async ATPG job server (POST /jobs, event "
        "streaming, certified result cache, graceful drain)",
    )
    p.add_argument(
        "--data-dir", default="atpg-service-data", metavar="DIR",
        help="job store + result cache root (all durable state)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument(
        "--port", type=int, default=8321,
        help="listen port (0 = ephemeral; the bound port is printed)",
    )
    p.add_argument(
        "--max-concurrent-jobs", type=_bounded_int(64, "job slots"),
        default=1, help="runner processes dispatched at once",
    )
    p.add_argument(
        "--workers", type=_bounded_int(256, "worker count"), default=1,
        help="engine worker processes inside each runner",
    )
    p.add_argument(
        "--queue-limit", type=_positive_int, default=64, metavar="N",
        help="hard queue limit: past it submissions get 429 + Retry-After",
    )
    p.add_argument(
        "--queue-soft-limit", type=_positive_int, default=16, metavar="N",
        help="soft queue limit: past it admissions are degraded to the "
        "reduced conflict budget before refusal kicks in",
    )
    p.add_argument(
        "--degraded-max-conflicts", type=_positive_int, default=4_000,
        metavar="N",
        help="per-fault conflict budget applied to degraded admissions",
    )
    p.add_argument(
        "--retry-after", type=_positive_float, default=5.0,
        metavar="SECONDS", help="Retry-After hint on 429 refusals",
    )
    p.add_argument(
        "--cache-max-mb", type=_positive_float, default=None, metavar="MB",
        help="size bound for the certified result cache: promotions "
        "LRU-evict least-recently-served documents past it (default "
        "unbounded); hit/evict counters are surfaced at /healthz",
    )
    p.add_argument(
        "--drain-timeout", type=_nonnegative_float, default=10.0,
        metavar="SECONDS",
        help="SIGTERM drain: wait this long for running jobs, then "
        "SIGKILL the runners and persist their jobs back to the queue",
    )
    p.add_argument(
        "--node-id", default=None, metavar="ID",
        help="this node's identity for multi-node lease ownership "
        "(default: hostname; must be distinct per node when several "
        "servers share one --data-dir on the same host)",
    )
    p.add_argument(
        "--lease-ttl", type=_positive_float, default=10.0,
        metavar="SECONDS",
        help="job-lease time-to-live: a dead node's jobs become "
        "stealable this long after its last heartbeat (renewed at "
        "ttl/3; lower = faster takeover, more lease traffic)",
    )
    p.add_argument(
        "--scan-interval", type=_positive_float, default=1.0,
        metavar="SECONDS",
        help="how often to poll the shared store for foreign work "
        "(peer submissions, expired leases)",
    )
    p.add_argument(
        "--tenant-max-conflicts", type=_positive_int, default=None,
        metavar="N", help="per-tenant ceiling on requested conflict budget",
    )
    p.add_argument(
        "--tenant-max-deadline", type=_positive_float, default=None,
        metavar="SECONDS", help="per-tenant ceiling on requested deadline",
    )
    p.add_argument(
        "--tenant-max-queued", type=_positive_int, default=None,
        metavar="N", help="per-tenant ceiling on held queue slots",
    )
    p.set_defaults(func=_cmd_serve)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "suite", "sentinel") is None:
        both = ("fig1", "suite-table")
        args.suite = ["mcnc", "iscas"] if args.command in both else ["mcnc"]
    if getattr(args, "circuit", "sentinel") is None:
        args.circuit = ["cla8", "cmp8", "alu4"]
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
