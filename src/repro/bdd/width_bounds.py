"""Directed-width BDD size bounds (Berman 1991 / McMillan 1992).

Section 6 of the paper contrasts its undirected cut-width result with the
BDD bounds: order the circuit elements linearly; let w_f bound the wires
running forward across any cross-section and w_r the wires running in
reverse; then the output BDD has at most ``n · 2^(w_f · 2^(w_r))`` nodes
(McMillan; Berman is the w_r = 0 topological special case).

The paper's contrast: its CIRCUIT-SAT bound is a *single* exponential in
the undirected cut-width, while the BDD bound is doubly exponential in
the reverse width.  These calculators let the experiments make that
comparison concrete.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.circuits.network import Network


@dataclass
class DirectedWidths:
    """Forward and reverse widths of a linear arrangement."""

    forward: int
    reverse: int


def directed_widths(network: Network, order: Sequence[str]) -> DirectedWidths:
    """w_f and w_r of ``order`` (a permutation of the circuit's nets).

    A wire (driver → reader) runs *forward* across cross-section i when
    the driver is placed at position ≤ i and the reader after it; it runs
    in *reverse* when the reader precedes the driver.
    """
    position = {net: i for i, net in enumerate(order)}
    if set(position) != set(network.nets):
        raise ValueError("order must be a permutation of the circuit's nets")

    n = len(order)
    forward_delta = [0] * (n + 1)
    reverse_delta = [0] * (n + 1)
    for net in network.nets:
        src = position[net]
        for reader in network.fanouts(net):
            dst = position[reader]
            if src < dst:
                forward_delta[src] += 1
                forward_delta[dst] -= 1
            elif dst < src:
                reverse_delta[dst] += 1
                reverse_delta[src] -= 1
    forward = reverse = 0
    running_f = running_r = 0
    for i in range(n):
        running_f += forward_delta[i]
        running_r += reverse_delta[i]
        forward = max(forward, running_f)
        reverse = max(reverse, running_r)
    return DirectedWidths(forward=forward, reverse=reverse)


def mcmillan_bound(num_inputs: int, widths: DirectedWidths) -> int:
    """McMillan's BDD size bound: n · 2^(w_f · 2^(w_r)).

    Capped via Python big integers — callers should compare with care,
    as the double exponential explodes quickly.
    """
    return num_inputs * (1 << (widths.forward * (1 << widths.reverse)))


def berman_bound(num_inputs: int, forward_width: int) -> int:
    """Berman's topological-order bound: n · 2^(2^... ) reduces to w_r=0.

    With no reverse wires the McMillan bound specialises to
    ``n · 2^(w_f)``... strictly, 2^(w_f · 2^0) = 2^(w_f).
    """
    return num_inputs * (1 << forward_width)


def topological_directed_widths(network: Network) -> DirectedWidths:
    """Widths under plain topological order (w_r = 0 by construction)."""
    return directed_widths(network, network.topological_order())
