"""Building BDDs for circuit outputs (Section 6 comparison substrate)."""

from __future__ import annotations

from collections.abc import Sequence

from repro.bdd.bdd import ONE, ZERO, BddManager
from repro.circuits.gates import GateType
from repro.circuits.network import Network


class BddSizeLimitExceeded(RuntimeError):
    """Raised when BDD construction exceeds the node budget."""


def build_output_bdds(
    network: Network,
    order: Sequence[str] | None = None,
    max_nodes: int | None = 2_000_000,
) -> tuple[BddManager, dict[str, int]]:
    """Construct the BDD of every primary output under ``order``.

    Args:
        network: the circuit.
        order: variable order over the primary inputs (defaults to input
            declaration order).
        max_nodes: abort threshold on allocated nodes (BDDs can blow up
            exponentially — e.g. multipliers — which is part of the
            Section 6 story).

    Returns:
        (manager, output net → BDD root).

    Raises:
        BddSizeLimitExceeded: if the node budget is exhausted.
    """
    if order is None:
        order = list(network.inputs)
    missing = set(network.inputs) - set(order)
    if missing:
        raise ValueError(f"order misses inputs: {sorted(missing)[:4]}")
    manager = BddManager(order)

    node_of: dict[str, int] = {}
    for net in network.topological_order():
        gate = network.gate(net)
        gtype = gate.gate_type
        if gtype is GateType.INPUT:
            node_of[net] = manager.var(net)
            continue
        if gtype is GateType.CONST0:
            node_of[net] = ZERO
            continue
        if gtype is GateType.CONST1:
            node_of[net] = ONE
            continue
        operands = [node_of[src] for src in gate.inputs]
        if gtype is GateType.BUF:
            result = operands[0]
        elif gtype is GateType.NOT:
            result = manager.apply_not(operands[0])
        elif gtype in (GateType.AND, GateType.NAND):
            result = manager.conjoin(operands)
            if gtype is GateType.NAND:
                result = manager.apply_not(result)
        elif gtype in (GateType.OR, GateType.NOR):
            result = manager.disjoin(operands)
            if gtype is GateType.NOR:
                result = manager.apply_not(result)
        elif gtype in (GateType.XOR, GateType.XNOR):
            result = operands[0]
            for operand in operands[1:]:
                result = manager.apply_xor(result, operand)
            if gtype is GateType.XNOR:
                result = manager.apply_not(result)
        else:  # pragma: no cover - exhaustive
            raise ValueError(f"unsupported gate {gtype!r}")
        node_of[net] = result
        if max_nodes is not None and manager.num_nodes_allocated() > max_nodes:
            raise BddSizeLimitExceeded(
                f"{manager.num_nodes_allocated()} nodes exceeds {max_nodes}"
            )

    return manager, {out: node_of[out] for out in network.outputs}


def circuit_sat_by_bdd(
    network: Network, order: Sequence[str] | None = None
) -> dict[str, int] | None:
    """Solve CIRCUIT-SAT via BDDs: a model setting some output to 1.

    The Section 6 alternative to backtracking: build the output BDDs and
    do a "0 check" — here, extract a witness from the OR of the outputs.
    """
    manager, roots = build_output_bdds(network, order)
    disjunction = manager.disjoin(roots.values())
    witness = manager.any_sat(disjunction)
    if witness is None:
        return None
    # Complete the assignment over all inputs (free variables → 0).
    return {net: witness.get(net, 0) for net in network.inputs}


def output_bdd_size(
    network: Network,
    order: Sequence[str] | None = None,
    max_nodes: int | None = 2_000_000,
) -> int:
    """Total shared-BDD node count over all outputs."""
    manager, roots = build_output_bdds(network, order, max_nodes)
    return manager.size(list(roots.values()))
