"""Reduced ordered binary decision diagrams (ROBDDs).

A compact BDD manager with a unique table (hash-consing) and a computed
table (memoised ITE), sufficient for the paper's Section 6 comparison of
BDD sizes against backtracking-tree sizes and the Berman/McMillan width
bounds.  Nodes are integers; 0 and 1 are the terminals.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

#: Terminal node ids.
ZERO = 0
ONE = 1


class BddManager:
    """ROBDD manager with a fixed variable order.

    Args:
        order: variable names, outermost (top) first.
    """

    def __init__(self, order: Iterable[str]) -> None:
        self._order = list(order)
        if len(set(self._order)) != len(self._order):
            raise ValueError("duplicate variables in order")
        self._level_of = {name: i for i, name in enumerate(self._order)}
        # node id -> (level, low, high); terminals use level = +inf sentinel.
        self._nodes: list[tuple[int, int, int]] = [
            (1 << 30, 0, 0),
            (1 << 30, 1, 1),
        ]
        self._unique: dict[tuple[int, int, int], int] = {}
        self._ite_cache: dict[tuple[int, int, int], int] = {}

    # ------------------------------------------------------------------
    @property
    def order(self) -> list[str]:
        return list(self._order)

    def level(self, node: int) -> int:
        return self._nodes[node][0]

    def var_name(self, node: int) -> str:
        lvl = self._nodes[node][0]
        if lvl >= len(self._order):
            raise ValueError("terminal node has no variable")
        return self._order[lvl]

    def low(self, node: int) -> int:
        return self._nodes[node][1]

    def high(self, node: int) -> int:
        return self._nodes[node][2]

    def is_terminal(self, node: int) -> bool:
        return node in (ZERO, ONE)

    # ------------------------------------------------------------------
    def _mk(self, level: int, low: int, high: int) -> int:
        if low == high:
            return low
        key = (level, low, high)
        node = self._unique.get(key)
        if node is None:
            node = len(self._nodes)
            self._nodes.append(key)
            self._unique[key] = node
        return node

    def var(self, name: str) -> int:
        """The BDD of a single variable."""
        return self._mk(self._level_of[name], ZERO, ONE)

    def ite(self, f: int, g: int, h: int) -> int:
        """If-then-else: the universal connective."""
        if f == ONE:
            return g
        if f == ZERO:
            return h
        if g == h:
            return g
        if g == ONE and h == ZERO:
            return f
        key = (f, g, h)
        cached = self._ite_cache.get(key)
        if cached is not None:
            return cached
        top = min(self.level(f), self.level(g), self.level(h))

        def cofactor(node: int, branch: int) -> int:
            if self.level(node) == top:
                return self._nodes[node][1 + branch]
            return node

        low = self.ite(cofactor(f, 0), cofactor(g, 0), cofactor(h, 0))
        high = self.ite(cofactor(f, 1), cofactor(g, 1), cofactor(h, 1))
        result = self._mk(top, low, high)
        self._ite_cache[key] = result
        return result

    # Boolean operations -------------------------------------------------
    def apply_not(self, f: int) -> int:
        return self.ite(f, ZERO, ONE)

    def apply_and(self, f: int, g: int) -> int:
        return self.ite(f, g, ZERO)

    def apply_or(self, f: int, g: int) -> int:
        return self.ite(f, ONE, g)

    def apply_xor(self, f: int, g: int) -> int:
        return self.ite(f, self.apply_not(g), g)

    def conjoin(self, nodes: Iterable[int]) -> int:
        result = ONE
        for node in nodes:
            result = self.apply_and(result, node)
        return result

    def disjoin(self, nodes: Iterable[int]) -> int:
        result = ZERO
        for node in nodes:
            result = self.apply_or(result, node)
        return result

    # Queries -------------------------------------------------------------
    def size(self, roots: int | Iterable[int]) -> int:
        """Number of internal nodes reachable from the root(s)."""
        if isinstance(roots, int):
            roots = [roots]
        seen: set[int] = set()
        stack = [r for r in roots]
        count = 0
        while stack:
            node = stack.pop()
            if node in seen or self.is_terminal(node):
                continue
            seen.add(node)
            count += 1
            stack.append(self.low(node))
            stack.append(self.high(node))
        return count

    def evaluate(self, node: int, assignment: Mapping[str, int]) -> int:
        """0/1 value of the function under a total assignment."""
        while not self.is_terminal(node):
            name = self.var_name(node)
            node = (
                self.high(node) if assignment.get(name, 0) else self.low(node)
            )
        return node

    def sat_count(self, node: int) -> int:
        """Number of satisfying assignments over the full variable set."""
        n = len(self._order)
        cache: dict[int, int] = {}

        def clamped_level(node: int) -> int:
            return min(self.level(node), n)

        def count(node: int) -> int:
            """Assignments of the variables at levels >= level(node)."""
            if node == ZERO:
                return 0
            if node == ONE:
                return 1
            if node in cache:
                return cache[node]
            lvl = self.level(node)
            low, high = self.low(node), self.high(node)
            result = count(low) * (
                1 << (clamped_level(low) - lvl - 1)
            ) + count(high) * (1 << (clamped_level(high) - lvl - 1))
            cache[node] = result
            return result

        return count(node) * (1 << clamped_level(node))

    def any_sat(self, node: int) -> dict[str, int] | None:
        """One satisfying assignment (partial; unmentioned vars free)."""
        if node == ZERO:
            return None
        assignment: dict[str, int] = {}
        while node != ONE:
            name = self.var_name(node)
            if self.low(node) != ZERO:
                assignment[name] = 0
                node = self.low(node)
            else:
                assignment[name] = 1
                node = self.high(node)
        return assignment

    def num_nodes_allocated(self) -> int:
        """Total unique nodes ever created (terminals included)."""
        return len(self._nodes)
