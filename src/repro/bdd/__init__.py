"""ROBDD package for the Section 6 BDD-vs-backtracking comparison."""

from repro.bdd.bdd import ONE, ZERO, BddManager
from repro.bdd.circuit_bdd import (
    BddSizeLimitExceeded,
    build_output_bdds,
    circuit_sat_by_bdd,
    output_bdd_size,
)
from repro.bdd.width_bounds import (
    DirectedWidths,
    berman_bound,
    directed_widths,
    mcmillan_bound,
    topological_directed_widths,
)

__all__ = [
    "BddManager",
    "BddSizeLimitExceeded",
    "DirectedWidths",
    "ONE",
    "ZERO",
    "berman_bound",
    "build_output_bdds",
    "circuit_sat_by_bdd",
    "directed_widths",
    "mcmillan_bound",
    "output_bdd_size",
    "topological_directed_widths",
]
