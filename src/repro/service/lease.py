"""Lease-fenced job ownership for multi-node deployments.

Several ``repro serve`` nodes may share one job store (a shared
directory).  Safe failover then needs exactly one primitive: a way for
a node to *own* a job such that (a) a dead owner's jobs are adoptable
after a bounded delay, and (b) a paused-then-resumed zombie owner can
never clobber the adopter's work.  The classic answer is a lease with a
**monotonic fencing token** (Gray & Cheriton leases + the fencing rule
popularised by distributed-lock literature): every acquisition bumps an
integer token, every durable write by a runner is stamped and checked
against the current token, and a stale writer is rejected with
:class:`StaleTokenError`.

Why this is *safe* here and not merely probabilistic: the service's
verdict trust boundary (PR 5) means a takeover can never silently
change an answer — witness replay and DRUP checking certify whatever
node finishes the job, and the paper's cheap-to-check property is what
makes that affordable.  The lease only has to protect *liveness* and
the journal/CAS from interleaved writers; correctness never rests on
the lock.

On-disk protocol (one ``lease.json`` per job directory, plus transient
``lease.json.tomb.*`` arbitration files):

* **The file is the lock.**  Creation uses write-temp + ``link(2)``
  (atomic, fails ``EEXIST`` if a lease exists) — the ``O_EXCL``-class
  exclusivity the lock needs, with the content already complete when
  the name appears.
* **Mutation is rename-arbitrated.**  To steal, renew, or release, a
  node first ``rename(2)``-s ``lease.json`` to a *unique* tombstone
  name.  Rename of one source succeeds for exactly one caller (the
  rest get ENOENT), so concurrent stealers serialise without any
  in-memory lock.  The winner inspects the tombstone, writes the
  successor lease via ``link``, then removes tombstones.
* **Tokens never regress.**  A successor token is ``1 + max(observed
  lease token, every tombstone token, the caller's floor)``.  The job
  store additionally persists the last granted token in ``job.json``
  (``fence_token``) and callers pass it back as ``token_floor``, so
  even a lease file destroyed by disk corruption cannot reissue an old
  token.
* **Crash-safe at every instant.**  Killed between rename and link,
  the store holds no lease file and one tombstone; the next acquirer
  treats a *live* tombstone as a held lease (closing the
  steal-during-renew window) and an expired one as history to bump
  past.  The failpoint sweep (``lease.*`` in
  :mod:`repro.service.failpoints`) kills at each of these boundaries
  and asserts re-acquirability.

Expiry uses wall-clock deadlines (``time.time``) because they must be
comparable across hosts; pick a TTL comfortably above worst-case clock
skew plus heartbeat jitter (see the multi-node runbook in the README).
"""

from __future__ import annotations

import itertools
import json
import os
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Optional

from repro.service.failpoints import failpoint

LEASE_SCHEMA_VERSION = 1

#: Bounded retries for acquisition races (each iteration re-reads the
#: lease; losing every round means a live competitor, not livelock).
_ACQUIRE_ATTEMPTS = 8


class LeaseError(Exception):
    """Base class for lease protocol failures."""


class LeaseHeldError(LeaseError):
    """Acquisition failed: another node holds a live lease."""


class LeaseLostError(LeaseError):
    """Renew/release found the lease no longer ours (stolen/expired)."""


class StaleTokenError(LeaseError):
    """A write stamped with a superseded fencing token was rejected.

    Raised at the fencing boundary (journal append, CAS promotion,
    job.json transition) by a writer whose lease was stolen — the
    zombie must die without touching the store again."""


@dataclass(frozen=True)
class Lease:
    """One decoded lease document."""

    owner: str
    token: int
    deadline: float
    released: bool = False

    def live(self, now: float) -> bool:
        return not self.released and self.deadline > now

    def to_payload(self) -> dict:
        return {
            "schema": LEASE_SCHEMA_VERSION,
            "owner": self.owner,
            "token": self.token,
            "deadline": self.deadline,
            "released": self.released,
        }

    @staticmethod
    def from_payload(payload: dict) -> "Lease":
        if payload.get("schema") != LEASE_SCHEMA_VERSION:
            raise ValueError(f"unsupported lease schema {payload.get('schema')!r}")
        return Lease(
            owner=str(payload["owner"]),
            token=int(payload["token"]),
            deadline=float(payload["deadline"]),
            released=bool(payload.get("released", False)),
        )


def _read_lease(path: Path) -> Optional[Lease]:
    """Decode a lease file; ``None`` for absent *or torn/corrupt* (a
    torn lease is unreadable evidence, never a crash — token safety
    against it comes from tombstones and the caller's floor)."""
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
        return Lease.from_payload(payload)
    except (OSError, ValueError, TypeError, KeyError):
        return None


_tomb_seq = itertools.count()


class LeaseFile:
    """One job's lease, as manipulated by one node (see module docs).

    Args:
        path: the ``lease.json`` path inside the job directory.
        owner: this node's id; uniqueness across nodes is the
            deployment contract (``serve --node-id``).
        ttl_s: heartbeat deadline horizon; :meth:`renew` must run more
            often than this or the lease becomes stealable.
        clock: injectable wall clock (tests).
    """

    def __init__(
        self,
        path: str | Path,
        owner: str,
        ttl_s: float,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if ttl_s <= 0:
            raise ValueError("lease ttl must be > 0")
        self.path = Path(path)
        self.owner = str(owner)
        self.ttl_s = float(ttl_s)
        self.clock = clock
        #: The token this node was granted at the last successful
        #: acquire/renew; ``None`` before acquisition.
        self.token: Optional[int] = None

    # -- read side ------------------------------------------------------
    def peek(self) -> Optional[Lease]:
        """The current lease document, or ``None`` (absent/torn)."""
        return _read_lease(self.path)

    def held_by_other(self) -> bool:
        """True when a *live* lease (or live tombstone — a renew in
        flight) belongs to a different owner."""
        now = self.clock()
        current = self.peek()
        if current is not None and current.owner != self.owner and current.live(now):
            return True
        for tomb in self._tombstones():
            lease = _read_lease(tomb)
            if lease is not None and lease.owner != self.owner and lease.live(now):
                return True
        return False

    # -- mutation -------------------------------------------------------
    def acquire(self, token_floor: int = 0) -> Lease:
        """Acquire (fresh, re-acquire, or steal) and return the lease.

        Always bumps the fencing token — re-acquiring a job fences any
        straggler runner this node itself left behind.  Raises
        :class:`LeaseHeldError` when a different owner's lease is live
        or every arbitration round is lost to live competitors.
        """
        for _ in range(_ACQUIRE_ATTEMPTS):
            now = self.clock()
            current = self.peek()
            if (
                current is not None
                and current.owner != self.owner
                and current.live(now)
            ):
                raise LeaseHeldError(
                    f"{self.path}: lease held by {current.owner!r} "
                    f"(token {current.token}) for another "
                    f"{current.deadline - now:.2f}s"
                )
            tomb_floor = self._tombstone_floor(
                guard_live=current is None, now=now
            )
            if tomb_floor < 0:
                # A live foreign tombstone with the lease path vacant:
                # that owner's renew/steal is mid-flight — back off.
                raise LeaseHeldError(f"{self.path}: live tombstone in flight")
            floor = max(
                token_floor,
                current.token if current is not None else 0,
                tomb_floor,
            )
            if self.path.exists():
                tomb = self._tomb_name()
                try:
                    failpoint("lease.acquire.pre_tomb")
                    os.rename(self.path, tomb)
                except FileNotFoundError:
                    continue  # lost the arbitration; re-read and retry
                except OSError as exc:
                    self._raise_storage("lease steal", exc)
                buried = _read_lease(tomb)
                if (
                    buried is not None
                    and buried.owner != self.owner
                    and buried.live(self.clock())
                ):
                    # The liveness check above raced a concurrent
                    # (re)acquisition: what we tombed is someone else's
                    # *live* lease.  The rename was atomic, so we own
                    # the evidence — put it back and yield.
                    self._publish_tomb_back(tomb)
                    raise LeaseHeldError(
                        f"{self.path}: lease held by {buried.owner!r} "
                        f"(token {buried.token}; observed post-arbitration)"
                    )
                if buried is not None:
                    floor = max(floor, buried.token)
            granted = Lease(
                owner=self.owner,
                token=floor + 1,
                deadline=self.clock() + self.ttl_s,
            )
            if self._publish(granted, "lease.acquire.pre_link"):
                try:
                    failpoint("lease.acquire.post_link")
                except OSError as exc:
                    # The link is already durable: surface the fault
                    # typed; the next acquire re-bumps past this token.
                    self._raise_storage("lease acquire", exc)
                self._sweep_tombstones()
                self.token = granted.token
                return granted
            # Someone linked first; loop re-reads their lease.
        raise LeaseHeldError(f"{self.path}: lost every acquisition round")

    def renew(self) -> Lease:
        """Heartbeat: extend the deadline, keeping the token.

        Raises :class:`LeaseLostError` if the lease is absent, torn, or
        no longer carries this node's owner+token (stolen)."""
        if self.token is None:
            raise LeaseLostError(f"{self.path}: never acquired")
        return self._replace_own(
            lambda mine: Lease(
                owner=self.owner,
                token=mine.token,
                deadline=self.clock() + self.ttl_s,
            ),
            "lease.renew.pre_link",
        )

    def release(self) -> Lease:
        """Mark the lease released (token preserved for monotonicity)."""
        if self.token is None:
            raise LeaseLostError(f"{self.path}: never acquired")
        lease = self._replace_own(
            lambda mine: Lease(
                owner=self.owner,
                token=mine.token,
                deadline=self.clock(),
                released=True,
            ),
            "lease.release.pre_link",
        )
        self.token = None
        return lease

    def guard(self) -> "FenceGuard":
        """A :class:`FenceGuard` for the currently held token."""
        if self.token is None:
            raise LeaseLostError(f"{self.path}: never acquired")
        return FenceGuard(self.path, self.owner, self.token)

    # -- internals ------------------------------------------------------
    def _replace_own(self, successor, fp_name: str) -> Lease:
        """Rename-arbitrated in-place update of a lease we believe is
        ours; restores the tombstone if it turns out not to be."""
        tomb = self._tomb_name()
        try:
            os.rename(self.path, tomb)
        except FileNotFoundError:
            self.token = None
            raise LeaseLostError(f"{self.path}: lease gone") from None
        except OSError as exc:
            self._raise_storage("lease update", exc)
        buried = _read_lease(tomb)
        if (
            buried is None
            or buried.owner != self.owner
            or buried.token != self.token
        ):
            # Not ours (stolen, or torn beyond recognition): put the
            # evidence back for the rightful owner and report the loss.
            self._publish_tomb_back(tomb)
            self.token = None
            raise LeaseLostError(
                f"{self.path}: lease is {buried.owner!r}/"
                f"{buried.token if buried else '?'}, not "
                f"{self.owner!r}/{self.token}"
            )
        updated = successor(buried)
        if not self._publish(updated, fp_name):
            # A competitor linked while the path was vacant; whoever it
            # is scanned our tombstone, so their token is higher.
            os.unlink(tomb)
            self.token = None
            raise LeaseLostError(f"{self.path}: superseded during update")
        self._sweep_tombstones()
        return updated

    def _publish(self, lease: Lease, fp_name: str) -> bool:
        """Write ``lease`` and atomically link it at the lease path;
        False when the path is already (re)occupied."""
        fd, tmp_name = tempfile.mkstemp(
            dir=self.path.parent, prefix=self.path.name + ".", suffix=".tmp"
        )
        try:
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as fh:
                    json.dump(lease.to_payload(), fh)
                    fh.flush()
                    os.fsync(fh.fileno())
                failpoint(fp_name)
                os.link(tmp_name, self.path)
                return True
            except FileExistsError:
                return False
            except OSError as exc:
                self._raise_storage("lease publish", exc)
        finally:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass

    def _publish_tomb_back(self, tomb: Path) -> None:
        """Best-effort restoration of a tombstone we had no right to
        take; EEXIST means someone already published a successor."""
        try:
            os.link(tomb, self.path)
        except OSError:
            pass
        try:
            os.unlink(tomb)
        except OSError:
            pass

    def _tomb_name(self) -> Path:
        return self.path.with_name(
            f"{self.path.name}.tomb.{os.getpid()}.{next(_tomb_seq)}"
        )

    def _tombstones(self) -> list[Path]:
        return sorted(self.path.parent.glob(self.path.name + ".tomb.*"))

    def _tombstone_floor(self, guard_live: bool, now: float) -> int:
        """Highest token buried in tombstones.  With ``guard_live``
        (the lease path is vacant), a *live foreign* tombstone means a
        renew/steal is mid-flight: report -1 so acquisition backs off
        instead of racing it."""
        floor = 0
        for tomb in self._tombstones():
            lease = _read_lease(tomb)
            if lease is None:
                continue
            if guard_live and lease.owner != self.owner and lease.live(now):
                return -1
            floor = max(floor, lease.token)
        return floor

    def _sweep_tombstones(self) -> None:
        for tomb in self._tombstones():
            try:
                os.unlink(tomb)
            except OSError:
                pass

    @staticmethod
    def _raise_storage(op: str, exc: OSError) -> None:
        from repro.io.atomic import STORAGE_ERRNOS, StorageError

        if exc.errno in STORAGE_ERRNOS:
            raise StorageError(op, "lease", exc) from exc
        raise exc


class FenceGuard:
    """The write-side fencing check a runner carries.

    ``check()`` re-reads the lease file and raises
    :class:`StaleTokenError` unless it still shows exactly this
    owner and token — renewals keep the token, steals bump it, so
    equality is the ownership predicate.  A missing or torn lease also
    rejects: a writer that cannot *prove* ownership must not write.

    Picklable on purpose: the server builds it, the forked runner
    carries it, and every journal append / CAS promotion / job.json
    transition calls it at the write boundary.
    """

    def __init__(self, lease_path: str | Path, owner: str, token: int) -> None:
        self.lease_path = str(lease_path)
        self.owner = str(owner)
        self.token = int(token)

    def _mine(self, lease: Optional[Lease]) -> bool:
        return (
            lease is not None
            and lease.owner == self.owner
            and lease.token == self.token
        )

    def check(self) -> None:
        path = Path(self.lease_path)
        lease = _read_lease(path)
        if lease is not None:
            if self._mine(lease):
                return
            # A present lease with a different owner/token is a
            # completed steal: reject unconditionally.  (This ordering
            # matters — once the new owner has *linked*, the tombstone
            # fallback below must never resurrect the old token.)
            raise StaleTokenError(
                f"{self.lease_path}: fencing token {self.token} "
                f"({self.owner!r}) superseded by {lease.token} "
                f"({lease.owner!r})"
            )
        # The path is vacant: a renew/steal arbitration is mid-flight
        # (rename-to-tombstone happens before the successor is linked).
        # If the buried document is still exactly ours, this write
        # linearizes before any successor grant — the heartbeat
        # renewing our own lease must not fence out our own runner.
        for tomb in sorted(path.parent.glob(path.name + ".tomb.*")):
            if self._mine(_read_lease(tomb)):
                return
        # The arbitration may have completed (tombstones swept) between
        # our two reads: give the main path one more look.
        if self._mine(_read_lease(path)):
            return
        raise StaleTokenError(
            f"{self.lease_path}: lease missing/unreadable; refusing to "
            f"write with unproven token {self.token}"
        )

    def __call__(self) -> None:
        self.check()

    def __repr__(self) -> str:
        return (
            f"FenceGuard({self.lease_path!r}, owner={self.owner!r}, "
            f"token={self.token})"
        )
