"""Deterministic failpoint injection for every persistence layer.

A *failpoint* is a named hook compiled into a persistence path at an
exact syscall boundary — just before the ``os.replace`` that commits a
CAS promotion, just before the flush that durably appends a journal
record, just before the ``link(2)`` that publishes a lease.  Disarmed
(the normal case) a failpoint is one truthiness check on an empty dict;
armed, it can

* raise an injected disk fault (``raise:ENOSPC`` / ``raise:EIO``),
* kill the process with SIGKILL at that exact instant (``kill``),
* inject latency (``sleep:0.05``),

which turns the handwritten chaos tests of the service layer into an
exhaustive sweep: for *every* registered crash point, both the
error-injection and the process-kill variant must leave the store
recoverable.  ``tests/service/test_failpoints.py`` runs that sweep in
tier-1; ``tools/chaos_matrix.py`` runs it against real ``repro serve``
subprocesses in CI.

Control surfaces:

* per-test: :func:`activate` / :func:`deactivate` / :func:`reset`, or
  the :func:`armed` context manager;
* cross-process: the ``REPRO_FAILPOINTS`` environment variable, parsed
  at import time (``"name=action;name=action"``), which is how the
  chaos matrix injects faults into a served runner it never imports.

Action grammar (one spec per failpoint)::

    kill                 SIGKILL the current process at the failpoint
    raise:ENOSPC         raise OSError(errno.ENOSPC) at the failpoint
    raise:EIO            raise OSError(errno.EIO) at the failpoint
    sleep:<seconds>      inject latency, then continue
    <action>*<n>         fire only the first <n> times, then disarm

Every persistence failpoint is pre-registered in :data:`MANIFEST`
below — a single authoritative catalog, so sweeps enumerate crash
points without having to import (and partially execute) every module
that fires them.  :func:`activate` rejects unknown names: a typo in a
chaos test must fail loudly, not silently test nothing.

This module imports nothing from the rest of the package on purpose:
``io/atomic.py`` and ``atpg/checkpoint.py`` (which service modules
import) bind it lazily, so there is no import cycle through
``repro.service.__init__``.
"""

from __future__ import annotations

import errno
import os
import signal
import time
from contextlib import contextmanager
from typing import Iterator, Optional

__all__ = [
    "MANIFEST",
    "FailpointError",
    "activate",
    "armed",
    "deactivate",
    "failpoint",
    "hits",
    "load_env",
    "register",
    "registered",
    "reset",
]

#: Environment variable consulted at import time (and re-parseable via
#: :func:`load_env`): ``"cas.promote.pre_rename=kill;journal.append.pre_flush=raise:ENOSPC*1"``.
ENV_VAR = "REPRO_FAILPOINTS"

#: The authoritative catalog of persistence crash points.  Grouped by
#: the syscall boundary they sit at; ``pre_rename`` fires after the
#: temp file is written+fsynced but before the committing
#: ``os.replace``, ``post_rename`` fires after the commit but before
#: the caller observes success — the two halves of every atomic write
#: a crash can land between.
MANIFEST = (
    # job.json lifecycle document (service/jobs.py via io/atomic.py)
    "job.meta.pre_write",
    "job.meta.pre_rename",
    "job.meta.post_rename",
    # result.json final document (service/runner.py via io/atomic.py)
    "job.result.pre_write",
    "job.result.pre_rename",
    "job.result.post_rename",
    # content-addressed certified cache (service/store.py)
    "cas.promote.pre_write",
    "cas.promote.pre_rename",
    "cas.promote.post_rename",
    "cas.evict.pre_unlink",
    # per-fault checkpoint journal (atpg/checkpoint.py)
    "journal.append.pre_flush",
    "journal.append.post_flush",
    # lease files (service/lease.py)
    "lease.acquire.pre_tomb",
    "lease.acquire.pre_link",
    "lease.acquire.post_link",
    "lease.renew.pre_link",
    "lease.release.pre_link",
)

_ERRNOS = {"ENOSPC": errno.ENOSPC, "EIO": errno.EIO}


class FailpointError(ValueError):
    """Unknown failpoint name or malformed action spec."""


class _Action:
    """One parsed, armed action with an optional remaining-fire count."""

    __slots__ = ("spec", "kind", "arg", "remaining")

    def __init__(self, spec: str) -> None:
        self.spec = spec
        body, star, count = spec.partition("*")
        if star:
            try:
                self.remaining: Optional[int] = int(count)
            except ValueError:
                raise FailpointError(f"bad fire count in {spec!r}") from None
            if self.remaining <= 0:
                raise FailpointError(f"fire count must be > 0 in {spec!r}")
        else:
            self.remaining = None
        kind, _, arg = body.partition(":")
        if kind == "kill" and not arg:
            self.kind, self.arg = "kill", None
        elif kind == "raise" and arg in _ERRNOS:
            self.kind, self.arg = "raise", _ERRNOS[arg]
        elif kind == "sleep":
            try:
                self.kind, self.arg = "sleep", float(arg)
            except ValueError:
                raise FailpointError(f"bad sleep duration in {spec!r}") from None
        else:
            raise FailpointError(f"unknown failpoint action {spec!r}")

    def fire(self, name: str) -> None:
        if self.remaining is not None:
            self.remaining -= 1
            if self.remaining <= 0:
                _ACTIVE.pop(name, None)
        if self.kind == "kill":
            os.kill(os.getpid(), signal.SIGKILL)
            # SIGKILL is not deliverable to a traced/stopped process
            # instantly in every environment; never fall through.
            signal.pause()  # pragma: no cover
        elif self.kind == "raise":
            raise OSError(self.arg, f"injected {errno.errorcode[self.arg]}", name)
        elif self.kind == "sleep":
            time.sleep(self.arg)


#: name -> cumulative fire-attempt count (even while disarmed), so
#: sweep tests can prove a scenario actually covers a crash point.
_HITS: dict[str, int] = {}
#: Registered names (the manifest plus any test-registered extras).
_REGISTRY: set[str] = set(MANIFEST)
#: Armed actions.  Empty in production: the fast path below is a single
#: truthiness check on this dict.
_ACTIVE: dict[str, _Action] = {}
#: When True (set by activate()/load_env()), fire() also counts hits.
_COUNTING = False


def failpoint(name: str) -> None:
    """Fire the named failpoint.  Zero work unless armed or counting."""
    if not _ACTIVE and not _COUNTING:
        return
    if _COUNTING:
        if name not in _REGISTRY:
            raise FailpointError(f"unregistered failpoint {name!r}")
        _HITS[name] = _HITS.get(name, 0) + 1
    action = _ACTIVE.get(name)
    if action is not None:
        action.fire(name)


def register(name: str) -> str:
    """Register an extra failpoint name (idempotent); returns it."""
    _REGISTRY.add(name)
    return name


def registered() -> tuple[str, ...]:
    """Every registered failpoint name, sorted."""
    return tuple(sorted(_REGISTRY))


def activate(name: str, spec: str) -> None:
    """Arm ``name`` with an action spec (see the module docstring)."""
    if name not in _REGISTRY:
        raise FailpointError(
            f"unregistered failpoint {name!r} (registered: "
            f"{', '.join(registered())})"
        )
    global _COUNTING
    _COUNTING = True
    _ACTIVE[name] = _Action(spec)


def deactivate(name: str) -> None:
    """Disarm ``name`` (no-op when not armed)."""
    _ACTIVE.pop(name, None)


def reset() -> None:
    """Disarm everything and clear hit counters (test teardown)."""
    global _COUNTING
    _ACTIVE.clear()
    _HITS.clear()
    _COUNTING = False


def counting(enabled: bool = True) -> None:
    """Enable hit counting without arming anything (sweep coverage)."""
    global _COUNTING
    _COUNTING = enabled


def hits(name: str) -> int:
    """Cumulative fire-attempt count for ``name`` since :func:`reset`.

    Counting is only active once :func:`activate`, :func:`counting`, or
    :func:`load_env` has run — the disarmed production path does not pay
    for bookkeeping.
    """
    return _HITS.get(name, 0)


@contextmanager
def armed(name: str, spec: str) -> Iterator[None]:
    """Context manager: arm ``name``, disarm on exit."""
    activate(name, spec)
    try:
        yield
    finally:
        deactivate(name)


def load_env(value: Optional[str] = None) -> int:
    """Parse ``REPRO_FAILPOINTS`` (or an explicit string) and arm the
    listed failpoints; returns how many were armed.  Called once at
    import so forked/spawned service processes inherit injection
    without any code knowing about it."""
    if value is None:
        value = os.environ.get(ENV_VAR, "")
    count = 0
    for item in value.split(";"):
        item = item.strip()
        if not item:
            continue
        name, eq, spec = item.partition("=")
        if not eq:
            raise FailpointError(f"malformed {ENV_VAR} entry {item!r}")
        activate(name.strip(), spec.strip())
        count += 1
    return count


load_env()
