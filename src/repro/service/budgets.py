"""Tenant budgets and the backpressure/degradation admission ladder.

HybMT and DEFT (PAPERS.md) both observe that a small hard-to-detect
tail dominates ATPG runtime — for a shared service that tail is the
noisy-neighbour problem: one pathological submission must not starve
the queue.  Three mechanisms bound it, applied in order at admission:

1. **Tenant clamps** — a tenant's requested per-fault conflict budget
   and run deadline are clamped to the tenant policy's ceilings (they
   map directly onto the engine's ``--max-conflicts-per-fault`` /
   ``--deadline`` knobs), and each tenant holds at most
   ``max_queued`` queue slots, so no tenant can occupy the queue alone.
2. **Degradation before refusal** — past the *soft* queue threshold the
   job is still accepted but its conflict budget is clamped down to
   ``degraded_max_conflicts``: hard faults abort deterministically
   (``budget_exhausted``) instead of consuming a saturated server's
   time.  The job is marked ``degraded`` so the caller knows.
3. **Refusal with Retry-After** — past the *hard* queue limit (or the
   tenant's slot quota) the submission is refused with HTTP 429 and a
   ``Retry-After`` hint, the only honest answer left.

Degraded admissions keep their *own* cache identity: the clamped
conflict budget enters the canonical job key, so a degraded result
never masquerades as the full-budget result for the same netlist.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class TenantPolicy:
    """Per-tenant ceilings (None = unlimited)."""

    max_conflicts: Optional[int] = None
    max_deadline_s: Optional[float] = None
    max_queued: Optional[int] = None


@dataclass(frozen=True)
class BackpressureConfig:
    """Queue-level load-shedding thresholds.

    ``soft_limit`` starts budget degradation; ``hard_limit`` starts
    refusals; ``retry_after_s`` is the refusal hint.
    """

    hard_limit: int = 64
    soft_limit: int = 16
    degraded_max_conflicts: int = 4_000
    retry_after_s: float = 5.0

    def __post_init__(self) -> None:
        if self.hard_limit < 1:
            raise ValueError("hard_limit must be >= 1")
        if not 0 < self.soft_limit <= self.hard_limit:
            raise ValueError("need 0 < soft_limit <= hard_limit")
        if self.degraded_max_conflicts < 1:
            raise ValueError("degraded_max_conflicts must be >= 1")


@dataclass
class Admission:
    """The admission verdict for one submission."""

    accepted: bool
    options: dict
    degraded: bool = False
    retry_after_s: Optional[float] = None
    reason: str = ""


class AdmissionController:
    """Applies the ladder above to one submission at a time."""

    def __init__(
        self,
        backpressure: BackpressureConfig,
        default_policy: TenantPolicy = TenantPolicy(),
        tenant_policies: Optional[dict[str, TenantPolicy]] = None,
    ) -> None:
        self.backpressure = backpressure
        self.default_policy = default_policy
        self.tenant_policies = dict(tenant_policies or {})

    def policy_for(self, tenant: str) -> TenantPolicy:
        return self.tenant_policies.get(tenant, self.default_policy)

    def admit(
        self,
        options: dict,
        tenant: str,
        queue_depth: int,
        tenant_queued: int,
    ) -> Admission:
        """Run the ladder for one submission.

        Args:
            options: canonical options (see
                :func:`repro.service.hashing.canonical_options`); the
                returned admission carries the clamped copy.
            queue_depth: jobs currently queued or running server-wide.
            tenant_queued: of those, how many belong to ``tenant``.
        """
        bp = self.backpressure
        policy = self.policy_for(tenant)

        if queue_depth >= bp.hard_limit:
            return Admission(
                accepted=False,
                options=dict(options),
                retry_after_s=bp.retry_after_s,
                reason="queue_full",
            )
        if policy.max_queued is not None and tenant_queued >= policy.max_queued:
            return Admission(
                accepted=False,
                options=dict(options),
                retry_after_s=bp.retry_after_s,
                reason="tenant_quota",
            )

        clamped = dict(options)
        degraded = False
        if policy.max_conflicts is not None:
            clamped["max_conflicts"] = min(
                clamped["max_conflicts"], policy.max_conflicts
            )
        if queue_depth >= bp.soft_limit:
            shed = min(clamped["max_conflicts"], bp.degraded_max_conflicts)
            degraded = shed < clamped["max_conflicts"]
            clamped["max_conflicts"] = shed
        return Admission(
            accepted=True,
            options=clamped,
            degraded=degraded,
            reason="degraded_budget" if degraded else "",
        )

    def clamp_deadline(
        self, requested_s: Optional[float], tenant: str
    ) -> Optional[float]:
        """The effective run deadline for a tenant's job (engine
        ``deadline`` seconds; None = no deadline)."""
        ceiling = self.policy_for(tenant).max_deadline_s
        if ceiling is None:
            return requested_s
        if requested_s is None:
            return ceiling
        return min(requested_s, ceiling)
