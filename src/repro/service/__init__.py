"""ATPG-as-a-service: a crash-safe async job server over the engine.

The paper's thesis — practical ATPG instances are easy — pays off
operationally when one engine serves many netlists: the canonical
compile order (PR 5) makes verdicts bit-identical across processes, so
a *content-addressed* result cache can safely share them across
tenants, turning the engine's intra-circuit cache hit rates into
cross-request hit rates.

Layers (each importable and testable without the HTTP server):

* :mod:`repro.service.hashing` — canonical circuit/job hashing (the
  content address);
* :mod:`repro.service.store` — the certified result cache (witness
  replay on read is the trust boundary);
* :mod:`repro.service.jobs` — the on-disk job store and crash
  recovery (journal-backed re-adoption of in-flight jobs);
* :mod:`repro.service.budgets` — tenant budget clamps and the
  backpressure/degradation admission ladder;
* :mod:`repro.service.runner` — the child-process job executor
  (ParallelAtpgEngine with checkpoint journaling);
* :mod:`repro.service.server` — the stdlib-asyncio HTTP front end
  (``repro serve``).
"""

from repro.service.hashing import canonical_circuit_hash, canonical_job_key
from repro.service.jobs import JobState, JobStore
from repro.service.store import ResultStore

__all__ = [
    "canonical_circuit_hash",
    "canonical_job_key",
    "JobState",
    "JobStore",
    "ResultStore",
]
