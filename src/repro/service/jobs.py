r"""The on-disk job store: crash-safe job lifecycle and re-adoption.

Every job lives in its own directory under ``<root>/jobs/<job_id>/``:

* ``job.json`` — the lifecycle document (state machine below), always
  replaced atomically so a crash never leaves a torn state;
* ``circuit.bench`` — the submitted netlist, exactly as received;
* ``journal.jsonl`` — the per-fault checkpoint journal the engine
  appends to as records settle (:mod:`repro.atpg.checkpoint`): the
  event stream's source of truth *and* the resume log;
* ``result.json`` — the final result document (atomic write).

State machine::

    QUEUED -> RUNNING -> DONE
       ^         |         \-> (terminal; also entered directly on a
       |         v              cache hit, with cache_hit=true)
       +---- (re-adopted) -> FAILED (terminal, attempts exhausted)

Crash recovery is the point of this layout: the job id doubles as the
directory name, the journal is flushed per record, and ``job.json`` is
atomic, so after a ``kill -9`` at *any* instant the store re-derives
the full queue by scanning directories.  ``RUNNING`` jobs are
re-adopted — their recorded runner pid is killed if still alive (the
orphan would otherwise race the re-adopted run for the journal), the
job goes back to ``QUEUED`` with ``adoptions + 1``, and the next run
resumes from the journal, re-dispatching only unsettled faults.

The job id is derived from the canonical job key
(:mod:`repro.service.hashing`), which is what makes submission dedupe
trivial: an identical submission maps onto the identical directory.

Multi-node fencing: when several nodes share the store, ownership of a
job is a lease (``lease.json`` next to ``job.json``, see
:mod:`repro.service.lease`).  Every ``job.json`` write by an owner
passes a :class:`~repro.service.lease.FenceGuard`; the store rejects
writes bearing a stale fencing token
(:class:`~repro.service.lease.StaleTokenError`), so a paused-then-
resumed zombie runner can never clobber the new owner's state.  The
last granted token is persisted in the meta (``fence_token``) and fed
back as the acquisition floor, keeping tokens monotonic even over a
destroyed lease file.
"""

from __future__ import annotations

import enum
import json
import os
import signal
import time
from pathlib import Path
from typing import Optional

from repro.io.atomic import atomic_write_json

JOB_SCHEMA_VERSION = 1

#: Re-adoptions of one job before the store stops trusting it (a job
#: that takes every runner down is the service-level poisoned shard).
MAX_ADOPTIONS = 3


class JobState(enum.Enum):
    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"

    @property
    def terminal(self) -> bool:
        return self in (JobState.DONE, JobState.FAILED)


def job_id_for_key(job_key: str) -> str:
    """Job id = prefixed truncation of the canonical job key."""
    return f"j{job_key[:24]}"


class JobStore:
    """Filesystem-backed job registry (see module docstring)."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.jobs_dir = self.root / "jobs"
        self.jobs_dir.mkdir(parents=True, exist_ok=True)

    # -- paths ----------------------------------------------------------
    def job_dir(self, job_id: str) -> Path:
        if not job_id or "/" in job_id or job_id.startswith("."):
            raise ValueError(f"malformed job id {job_id!r}")
        return self.jobs_dir / job_id

    def meta_path(self, job_id: str) -> Path:
        return self.job_dir(job_id) / "job.json"

    def lease_path(self, job_id: str) -> Path:
        return self.job_dir(job_id) / "lease.json"

    def circuit_path(self, job_id: str) -> Path:
        return self.job_dir(job_id) / "circuit.bench"

    def journal_path(self, job_id: str) -> Path:
        return self.job_dir(job_id) / "journal.jsonl"

    def result_path(self, job_id: str) -> Path:
        return self.job_dir(job_id) / "result.json"

    # -- lifecycle ------------------------------------------------------
    def create(
        self,
        job_id: str,
        *,
        job_key: str,
        circuit_hash: str,
        circuit_name: str,
        netlist_text: str,
        options: dict,
        tenant: str,
        degraded: bool = False,
    ) -> dict:
        """Materialise a new QUEUED job on disk and return its meta."""
        directory = self.job_dir(job_id)
        directory.mkdir(parents=True, exist_ok=True)
        self.circuit_path(job_id).write_text(netlist_text, encoding="utf-8")
        meta = {
            "schema": JOB_SCHEMA_VERSION,
            "id": job_id,
            "state": JobState.QUEUED.value,
            "job_key": job_key,
            "circuit_hash": circuit_hash,
            "circuit_name": circuit_name,
            "options": options,
            "tenant": tenant,
            "degraded": degraded,
            "cache_hit": False,
            "adoptions": 0,
            "runner_pid": None,
            "fence_token": 0,
            "abort_reason": None,
            "submitted_at": time.time(),
            "started_at": None,
            "finished_at": None,
            "error": None,
        }
        self.write_meta(meta)
        return meta

    def write_meta(self, meta: dict, fence=None) -> None:
        """Atomically replace ``job.json``; with ``fence`` set, first
        prove lease ownership (raises
        :class:`~repro.service.lease.StaleTokenError` for a zombie)."""
        if fence is not None:
            fence()
        atomic_write_json(self.meta_path(meta["id"]), meta, fp="job.meta")

    def load_meta(self, job_id: str) -> Optional[dict]:
        try:
            return json.loads(
                self.meta_path(job_id).read_text(encoding="utf-8")
            )
        except (OSError, json.JSONDecodeError):
            return None

    def set_state(
        self, job_id: str, state: JobState, fence=None, **fields
    ) -> dict:
        """Atomically transition ``job_id`` (read-modify-replace).

        ``fence`` (a :class:`~repro.service.lease.FenceGuard`) makes the
        transition an *owner* write: a stale fencing token is rejected
        before anything touches disk.
        """
        meta = self.load_meta(job_id)
        if meta is None:
            raise KeyError(f"no such job {job_id!r}")
        meta["state"] = state.value
        meta.update(fields)
        self.write_meta(meta, fence=fence)
        return meta

    def load_result(self, job_id: str) -> Optional[dict]:
        try:
            return json.loads(
                self.result_path(job_id).read_text(encoding="utf-8")
            )
        except (OSError, json.JSONDecodeError):
            return None

    def list_jobs(self) -> list[dict]:
        """All job metas, oldest submission first."""
        metas = []
        for entry in sorted(self.jobs_dir.iterdir()):
            if not entry.is_dir():
                continue
            meta = self.load_meta(entry.name)
            if meta is not None:
                metas.append(meta)
        metas.sort(key=lambda m: (m.get("submitted_at") or 0.0, m["id"]))
        return metas

    # -- crash recovery -------------------------------------------------
    def sweep_temps(self) -> int:
        """Remove orphaned atomic-write temp files.

        A SIGKILL between ``mkstemp`` and ``os.replace`` leaks exactly
        one fsynced-but-uncommitted ``*.tmp`` sibling (the error paths
        unlink theirs, but no ``finally`` survives SIGKILL).  Harmless
        to correctness — readers never look at temp names — but the
        recovery sweep keeps the store clean and lets the chaos matrix
        assert "no orphaned temp files" after every crash point.
        """
        removed = 0
        for tmp in self.jobs_dir.glob("*/*.tmp"):
            try:
                tmp.unlink()
            except OSError:
                continue
            removed += 1
        return removed

    def fail_exhausted(self, meta: dict, detail: str = "") -> dict:
        """Land a job that burned its adoption budget in FAILED with a
        machine-readable reason — it must never stall in QUEUED nor
        poison the queue forever (surfaced at ``/healthz`` as
        ``adoption_exhausted``)."""
        return self.set_state(
            meta["id"],
            JobState.FAILED,
            finished_at=time.time(),
            abort_reason="adoption_exhausted",
            error=(
                f"abandoned after {meta['adoptions']} re-adoptions"
                + (f" ({detail})" if detail else "")
            ),
        )

    def recover(self, node_id: Optional[str] = None) -> list[dict]:
        """Re-adopt every non-terminal job after a restart.

        Returns the re-queued metas in submission order.  RUNNING jobs
        get their recorded runner pid SIGKILLed first if it is still
        alive: the previous server may have died (``kill -9``) while
        its forked runner kept going, and two writers on one journal is
        the one topology the torn-line tolerance cannot repair.  Jobs
        past :data:`MAX_ADOPTIONS` are FAILED with
        ``abort_reason="adoption_exhausted"`` instead of re-queued — a
        submission that kills every runner must not poison the queue
        forever.

        Args:
            node_id: when the store is shared between nodes, pass this
                node's id — RUNNING jobs owned by a *live* lease of a
                different node are left strictly alone (their owner is
                healthy; stealing is the scan loop's job once the lease
                expires).  ``None`` preserves the single-node
                behaviour: every non-terminal job is this process's to
                adopt.
        """
        self.sweep_temps()
        adopted = []
        for meta in self.list_jobs():
            state = JobState(meta["state"])
            if state.terminal:
                continue
            if state is JobState.RUNNING:
                if node_id is not None and self._foreign_live_lease(
                    meta["id"], node_id
                ):
                    continue
                _kill_if_alive(meta.get("runner_pid"))
                if meta["adoptions"] + 1 > MAX_ADOPTIONS:
                    self.fail_exhausted(meta)
                    continue
                meta = self.set_state(
                    meta["id"],
                    JobState.QUEUED,
                    adoptions=meta["adoptions"] + 1,
                    runner_pid=None,
                )
            adopted.append(meta)
        return adopted

    def _foreign_live_lease(self, job_id: str, node_id: str) -> bool:
        """True when ``job_id`` is owned by a live lease of another
        node (lazy import: lease.py imports failpoints only)."""
        from repro.service.lease import LeaseFile

        # TTL is irrelevant for reading liveness; any positive value.
        return LeaseFile(
            self.lease_path(job_id), node_id, ttl_s=1.0
        ).held_by_other()


def _kill_if_alive(pid: Optional[int]) -> None:
    """SIGKILL a recorded runner pid if that process still exists."""
    if not pid or pid == os.getpid():
        return
    try:
        os.kill(pid, signal.SIGKILL)
    except (OSError, ProcessLookupError):
        return
    try:
        os.waitpid(pid, os.WNOHANG)
    except (ChildProcessError, OSError):
        pass
