"""The asyncio HTTP front end: ``repro serve``.

Pure stdlib: ``asyncio.start_server`` plus a ~100-line HTTP/1.1 subset
(request line, headers, Content-Length bodies, chunked responses for
the event stream).  Every connection is handled close-on-response; the
service's durability never depends on connection state.

API contract (documented in README § Service):

========  ======================  =======================================
method    path                    behaviour
========  ======================  =======================================
POST      /jobs                   submit ``{"netlist": <bench text>,
                                  "options": {...}, "tenant": "...",
                                  "deadline_s": <float>}``; 202 queued /
                                  200 deduped or served from cache /
                                  400 bad input / 413 too large /
                                  429 + Retry-After refused /
                                  503 draining
GET       /jobs                   job listing (metas only)
GET       /jobs/<id>              job meta, result inline when DONE
GET       /jobs/<id>/events       ndjson stream of per-fault records as
                                  they settle (chunked; replays the
                                  journal, then follows it live)
GET       /healthz                liveness + queue depth + totals
========  ======================  =======================================

Crash model: all job state lives in the on-disk job store; the process
holds only caches of it.  ``kill -9`` at any instant loses at most the
journal line being written (tolerated by the torn-line reader); on
restart :meth:`AtpgService.recover` kills orphaned runner processes,
re-queues in-flight jobs, and resumes them from their journals.
SIGTERM/SIGINT drain gracefully: stop accepting (503), give running
runners ``drain_timeout_s`` to finish, SIGKILL the stragglers (their
journals are flushed per record, so nothing settled is lost), re-queue
their jobs on disk, exit 0.

Multi-node model: several ``repro serve`` processes may point at one
shared ``--data-dir``.  Ownership of a dispatched job is a lease
(:mod:`repro.service.lease`): acquired before the runner forks, renewed
by this server's heartbeat task, stolen (with a fencing-token bump) by
any peer once the heartbeat stops.  The scan loop polls the shared
store for work this node does not own — freshly submitted jobs from
peers, and RUNNING jobs whose lease expired because their owner died —
and the fencing token stamped into every journal append / CAS
promotion / ``job.json`` transition guarantees a paused-then-resumed
zombie owner is rejected at its next write (see the multi-node runbook
in the README).
"""

from __future__ import annotations

import asyncio
import json
import signal
import socket
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from repro.io.atomic import StorageError
from repro.io.bench import BenchFormatError, loads_bench
from repro.circuits.validate import ValidationError, check_network
from repro.service.budgets import (
    AdmissionController,
    BackpressureConfig,
    TenantPolicy,
)
from repro.service.hashing import (
    canonical_circuit_hash,
    canonical_job_key,
    canonical_options,
)
from repro.service.jobs import (
    MAX_ADOPTIONS,
    JobState,
    JobStore,
    _kill_if_alive,
    job_id_for_key,
)
from repro.service.lease import (
    LeaseFile,
    LeaseHeldError,
    LeaseLostError,
    StaleTokenError,
)
from repro.service.runner import spawn_runner
from repro.service.store import ResultStore

#: Event-loop poll granularity for dispatch/monitor/stream loops.
_TICK = 0.05

#: Hard ceiling on request head (request line + headers).
_MAX_HEAD_BYTES = 32 * 1024


@dataclass
class ServiceConfig:
    """Everything ``repro serve`` can tune."""

    data_dir: str | Path = "atpg-service-data"
    host: str = "127.0.0.1"
    port: int = 8321
    max_concurrent_jobs: int = 1
    workers_per_job: int = 1
    max_body_bytes: int = 8 * 1024 * 1024
    drain_timeout_s: float = 10.0
    #: This node's identity for lease ownership.  Defaults to the
    #: hostname, so a single-node restart re-adopts its own leases
    #: immediately; multiple nodes on one host (tests, containers
    #: sharing a volume) must pass distinct ``--node-id`` values.
    node_id: Optional[str] = None
    #: Lease time-to-live.  A dead node's jobs become stealable this
    #: many seconds after its last heartbeat; the heartbeat renews at
    #: a third of it.  Lower = faster takeover, more lease traffic.
    lease_ttl_s: float = 10.0
    #: How often the scan loop polls the shared store for foreign work
    #: (peer submissions, expired leases).
    scan_interval_s: float = 1.0
    #: Size bound for the certified result cache (LRU-evicted past it);
    #: ``None`` = unbounded (the pre-eviction behaviour).
    cache_max_mb: Optional[float] = None
    backpressure: BackpressureConfig = field(default_factory=BackpressureConfig)
    default_policy: TenantPolicy = field(default_factory=TenantPolicy)
    tenant_policies: dict[str, TenantPolicy] = field(default_factory=dict)


@dataclass
class ServiceTotals:
    """Monotonic per-process counters surfaced at /healthz.

    ``solver_sat_calls`` sums the ``sat_calls`` of every result produced
    by a runner this process started — a cache-served submission adds
    exactly zero, which is how the smoke/chaos tests verify "served
    entirely from cache" instead of trusting a boolean.
    """

    submitted: int = 0
    deduped: int = 0
    cache_hits: int = 0
    refused: int = 0
    degraded_admissions: int = 0
    completed: int = 0
    failed: int = 0
    recovered: int = 0
    runner_crashes: int = 0
    solver_sat_calls: int = 0
    #: Multi-node / robustness counters: RUNNING jobs taken over from
    #: another node's expired lease; leases this node lost mid-run;
    #: jobs FAILED for burning their adoption budget; jobs FAILED on a
    #: disk fault (ENOSPC/EIO).
    lease_steals: int = 0
    lease_lost: int = 0
    adoption_exhausted: int = 0
    storage_errors: int = 0

    def as_dict(self) -> dict:
        return dict(self.__dict__)


class AtpgService:
    """The service core: admission, queueing, dispatch, recovery.

    Owns no HTTP state — :class:`ServiceHttp` below is a thin codec over
    this object, and tests drive it directly.
    """

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        root = Path(config.data_dir)
        self.store = JobStore(root)
        self.results = ResultStore(
            root / "cas",
            max_bytes=(
                int(config.cache_max_mb * 1024 * 1024)
                if config.cache_max_mb is not None
                else None
            ),
        )
        self.admission = AdmissionController(
            config.backpressure,
            default_policy=config.default_policy,
            tenant_policies=config.tenant_policies,
        )
        self.queue: list[str] = []
        self.running: dict[str, object] = {}  # job_id -> runner process
        self.node_id = config.node_id or socket.gethostname()
        #: Leases this node currently holds, job_id -> LeaseFile.  The
        #: heartbeat task renews these; the monitor releases them.
        self.leases: dict[str, LeaseFile] = {}
        self.totals = ServiceTotals()
        self.draining = False
        self.started_at = time.time()

    # -- leases ---------------------------------------------------------
    def _lease_for(self, job_id: str) -> LeaseFile:
        return LeaseFile(
            self.store.lease_path(job_id),
            self.node_id,
            ttl_s=self.config.lease_ttl_s,
        )

    def _adopt_running(self, meta: dict) -> Optional[dict]:
        """Take over a RUNNING job whose lease is not live-and-foreign.

        This is both the restart path (re-adopting our own jobs) and
        the takeover path (stealing a dead peer's).  Acquiring bumps
        the fencing token, so the previous owner's runner — if it is a
        paused zombie rather than a corpse — is rejected at its next
        write.  Returns the re-queued meta, or ``None`` when the job
        was not adoptable (live foreign lease, lost race, exhausted
        adoption budget, or a faulting disk).
        """
        job_id = meta["id"]
        lease = self._lease_for(job_id)
        previous = lease.peek()
        try:
            granted = lease.acquire(
                token_floor=meta.get("fence_token") or 0
            )
        except LeaseHeldError:
            return None  # owner is alive (or a peer beat us to it)
        except StorageError:
            return None  # disk fault: retry on the next scan tick
        stolen = previous is not None and previous.owner != self.node_id
        try:
            _kill_if_alive(meta.get("runner_pid"))
            if meta["adoptions"] + 1 > MAX_ADOPTIONS:
                self.store.fail_exhausted(meta)
                self.totals.adoption_exhausted += 1
                self.totals.failed += 1
                return None
            meta = self.store.set_state(
                job_id,
                JobState.QUEUED,
                fence=lease.guard(),
                adoptions=meta["adoptions"] + 1,
                runner_pid=None,
                fence_token=granted.token,
            )
        except (StaleTokenError, LeaseLostError, StorageError):
            return None
        finally:
            try:
                lease.release()
            except (LeaseLostError, StorageError):
                pass
        if stolen:
            self.totals.lease_steals += 1
        return meta

    # -- startup recovery ----------------------------------------------
    def recover(self) -> int:
        """Re-adopt persisted queue state after a restart.

        RUNNING jobs owned by a *live* lease of another node are left
        strictly alone — their owner is healthy, and the scan loop will
        steal them if its heartbeat ever stops.
        """
        self.store.sweep_temps()
        adopted = []
        for meta in self.store.list_jobs():
            state = JobState(meta["state"])
            if state.terminal:
                continue
            if state is JobState.RUNNING:
                meta = self._adopt_running(meta)
                if meta is None:
                    continue
            adopted.append(meta)
        for meta in adopted:
            self.queue.append(meta["id"])
        self.totals.recovered = len(adopted)
        return len(adopted)

    # -- shared-store scan ----------------------------------------------
    def scan_store(self) -> int:
        """One pass over the shared store for work this node does not
        track: QUEUED jobs a peer submitted, and RUNNING jobs whose
        lease expired because their owner died.  Returns how many jobs
        entered the local queue."""
        tracked = set(self.queue) | set(self.running.keys())
        picked = 0
        for meta in self.store.list_jobs():
            job_id = meta["id"]
            if job_id in tracked:
                continue
            state = JobState(meta["state"])
            if state.terminal:
                continue
            if state is JobState.RUNNING:
                meta = self._adopt_running(meta)
                if meta is None:
                    continue
            self.queue.append(job_id)
            picked += 1
        return picked

    async def scan_loop(self) -> None:
        """Poll the shared store on ``scan_interval_s``, forever."""
        try:
            while True:
                await asyncio.sleep(self.config.scan_interval_s)
                if not self.draining:
                    self.scan_store()
        except asyncio.CancelledError:
            return

    # -- heartbeat ------------------------------------------------------
    def renew_leases(self) -> None:
        """Renew every held lease; a lease someone stole out from under
        us means *they* own the job now — kill our runner immediately
        (two writers on one journal is the unrecoverable topology) and
        leave the job's state strictly alone."""
        for job_id, lease in list(self.leases.items()):
            if lease.token is None:
                self.leases.pop(job_id, None)
                continue
            try:
                lease.renew()
            except LeaseLostError:
                self.totals.lease_lost += 1
                self.leases.pop(job_id, None)
                process = self.running.get(job_id)
                if process is not None and process.is_alive():
                    process.kill()
            except StorageError:
                pass  # disk fault: the lease stays valid until TTL

    async def heartbeat_loop(self) -> None:
        interval = max(self.config.lease_ttl_s / 3.0, _TICK)
        try:
            while True:
                await asyncio.sleep(interval)
                self.renew_leases()
        except asyncio.CancelledError:
            return

    # -- admission ------------------------------------------------------
    def _queue_depth(self) -> int:
        return len(self.queue) + len(self.running)

    def _tenant_queued(self, tenant: str) -> int:
        count = 0
        for job_id in list(self.queue) + list(self.running):
            meta = self.store.load_meta(job_id)
            if meta is not None and meta.get("tenant") == tenant:
                count += 1
        return count

    def submit(
        self,
        netlist_text: str,
        options: Optional[dict] = None,
        tenant: str = "default",
        deadline_s: Optional[float] = None,
    ) -> tuple[int, dict]:
        """Admit one submission; returns (http_status, response_doc)."""
        self.totals.submitted += 1
        if self.draining:
            return 503, {"error": "draining"}
        try:
            opts = canonical_options(options)
        except ValueError as exc:
            return 400, {"error": str(exc)}
        try:
            network = loads_bench(netlist_text, name="submission")
            check_network(network)
        except (BenchFormatError, ValidationError) as exc:
            return 400, {"error": f"invalid netlist: {exc}"}

        # Tenant conflict-budget ceilings apply before the cache lookup:
        # they are deterministic per tenant, so they belong to the job's
        # cache identity.
        policy = self.admission.policy_for(tenant)
        if policy.max_conflicts is not None:
            opts["max_conflicts"] = min(
                opts["max_conflicts"], policy.max_conflicts
            )

        hit = self._serve_existing(network, opts, tenant)
        if hit is not None:
            return hit

        admission = self.admission.admit(
            opts, tenant, self._queue_depth(), self._tenant_queued(tenant)
        )
        if not admission.accepted:
            self.totals.refused += 1
            return 429, {
                "error": admission.reason,
                "retry_after_s": admission.retry_after_s,
            }
        if admission.degraded:
            self.totals.degraded_admissions += 1
            # The shed budget changes the cache identity: re-check for
            # an existing degraded twin before creating one.
            hit = self._serve_existing(
                network, admission.options, tenant, degraded=True
            )
            if hit is not None:
                return hit

        meta = self._create_job(
            network, netlist_text, admission.options, tenant,
            deadline_s=self.admission.clamp_deadline(deadline_s, tenant),
            degraded=admission.degraded,
        )
        self.queue.append(meta["id"])
        return 202, {"job": meta}

    def _serve_existing(
        self,
        network,
        opts: dict,
        tenant: str,
        degraded: bool = False,
    ) -> Optional[tuple[int, dict]]:
        """Dedupe against live jobs and the certified result cache."""
        key = canonical_job_key(network, opts)
        job_id = job_id_for_key(key)
        meta = self.store.load_meta(job_id)
        if meta is not None:
            self.totals.deduped += 1
            return 200, {"job": meta, "deduped": True}
        doc = self.results.get(key, network)
        if doc is not None:
            # Materialise a DONE job so /jobs/<id> and /events work
            # identically for cached and computed results.
            self.totals.cache_hits += 1
            meta = self._create_job(
                network, "", opts, tenant, deadline_s=None, degraded=degraded,
                job_key=key,
            )
            from repro.io.atomic import atomic_write_json

            atomic_write_json(self.store.result_path(job_id), doc)
            meta = self.store.set_state(
                job_id,
                JobState.DONE,
                cache_hit=True,
                finished_at=time.time(),
            )
            return 200, {"job": meta, "cache_hit": True}
        return None

    def _create_job(
        self,
        network,
        netlist_text: str,
        opts: dict,
        tenant: str,
        deadline_s: Optional[float],
        degraded: bool,
        job_key: Optional[str] = None,
    ) -> dict:
        key = job_key or canonical_job_key(network, opts)
        meta = self.store.create(
            job_id_for_key(key),
            job_key=key,
            circuit_hash=canonical_circuit_hash(network),
            circuit_name=network.name,
            netlist_text=netlist_text,
            options=opts,
            tenant=tenant,
            degraded=degraded,
        )
        meta["workers"] = self.config.workers_per_job
        meta["deadline_s"] = deadline_s
        self.store.write_meta(meta)
        return meta

    # -- dispatch & supervision ----------------------------------------
    async def dispatch_loop(self) -> None:
        """Pull queued jobs into runner processes, forever."""
        try:
            while True:
                if (
                    not self.draining
                    and self.queue
                    and len(self.running) < self.config.max_concurrent_jobs
                ):
                    job_id = self.queue.pop(0)
                    self._start_runner(job_id)
                    continue
                await asyncio.sleep(_TICK)
        except asyncio.CancelledError:
            return

    def _start_runner(self, job_id: str) -> None:
        meta = self.store.load_meta(job_id)
        if meta is None or JobState(meta["state"]).terminal:
            return
        if JobState(meta["state"]) is JobState.RUNNING:
            # Raced a peer between scan and dispatch: adoptable only if
            # its lease is dead, and then with the adoption bump.
            meta = self._adopt_running(meta)
            if meta is None:
                return
        lease = self._lease_for(job_id)
        try:
            granted = lease.acquire(token_floor=meta.get("fence_token") or 0)
        except (LeaseHeldError, StorageError):
            return  # a peer owns it (or the disk faulted): not ours
        guard = lease.guard()
        self.leases[job_id] = lease
        try:
            self.store.set_state(
                job_id,
                JobState.RUNNING,
                fence=guard,
                started_at=time.time(),
                fence_token=granted.token,
            )
            process = spawn_runner(self.store, job_id, fence=guard)
            # Recorded before any await: crash recovery kills this pid
            # if the server dies while the runner is still going.
            self.store.set_state(
                job_id, JobState.RUNNING, fence=guard, runner_pid=process.pid
            )
        except (StaleTokenError, StorageError):
            self.leases.pop(job_id, None)
            try:
                lease.release()
            except (LeaseLostError, StorageError):
                pass
            return
        self.running[job_id] = process
        asyncio.get_running_loop().create_task(
            self._monitor_runner(job_id, process)
        )

    async def _monitor_runner(self, job_id: str, process) -> None:
        while process.is_alive():
            await asyncio.sleep(_TICK)
        process.join()
        self.running.pop(job_id, None)
        lease = self.leases.pop(job_id, None)
        owned = lease is not None and lease.token is not None
        try:
            meta = self.store.load_meta(job_id)
            if meta is None:
                return
            state = JobState(meta["state"])
            if state is JobState.DONE:
                self.totals.completed += 1
                doc = self.store.load_result(job_id)
                if doc is not None:
                    self.totals.solver_sat_calls += (
                        doc.get("stats", {}).get("sat_calls", 0)
                    )
            elif state is JobState.FAILED:
                self.totals.failed += 1
                if meta.get("abort_reason") == "storage_error":
                    self.totals.storage_errors += 1
                elif meta.get("abort_reason") == "adoption_exhausted":
                    self.totals.adoption_exhausted += 1
            elif not owned or process.exitcode == 2:
                # exit 2 = the runner fenced itself out; a missing
                # lease = the heartbeat already saw the steal.  Either
                # way the job belongs to its new owner — touch nothing.
                if owned:
                    self.totals.lease_lost += 1
            else:
                # Runner died without reaching a terminal state (OOM
                # kill, segfault, drain SIGKILL): same re-adoption path
                # a restart takes, with the same bounded attempts.
                self.totals.runner_crashes += 1
                try:
                    if meta["adoptions"] + 1 > MAX_ADOPTIONS:
                        self.store.set_state(
                            job_id,
                            JobState.FAILED,
                            fence=lease.guard(),
                            finished_at=time.time(),
                            abort_reason="adoption_exhausted",
                            error=(
                                f"runner died (exit {process.exitcode}) "
                                f"after {meta['adoptions']} re-adoptions"
                            ),
                        )
                        self.totals.failed += 1
                        self.totals.adoption_exhausted += 1
                    else:
                        self.store.set_state(
                            job_id,
                            JobState.QUEUED,
                            fence=lease.guard(),
                            adoptions=meta["adoptions"] + 1,
                            runner_pid=None,
                        )
                        if not self.draining:
                            self.queue.append(job_id)
                except (StaleTokenError, StorageError):
                    pass  # stolen (or disk fault) mid-bookkeeping
        finally:
            if owned:
                try:
                    lease.release()
                except (LeaseLostError, StorageError):
                    pass

    async def drain(self) -> None:
        """SIGTERM/SIGINT path: persist the queue, bound the wait, exit
        clean (see module docstring)."""
        self.draining = True
        deadline = time.monotonic() + self.config.drain_timeout_s
        while self.running and time.monotonic() < deadline:
            await asyncio.sleep(_TICK)
        for job_id, process in list(self.running.items()):
            if process.is_alive():
                process.kill()
            process.join()
            lease = self.leases.pop(job_id, None)
            owned = lease is not None and lease.token is not None
            meta = self.store.load_meta(job_id)
            if (
                owned
                and meta is not None
                and not JobState(meta["state"]).terminal
            ):
                # Planned interruption, not a runner fault: re-queue
                # without burning the job's re-adoption budget.
                try:
                    self.store.set_state(
                        job_id,
                        JobState.QUEUED,
                        fence=lease.guard(),
                        runner_pid=None,
                    )
                except (StaleTokenError, StorageError):
                    pass  # stolen or faulting disk: leave it be
            if owned:
                try:
                    lease.release()
                except (LeaseLostError, StorageError):
                    pass
            self.running.pop(job_id, None)

    # -- views ----------------------------------------------------------
    def healthz(self) -> dict:
        return {
            "state": "draining" if self.draining else "serving",
            "node_id": self.node_id,
            "queue_depth": len(self.queue),
            "running": len(self.running),
            "held_leases": sorted(
                job_id
                for job_id, lease in self.leases.items()
                if lease.token is not None
            ),
            "lease_ttl_s": self.config.lease_ttl_s,
            "uptime_s": time.time() - self.started_at,
            "totals": self.totals.as_dict(),
            "cache": self.results.stats(),
        }

    def job_view(self, job_id: str) -> Optional[dict]:
        meta = self.store.load_meta(job_id)
        if meta is None:
            return None
        view = {"job": meta}
        if JobState(meta["state"]) is JobState.DONE:
            view["result"] = self.store.load_result(job_id)
        return view


# ----------------------------------------------------------------------
# HTTP codec
# ----------------------------------------------------------------------
_STATUS_TEXT = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class _HttpError(Exception):
    def __init__(self, status: int, message: str) -> None:
        self.status = status
        self.message = message


class ServiceHttp:
    """Request framing + routing over one :class:`AtpgService`."""

    def __init__(self, service: AtpgService) -> None:
        self.service = service

    async def handle(self, reader, writer) -> None:
        try:
            try:
                method, target, headers = await self._read_head(reader)
                body = await self._read_body(reader, headers)
                await self._route(writer, method, target, headers, body)
            except _HttpError as exc:
                self._respond(writer, exc.status, {"error": exc.message})
            except Exception as exc:  # noqa: BLE001 — top-level guard
                self._respond(
                    writer, 500, {"error": f"{type(exc).__name__}: {exc}"}
                )
            await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_head(self, reader):
        head = await reader.readuntil(b"\r\n\r\n")
        if len(head) > _MAX_HEAD_BYTES:
            raise _HttpError(413, "request head too large")
        lines = head.decode("latin-1").split("\r\n")
        try:
            method, target, _version = lines[0].split(" ", 2)
        except ValueError:
            raise _HttpError(400, "malformed request line") from None
        headers = {}
        for line in lines[1:]:
            if not line:
                continue
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        return method.upper(), target, headers

    async def _read_body(self, reader, headers) -> bytes:
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            raise _HttpError(400, "bad Content-Length") from None
        if length < 0:
            raise _HttpError(400, "bad Content-Length")
        if length > self.service.config.max_body_bytes:
            raise _HttpError(413, "body too large")
        if length == 0:
            return b""
        return await reader.readexactly(length)

    async def _route(self, writer, method, target, headers, body) -> None:
        path = target.split("?", 1)[0]
        if path == "/healthz" and method == "GET":
            self._respond(writer, 200, self.service.healthz())
            return
        if path == "/jobs" and method == "POST":
            self._handle_submit(writer, headers, body)
            return
        if path == "/jobs" and method == "GET":
            self._respond(
                writer, 200, {"jobs": self.service.store.list_jobs()}
            )
            return
        if path.startswith("/jobs/"):
            rest = path[len("/jobs/"):]
            if method != "GET":
                raise _HttpError(405, "method not allowed")
            if rest.endswith("/events"):
                await self._stream_events(writer, rest[: -len("/events")])
                return
            view = self.service.job_view(rest)
            if view is None:
                raise _HttpError(404, f"no such job {rest!r}")
            self._respond(writer, 200, view)
            return
        raise _HttpError(404, f"no route for {method} {path}")

    def _handle_submit(self, writer, headers, body: bytes) -> None:
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            raise _HttpError(400, "body must be a JSON object") from None
        if not isinstance(payload, dict) or "netlist" not in payload:
            raise _HttpError(400, 'body must contain "netlist"')
        tenant = payload.get("tenant") or headers.get("x-tenant") or "default"
        deadline_s = payload.get("deadline_s")
        if deadline_s is not None and (
            not isinstance(deadline_s, (int, float)) or deadline_s < 0
        ):
            raise _HttpError(400, "deadline_s must be a non-negative number")
        status, doc = self.service.submit(
            payload["netlist"],
            options=payload.get("options"),
            tenant=str(tenant),
            deadline_s=deadline_s,
        )
        extra = {}
        if status == 429 and doc.get("retry_after_s") is not None:
            extra["Retry-After"] = str(int(doc["retry_after_s"]) or 1)
        self._respond(writer, status, doc, extra)

    # -- event streaming ------------------------------------------------
    async def _stream_events(self, writer, job_id: str) -> None:
        store = self.service.store
        meta = store.load_meta(job_id)
        if meta is None:
            raise _HttpError(404, f"no such job {job_id!r}")
        self._start_chunked(writer, 200)
        try:
            if meta.get("cache_hit"):
                # Cached jobs have no journal of their own: replay the
                # cached records as the event stream.
                doc = store.load_result(job_id) or {}
                for record in doc.get("records", []):
                    await self._chunk(writer, record)
            else:
                await self._follow_journal(writer, job_id)
            meta = store.load_meta(job_id) or meta
            await self._chunk(
                writer, {"type": "end", "state": meta["state"]}
            )
        finally:
            await self._end_chunked(writer)

    async def _follow_journal(self, writer, job_id: str) -> None:
        """Replay the journal, then follow it until the job settles.

        Reads in byte offsets and only emits complete lines, so a
        record mid-write is picked up on the next poll rather than
        served torn.
        """
        store = self.service.store
        path = store.journal_path(job_id)
        offset = 0
        pending = b""
        while True:
            meta = store.load_meta(job_id)
            state = JobState(meta["state"]) if meta else JobState.FAILED
            grew = False
            if path.exists():
                with open(path, "rb") as fh:
                    fh.seek(offset)
                    data = fh.read()
                if data:
                    grew = True
                    offset += len(data)
                    pending += data
                    while b"\n" in pending:
                        line, pending = pending.split(b"\n", 1)
                        try:
                            payload = json.loads(line)
                        except json.JSONDecodeError:
                            continue
                        if payload.get("type") == "record":
                            await self._chunk(writer, payload)
            if state.terminal and not grew:
                return
            await asyncio.sleep(_TICK if state.terminal else 2 * _TICK)

    # -- response plumbing ----------------------------------------------
    def _respond(
        self, writer, status: int, payload: dict, extra: dict | None = None
    ) -> None:
        body = (json.dumps(payload, indent=2) + "\n").encode("utf-8")
        headers = {
            "Content-Type": "application/json",
            "Content-Length": str(len(body)),
            "Connection": "close",
        }
        headers.update(extra or {})
        writer.write(self._head(status, headers) + body)

    def _start_chunked(self, writer, status: int) -> None:
        writer.write(
            self._head(
                status,
                {
                    "Content-Type": "application/x-ndjson",
                    "Transfer-Encoding": "chunked",
                    "Connection": "close",
                },
            )
        )

    async def _chunk(self, writer, payload: dict) -> None:
        data = (json.dumps(payload) + "\n").encode("utf-8")
        writer.write(f"{len(data):x}\r\n".encode("latin-1") + data + b"\r\n")
        await writer.drain()

    async def _end_chunked(self, writer) -> None:
        writer.write(b"0\r\n\r\n")
        await writer.drain()

    @staticmethod
    def _head(status: int, headers: dict) -> bytes:
        text = _STATUS_TEXT.get(status, "Unknown")
        lines = [f"HTTP/1.1 {status} {text}"]
        lines.extend(f"{k}: {v}" for k, v in headers.items())
        return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------
async def _serve_async(config: ServiceConfig) -> int:
    service = AtpgService(config)
    recovered = service.recover()
    http = ServiceHttp(service)
    server = await asyncio.start_server(
        http.handle, host=config.host, port=config.port
    )
    host, port = server.sockets[0].getsockname()[:2]
    # The smoke/chaos harnesses parse this line for the bound port.
    print(f"serving on {host}:{port} (recovered {recovered} jobs)", flush=True)

    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        loop.add_signal_handler(signum, stop.set)

    dispatcher = loop.create_task(service.dispatch_loop())
    heartbeat = loop.create_task(service.heartbeat_loop())
    scanner = loop.create_task(service.scan_loop())
    await stop.wait()
    print("drain: stopping intake", flush=True)
    server.close()
    await server.wait_closed()
    dispatcher.cancel()
    scanner.cancel()
    await service.drain()
    heartbeat.cancel()
    print(
        f"drained: {len(service.queue)} queued job(s) persisted; exit 0",
        flush=True,
    )
    return 0


def serve(config: ServiceConfig) -> int:
    """Run the service until SIGTERM/SIGINT; returns the exit code."""
    return asyncio.run(_serve_async(config))
