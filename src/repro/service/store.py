"""Content-addressed certified result cache.

One file per job key under ``<root>/cas/<key>.json``, written atomically
(:func:`repro.io.atomic.atomic_write_json`) so a crash mid-promotion
never leaves a torn document.

The cache is a *trust boundary*, exactly like the checkpoint journal's
resume path: a cached record may come from an older build, a corrupted
disk, or a malicious tenant who wrote into the data directory.  A read
therefore never returns records on faith — every TESTED record's
pattern is replayed through the independent fault simulator
(:func:`repro.atpg.certify.witness_ok`) against the *requesting*
submission's network before the document is served.  A document that
fails replay (or structural sanity) is evicted and the caller falls
through to a real solve.  UNSAT records carry no replayable witness;
they are covered by only caching documents whose run certified them
upstream and whose verdict digest matches on re-serve.

Only *complete, deterministic* results are cacheable: a document with
orchestration aborts (deadline, crashed shard) reflects the outage that
produced it, not the circuit, and is rejected at :func:`cacheable`.

With ``max_bytes`` set the store is additionally *size-bounded*: every
promotion evicts least-recently-used documents (file mtime, refreshed on
every served read) until the cache fits the budget again.  Eviction is a
plain ``unlink`` of whole atomically-written documents, so a concurrent
reader sees either the full document or a miss — never a torn one — and
a cache wiped by eviction only costs re-solving, never correctness.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Optional

from repro.atpg.certify import witness_ok
from repro.atpg.checkpoint import record_from_dict
from repro.atpg.engine import ABORT_BUDGET, ABORT_MEM, FaultStatus
from repro.circuits.network import Network
from repro.io.atomic import StorageError, atomic_write_json
from repro.service.failpoints import failpoint

RESULT_SCHEMA_VERSION = 1

#: Abort reasons that are deterministic functions of (circuit, options)
#: — a re-run would abort identically, so they do not block caching.
_DETERMINISTIC_ABORTS = frozenset({ABORT_BUDGET, ABORT_MEM})


def verdict_projection(record_dict: dict) -> list:
    """The verdict-bearing fields of one journaled/cached record.

    Timing and search-effort counters vary run to run on an identical
    machine; the *verdict* — status, test vector, abort reason,
    certification outcome — is what the canonical compile order makes
    bit-identical.  The digest below is computed over exactly this.
    """
    return [
        record_dict["net"],
        record_dict["value"],
        record_dict["status"],
        record_dict.get("test"),
        record_dict.get("abort_reason"),
        record_dict.get("certified"),
    ]


def verdict_digest(record_dicts: list[dict]) -> str:
    """SHA-256 over the ordered verdict projections of a result."""
    payload = json.dumps(
        [verdict_projection(r) for r in record_dicts], sort_keys=True
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def cacheable(result_doc: dict) -> bool:
    """True when a result document may enter the cache: every abort (if
    any) is a deterministic budget abort, never an orchestration one."""
    reasons = set()
    for record in result_doc.get("records", ()):
        if record.get("status") == FaultStatus.ABORTED.value:
            reasons.add(record.get("abort_reason"))
    return reasons <= _DETERMINISTIC_ABORTS


class ResultStore:
    """The on-disk content-addressed store (see module docstring)."""

    def __init__(
        self, root: str | Path, max_bytes: Optional[int] = None
    ) -> None:
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError("max_bytes must be > 0")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        # A SIGKILL mid-promotion leaks one uncommitted temp sibling;
        # sweep them at open so the store never accretes litter.
        for tmp in self.root.glob("*.tmp"):
            try:
                tmp.unlink()
            except OSError:
                pass
        self.max_bytes = max_bytes
        #: Read-side telemetry: served / missed / evicted-on-read
        #: (verification failures) / evicted-for-size (LRU).
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.size_evictions = 0
        #: Promotions skipped because the disk faulted (ENOSPC/EIO):
        #: the cache degrades to a bypass, never to a traceback.
        self.write_errors = 0

    def _path(self, key: str) -> Path:
        if not key or any(c not in "0123456789abcdef" for c in key):
            raise ValueError(f"malformed result key {key!r}")
        return self.root / f"{key}.json"

    def put(self, key: str, result_doc: dict, fence=None) -> bool:
        """Promote a completed result; returns False (and skips the
        write) for documents :func:`cacheable` rejects and for
        promotions the disk refused (``ENOSPC``/``EIO`` degrade to a
        cache bypass — the job's own result.json is the durable copy).

        ``fence`` (a :class:`~repro.service.lease.FenceGuard`) makes
        promotion an owner write: a zombie runner whose lease was stolen
        raises :class:`~repro.service.lease.StaleTokenError` *before*
        touching the shared CAS, and the promoted document records the
        fencing token that produced it.
        """
        if not cacheable(result_doc):
            return False
        doc = dict(result_doc)
        doc["schema"] = RESULT_SCHEMA_VERSION
        doc["verdict_digest"] = verdict_digest(doc.get("records", []))
        if fence is not None:
            fence()
            doc["fence_token"] = fence.token
        path = self._path(key)
        try:
            atomic_write_json(path, doc, fp="cas.promote")
        except StorageError:
            self.write_errors += 1
            return False
        if self.max_bytes is not None:
            self._evict_lru(keep=path)
        return True

    def _evict_lru(self, keep: Path) -> None:
        """Unlink least-recently-used documents until the cache fits
        ``max_bytes``.  The just-written ``keep`` document is never
        evicted, so a promotion always lands even on a tiny budget."""
        entries = []
        total = 0
        for path in self.root.glob("*.json"):
            try:
                stat = path.stat()
            except OSError:
                continue  # concurrently evicted
            total += stat.st_size
            if path != keep:
                entries.append((stat.st_mtime, path.name, stat.st_size, path))
        if total <= self.max_bytes:
            return
        # Oldest access first; name tie-break keeps the order stable on
        # filesystems with coarse mtime granularity.
        entries.sort(key=lambda e: (e[0], e[1]))
        for _, _, size, path in entries:
            if total <= self.max_bytes:
                break
            try:
                failpoint("cas.evict.pre_unlink")
                path.unlink(missing_ok=True)
            except OSError:
                continue  # a faulting unlink only delays eviction
            self.size_evictions += 1
            total -= size

    def get(self, key: str, network: Network) -> Optional[dict]:
        """Fetch the certified result for ``key``, or None.

        Every TESTED record is witness-replayed against ``network``
        before the document is trusted; a failing document is evicted.
        """
        path = self._path(key)
        try:
            doc = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            self.misses += 1
            return None
        if not self._verify(doc, network):
            self.evictions += 1
            path.unlink(missing_ok=True)
            self.misses += 1
            return None
        self.hits += 1
        if self.max_bytes is not None:
            # Refresh the LRU clock: a served document is the last one
            # size-bounded eviction should reclaim.
            try:
                os.utime(path)
            except OSError:
                pass  # concurrently evicted; the served doc is still good
        return doc

    def _verify(self, doc: dict, network: Network) -> bool:
        """The read-side trust boundary (see module docstring)."""
        if doc.get("schema") != RESULT_SCHEMA_VERSION:
            return False
        records = doc.get("records")
        if not isinstance(records, list):
            return False
        if doc.get("verdict_digest") != verdict_digest(records):
            return False
        for payload in records:
            try:
                record = record_from_dict(payload)
            except (KeyError, TypeError, ValueError):
                return False
            if record.status not in (FaultStatus.TESTED, FaultStatus.DROPPED):
                continue
            # DROPPED records claim detection by an earlier pattern, so
            # they carry a replayable witness exactly like TESTED ones.
            if record.test is None:
                return False
            if not witness_ok(network, record.fault, record.test):
                return False
        return True

    def current_bytes(self) -> int:
        """Total on-disk size of the cached documents."""
        total = 0
        for path in self.root.glob("*.json"):
            try:
                total += path.stat().st_size
            except OSError:
                continue
        return total

    def stats(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "size_evictions": self.size_evictions,
            "write_errors": self.write_errors,
            "max_bytes": self.max_bytes,
            "current_bytes": self.current_bytes(),
        }
