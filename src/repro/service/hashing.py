"""Canonical circuit and job hashing: the service's content address.

Two submissions should share one cache entry exactly when the engine is
guaranteed to produce interchangeable results for them.  That guarantee
rests on two normalisations:

* **Circuit canonicalisation** — the netlist is re-serialised into a
  canonical ``.bench``-like text: inputs sorted, outputs sorted, one
  line per gate sorted by target net, gate input order preserved
  (``XOR(a, b)`` and ``XOR(b, a)`` are logically equal but produce
  different Tseitin variable interleavings, so they do *not* collapse).
  Whitespace, comments, line order, and declaration order all wash out.
* **Option canonicalisation** — only the options that can change a
  record (solver, solver mode, budgets, ordering, certification mode,
  dropping) enter the key, serialised with sorted keys; presentation
  knobs (worker count, shard timeouts) stay out, because the replay
  merge makes records worker-count independent.

The job key is the SHA-256 over both; the circuit hash alone is also
exposed for observability (two option sets over one netlist share it).
"""

from __future__ import annotations

import hashlib
import json

from repro.circuits.gates import GateType, gate_function_name
from repro.circuits.network import Network

#: The option names that participate in the job key, with the defaults
#: the service applies when a submission omits them.  ``fresh`` solver
#: mode is the service default on purpose: it is the mode whose records
#: are bit-identical across resumes and worker counts, which is what
#: makes cached results safely shareable.
RESULT_OPTIONS = {
    "solver": "cdcl",
    "solver_mode": "fresh",
    "max_conflicts": 100_000,
    "fault_dropping": True,
    "certify": "witness",
    "share_learned": "cone",
    "drop_block_size": 64,
}


def canonical_circuit_text(network: Network) -> str:
    """The canonical serialisation hashed as the circuit's identity."""
    lines = []
    for net in sorted(network.inputs):
        lines.append(f"INPUT({net})")
    for net in sorted(network.outputs):
        lines.append(f"OUTPUT({net})")
    gate_lines = []
    for gate in network.gates():
        if gate.gate_type is GateType.INPUT:
            continue
        if gate.gate_type in (GateType.CONST0, GateType.CONST1):
            func, args = gate_function_name(gate.gate_type), ""
        else:
            func = gate_function_name(gate.gate_type)
            args = ",".join(gate.inputs)
        gate_lines.append(f"{gate.output}={func}({args})")
    lines.extend(sorted(gate_lines))
    return "\n".join(lines) + "\n"


def canonical_circuit_hash(network: Network) -> str:
    """SHA-256 hex digest of the canonical circuit text."""
    text = canonical_circuit_text(network)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def canonical_options(options: dict | None) -> dict:
    """Project ``options`` onto the result-determining set, with
    service defaults filled in.

    Raises:
        ValueError: for unknown option names (a typo silently ignored
            here would poison the cache key space).
    """
    options = dict(options or {})
    unknown = sorted(set(options) - set(RESULT_OPTIONS))
    if unknown:
        raise ValueError(f"unknown job options: {', '.join(unknown)}")
    merged = dict(RESULT_OPTIONS)
    merged.update(options)
    return merged


def canonical_job_key(network: Network, options: dict | None = None) -> str:
    """SHA-256 job key over (canonical circuit, canonical options)."""
    payload = json.dumps(canonical_options(options), sort_keys=True)
    digest = hashlib.sha256()
    digest.update(canonical_circuit_text(network).encode("utf-8"))
    digest.update(b"\x00")
    digest.update(payload.encode("utf-8"))
    return digest.hexdigest()
