"""Job execution: one forked runner process per job.

The server forks a runner per dispatched job (same isolation argument
as :class:`~repro.atpg.supervisor.ShardSupervisor`, one level up): a
runner that segfaults, gets OOM-killed, or is SIGKILLed at drain time
takes nothing down with it — the journal already holds every settled
fault, and re-adoption resumes the remainder.  Inside the runner the
job runs on :class:`~repro.atpg.parallel.ParallelAtpgEngine`, so the
full supervision ladder (per-shard timeout, retry with backoff,
bisection, degradation) applies to the job's own shards unchanged.

:func:`execute_job` is deliberately a plain synchronous function over
the on-disk job store — the forked child, the in-process test path, and
a future standalone worker fleet all call the same code.
"""

from __future__ import annotations

import multiprocessing
import time

from repro.atpg.checkpoint import record_to_dict
from repro.atpg.parallel import ParallelAtpgEngine
from repro.io.bench import loads_bench
from repro.io.atomic import atomic_write_json
from repro.service.jobs import JobState, JobStore
from repro.service.store import ResultStore, cacheable, verdict_digest


def result_document(meta: dict, summary) -> dict:
    """The result.json / cache document for a completed run."""
    records = [record_to_dict(r) for r in summary.records]
    return {
        "job_id": meta["id"],
        "job_key": meta["job_key"],
        "circuit_hash": meta["circuit_hash"],
        "circuit": summary.circuit,
        "options": meta["options"],
        "faults": len(summary.records),
        "status_counts": summary.status_counts(),
        "fault_coverage": summary.fault_coverage,
        "records": records,
        "verdict_digest": verdict_digest(records),
        "stats": summary.stats.as_dict(),
    }


def execute_job(store: JobStore, results: ResultStore, job_id: str) -> dict:
    """Run ``job_id`` to completion against the on-disk job store.

    Resumes from the job's journal when one exists (the re-adoption
    path), journals every record as it settles, writes ``result.json``
    atomically, promotes cacheable results into the content-addressed
    store, and transitions the job to DONE.  Exceptions propagate after
    the job is marked FAILED — the caller decides retry policy.
    """
    meta = store.load_meta(job_id)
    if meta is None:
        raise KeyError(f"no such job {job_id!r}")
    options = meta["options"]
    try:
        network = loads_bench(
            store.circuit_path(job_id).read_text(encoding="utf-8"),
            name=meta["circuit_name"],
        )
        journal = store.journal_path(job_id)
        resume_from = journal if journal.exists() else None
        engine = ParallelAtpgEngine(
            network,
            workers=meta.get("workers") or 1,
            solver=options["solver"],
            max_conflicts=options["max_conflicts"],
            drop_block_size=options["drop_block_size"],
            solver_mode=options["solver_mode"],
            certify=options["certify"],
            share_learned=options["share_learned"],
            deadline=meta.get("deadline_s"),
        )
        summary = engine.run(
            fault_dropping=options["fault_dropping"],
            resume_from=resume_from,
            checkpoint_to=journal,
        )
        doc = result_document(meta, summary)
        atomic_write_json(store.result_path(job_id), doc)
        if cacheable(doc):
            results.put(meta["job_key"], doc)
    except Exception as exc:
        store.set_state(
            job_id,
            JobState.FAILED,
            finished_at=time.time(),
            error=f"{type(exc).__name__}: {exc}",
        )
        raise
    store.set_state(job_id, JobState.DONE, finished_at=time.time())
    return doc


def _runner_child_main(root: str, job_id: str) -> None:
    """Forked runner body: execute the job, exit 0/1."""
    store = JobStore(root)
    results = ResultStore(JobStore(root).root / "cas")
    try:
        execute_job(store, results, job_id)
    except Exception:
        raise SystemExit(1)


def spawn_runner(store: JobStore, job_id: str):
    """Fork a runner process for ``job_id``; returns the live process.

    The caller must record ``process.pid`` into the job meta (so crash
    recovery can kill an orphaned runner) and join the process.
    """
    ctx = multiprocessing.get_context("fork")
    process = ctx.Process(
        target=_runner_child_main,
        args=(str(store.root), job_id),
        daemon=False,
    )
    process.start()
    return process
