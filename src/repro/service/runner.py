"""Job execution: one forked runner process per job.

The server forks a runner per dispatched job (same isolation argument
as :class:`~repro.atpg.supervisor.ShardSupervisor`, one level up): a
runner that segfaults, gets OOM-killed, or is SIGKILLed at drain time
takes nothing down with it — the journal already holds every settled
fault, and re-adoption resumes the remainder.  Inside the runner the
job runs on :class:`~repro.atpg.parallel.ParallelAtpgEngine`, so the
full supervision ladder (per-shard timeout, retry with backoff,
bisection, degradation) applies to the job's own shards unchanged.

:func:`execute_job` is deliberately a plain synchronous function over
the on-disk job store — the forked child, the in-process test path, and
a future standalone worker fleet all call the same code.

**Fencing.**  In a multi-node deployment the runner carries the
:class:`~repro.service.lease.FenceGuard` its server acquired: every
journal append, the result write, the CAS promotion, and the terminal
``job.json`` transition prove ownership first.  A runner whose lease
was stolen dies on :class:`~repro.service.lease.StaleTokenError`
*without* writing anything further — in particular it must NOT mark the
job FAILED, because the job now belongs to the new owner.

**Disk faults.**  An injected or real ``ENOSPC``/``EIO``
(:class:`~repro.io.atomic.StorageError`) lands the job in FAILED with
``abort_reason="storage_error"`` — a reasoned verdict the operator can
see at ``/healthz``, never a bare traceback.
"""

from __future__ import annotations

import multiprocessing
import time
from typing import Optional

from repro.atpg.checkpoint import (
    CheckpointError,
    load_checkpoint,
    record_to_dict,
)
from repro.atpg.parallel import ParallelAtpgEngine
from repro.io.bench import loads_bench
from repro.io.atomic import StorageError, atomic_write_json
from repro.service.jobs import JobState, JobStore
from repro.service.lease import FenceGuard, StaleTokenError
from repro.service.store import ResultStore, cacheable, verdict_digest


def result_document(meta: dict, summary) -> dict:
    """The result.json / cache document for a completed run."""
    records = [record_to_dict(r) for r in summary.records]
    return {
        "job_id": meta["id"],
        "job_key": meta["job_key"],
        "circuit_hash": meta["circuit_hash"],
        "circuit": summary.circuit,
        "options": meta["options"],
        "faults": len(summary.records),
        "status_counts": summary.status_counts(),
        "fault_coverage": summary.fault_coverage,
        "records": records,
        "verdict_digest": verdict_digest(records),
        "stats": summary.stats.as_dict(),
    }


def execute_job(
    store: JobStore,
    results: ResultStore,
    job_id: str,
    fence: Optional[FenceGuard] = None,
) -> dict:
    """Run ``job_id`` to completion against the on-disk job store.

    Resumes from the job's journal when one exists (the re-adoption
    path), journals every record as it settles, writes ``result.json``
    atomically, promotes cacheable results into the content-addressed
    store, and transitions the job to DONE.  With ``fence`` set, every
    one of those writes is fenced (see module docstring).  Exceptions
    propagate after the job is marked FAILED — except
    :class:`StaleTokenError`, which propagates *without* a FAILED mark
    (the new owner's job state is not ours to touch).
    """
    meta = store.load_meta(job_id)
    if meta is None:
        raise KeyError(f"no such job {job_id!r}")
    options = meta["options"]
    try:
        network = loads_bench(
            store.circuit_path(job_id).read_text(encoding="utf-8"),
            name=meta["circuit_name"],
        )
        journal = store.journal_path(job_id)
        resume_from = journal if journal.exists() else None
        if resume_from is not None:
            try:
                load_checkpoint(journal, circuit=meta["circuit_name"])
            except (CheckpointError, OSError):
                # A journal killed before its header line completed
                # holds no settled records (appends are strictly
                # ordered), so an unloadable journal is an empty one:
                # restart fresh instead of crash-looping on resume.
                journal.unlink(missing_ok=True)
                resume_from = None
        engine = ParallelAtpgEngine(
            network,
            workers=meta.get("workers") or 1,
            solver=options["solver"],
            max_conflicts=options["max_conflicts"],
            drop_block_size=options["drop_block_size"],
            solver_mode=options["solver_mode"],
            certify=options["certify"],
            share_learned=options["share_learned"],
            deadline=meta.get("deadline_s"),
        )
        summary = engine.run(
            fault_dropping=options["fault_dropping"],
            resume_from=resume_from,
            checkpoint_to=journal,
            checkpoint_fence=fence,
        )
        doc = result_document(meta, summary)
        if fence is not None:
            fence()
            doc["fence_token"] = fence.token
        atomic_write_json(store.result_path(job_id), doc, fp="job.result")
        if cacheable(doc):
            results.put(meta["job_key"], doc, fence=fence)
    except StaleTokenError:
        # Fenced out: the job was stolen.  Die without another write.
        raise
    except StorageError as exc:
        store.set_state(
            job_id,
            JobState.FAILED,
            fence=fence,
            finished_at=time.time(),
            abort_reason="storage_error",
            error=f"storage: {exc}",
        )
        raise
    except Exception as exc:
        store.set_state(
            job_id,
            JobState.FAILED,
            fence=fence,
            finished_at=time.time(),
            error=f"{type(exc).__name__}: {exc}",
        )
        raise
    store.set_state(job_id, JobState.DONE, fence=fence, finished_at=time.time())
    return doc


def _runner_child_main(root: str, job_id: str, fence_args) -> None:
    """Forked runner body: execute the job, exit 0/1 (2 = fenced out)."""
    store = JobStore(root)
    results = ResultStore(JobStore(root).root / "cas")
    fence = FenceGuard(*fence_args) if fence_args is not None else None
    try:
        execute_job(store, results, job_id, fence=fence)
    except StaleTokenError:
        raise SystemExit(2)
    except Exception:
        raise SystemExit(1)


def spawn_runner(store: JobStore, job_id: str, fence: Optional[FenceGuard] = None):
    """Fork a runner process for ``job_id``; returns the live process.

    The caller must record ``process.pid`` into the job meta (so crash
    recovery can kill an orphaned runner) and join the process.  The
    fence guard (if any) is re-materialised inside the child, so the
    runner's writes stay token-stamped even though the server keeps the
    lease heartbeat.
    """
    ctx = multiprocessing.get_context("fork")
    process = ctx.Process(
        target=_runner_child_main,
        args=(
            str(store.root),
            job_id,
            None
            if fence is None
            else (fence.lease_path, fence.owner, fence.token),
        ),
        daemon=False,
    )
    process.start()
    return process
