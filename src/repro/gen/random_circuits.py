"""Hutton-style parameterized random circuit generation (Section 5.2.3).

The paper's generated-circuit study used circ/gen (Hutton et al., DAC'96),
which synthesises random combinational netlists matching the *shape*
statistics of real benchmarks.  The decisive shape property for this
paper is "tree-ness": practical circuits are forests of output cones that
are mostly trees with *limited, mostly local reconvergence* (Section 7's
closing intuition).  A naive layered random DAG is an expander with
linear cut-width — topologically nothing like a benchmark.

This generator therefore builds each output cone top-down as a random
tree whose leaves are primary inputs, and introduces reconvergence by
probabilistically *reusing* an already-built subcircuit node instead of
growing a fresh subtree.  Reuse draws from the recently built pool
(recency ≈ locality), so reconvergent paths are short, as in real logic.

Parameters map onto benchmark statistics:

* ``reconvergence`` — probability that a requested operand reuses an
  existing node (0 ⇒ pure forest; benchmark-like ≈ 0.15–0.35);
* ``locality`` — recency bias of reuse (1 ⇒ only the most recent nodes,
  0 ⇒ uniform over the whole pool);
* ``depth`` — target cone depth (0 derives a benchmark-like value).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.circuits.gates import GateType
from repro.circuits.network import Network

# Inverting-heavy mix: deep chains of non-inverting gates drive signal
# probabilities to 0/1 (mostly-constant, hence mostly-redundant logic);
# NAND/NOR keep probabilities oscillating near 1/2, as in real mapped
# netlists.
_GATE_CHOICES = (
    GateType.NAND,
    GateType.NOR,
    GateType.AND,
    GateType.OR,
    GateType.NAND,
    GateType.NOR,
)


@dataclass
class RandomCircuitSpec:
    """Shape parameters for :func:`random_circuit`.

    Attributes:
        num_inputs: primary input pool size.
        num_gates: approximate logic gate count (generation stops once
            reached; the final cone completes, so slight overshoot).
        num_outputs: number of output cones to grow.
        max_fanin: fanin bound k_fi (the paper's mapped circuits use 3).
        depth: target cone depth; 0 derives ``~log2(gates per cone) + 2``.
        locality: recency bias of reuse in [0, 1].
        reconvergence: probability an operand reuses an existing node.
        global_reuse: fraction of reuses drawn uniformly from the WHOLE
            pool instead of the local window.  0 models real circuits
            (local reconvergence only); raising it injects long random
            links and drives the circuit towards an expander — the
            adversarial regime outside the paper's easy class.
        seed: RNG seed.
    """

    num_inputs: int
    num_gates: int
    num_outputs: int = 1
    max_fanin: int = 3
    depth: int = 0
    locality: float = 0.5
    reconvergence: float = 0.25
    global_reuse: float = 0.0
    seed: int = 0


def random_circuit(spec: RandomCircuitSpec) -> Network:
    """Generate a random tree-like combinational network.

    Every gate output is reachable from some primary output by
    construction (cones are grown from their roots), so the netlist has
    no dangling logic.

    Raises:
        ValueError: on non-sensical parameters.
    """
    if spec.num_inputs < 1 or spec.num_gates < 1:
        raise ValueError("need at least one input and one gate")
    if spec.max_fanin < 2:
        raise ValueError("max_fanin must be at least 2")
    if not 0.0 <= spec.reconvergence <= 1.0:
        raise ValueError("reconvergence must be a probability")

    rng = random.Random(spec.seed)
    network = Network(
        name=f"rand_i{spec.num_inputs}_g{spec.num_gates}_s{spec.seed}"
    )
    inputs = [network.add_input(f"pi{i}") for i in range(spec.num_inputs)]

    gates_per_cone = max(2, spec.num_gates // max(1, spec.num_outputs))
    depth = spec.depth or (gates_per_cone.bit_length() + 2)

    state = _GenState(
        rng=rng,
        network=network,
        inputs=inputs,
        spec=spec,
        pool=[],
        counter=0,
    )

    outputs: list[str] = []
    expected_cones = max(1, spec.num_outputs)
    while state.counter < spec.num_gates or len(outputs) < spec.num_outputs:
        # Each cone reads a *local window* of the PI space, and the window
        # drifts with the cone index (cf. a ripple adder: s_i depends on
        # a_0..a_i, so neighbouring outputs read neighbouring inputs).
        # Random windows would let far-apart cones share PIs, making PI
        # hyperedges span the whole arrangement and inflating cut-width
        # by the PI count; uniform global PI usage is worse still.
        progress = min(1.0, len(outputs) / expected_cones)
        state.pi_center = progress + rng.gauss(0.0, 1.5 / max(4, spec.num_inputs))
        # Shrink the depth budget as the gate budget runs out so the
        # final cone cannot overshoot the target badly.
        remaining = max(2, spec.num_gates - state.counter)
        cone_depth = min(depth, remaining.bit_length() + 1)
        root = _grow(state, cone_depth, force_gate=True)
        if root not in outputs:
            outputs.append(root)
        if len(outputs) >= spec.num_outputs and state.counter >= spec.num_gates:
            break
        if len(outputs) > 4 * spec.num_outputs:
            break  # safety valve for tiny gate budgets
    network.set_outputs(outputs)
    return network


@dataclass
class _GenState:
    rng: random.Random
    network: Network
    inputs: list[str]
    spec: RandomCircuitSpec
    pool: list[str]  # completed gate nets, in creation order
    counter: int
    pi_center: float = 0.5  # current cone's window centre in PI space
    pi_uses: dict[int, int] | None = None  # reads per PI index

    def draw_input(self, center_index: float) -> str:
        """The least-used primary input near ``center_index``.

        Two locality mechanisms combine here: the window is a fixed
        number of indices (a subfunction reads a bounded input window),
        and within the window the least-read PI wins — real netlists
        have small PI fanout, and a PI re-read all over a cone would
        carry a hyperedge spanning the cone's whole extent.
        """
        if self.pi_uses is None:
            self.pi_uses = {}
        target = center_index + self.rng.gauss(0.0, 1.2)
        base = min(len(self.inputs) - 1, max(0, round(target)))
        lo = max(0, base - 2)
        hi = min(len(self.inputs) - 1, base + 2)
        index = min(
            range(lo, hi + 1),
            key=lambda i: (self.pi_uses.get(i, 0), abs(i - base)),
        )
        self.pi_uses[index] = self.pi_uses.get(index, 0) + 1
        return self.inputs[index]

    def cone_center_index(self) -> float:
        """The current cone's window centre in absolute index units."""
        return self.pi_center * (len(self.inputs) - 1)


def _grow(
    state: _GenState,
    budget: int,
    force_gate: bool = False,
    center: float | None = None,
) -> str:
    """Build (or reuse) one node with depth at most ``budget``.

    ``center`` is the node's PI-window centre (absolute index units).
    Child subtrees receive slightly offset centres, with the offset
    shrinking as the depth budget runs out — hierarchical input
    locality: a cone's subfunctions read *sub-windows* of the cone's
    input window (Rent's rule at every level).  Without this, every leaf
    of a cone draws from the full cone window, each PI gets re-read
    across the cone's whole extent, and the PI hyperedges alone give the
    cone Θ(leaves) cut-width.
    """
    rng = state.rng
    spec = state.spec
    if center is None:
        center = state.cone_center_index()

    if not force_gate:
        if budget <= 0 or rng.random() < _leaf_probability(budget):
            return state.draw_input(center)
        if state.pool and rng.random() < spec.reconvergence:
            return _reuse(state)

    fanin = min(spec.max_fanin, rng.choice((2, 2, 2, 3, 3, 1)))
    if fanin == 1:
        operand = _grow(state, budget - 1, center=center)
        gate_type = GateType.NOT
        operands = [operand]
    else:
        # Draw distinct *base* signals first (a signal together with its
        # own inverse makes the gate constant), then flip random
        # polarities: without inversions, reused same-polarity signals
        # compose into heavily correlated (absorbed) logic and the
        # circuit becomes mostly redundant — real netlists are
        # irredundant to within a few percent.
        bases: list[str] = []
        subtree_spread = 0.6 * max(0, budget - 1) * (
            1.0 + 2.0 * (1.0 - spec.locality)
        )
        for _ in range(fanin):
            child_center = center + rng.gauss(0.0, subtree_spread)
            operand = _grow(state, budget - 1, center=child_center)
            if operand not in bases:
                bases.append(operand)
        operands = []
        for operand in bases:
            if rng.random() < 0.35:
                state.counter += 1
                inverted = f"g{state.counter}"
                state.network.add_gate(inverted, GateType.NOT, [operand])
                state.pool.append(inverted)
                operand = inverted
            operands.append(operand)
        gate_type = rng.choice(_GATE_CHOICES)
        if len(operands) == 1:
            gate_type = rng.choice((GateType.NOT, GateType.BUF))

    state.counter += 1
    net = f"g{state.counter}"
    state.network.add_gate(net, gate_type, operands)
    state.pool.append(net)
    return net


def _leaf_probability(budget: int) -> float:
    """Chance of terminating at a PI before the depth budget runs out."""
    return 0.08 if budget > 2 else 0.3


def _reuse(state: _GenState) -> str:
    """Pick an existing node from a constant-size recency window.

    The window size is independent of circuit size: reconvergent paths in
    real logic are *local* (the paper's Section 3.2/7 observation, and
    exactly the structure k-boundedness formalises).  A window that grew
    with the circuit would produce random long links and hence expander
    graphs with linear cut-width.
    """
    pool = state.pool
    if state.spec.global_reuse > 0 and state.rng.random() < state.spec.global_reuse:
        return pool[state.rng.randrange(len(pool))]
    locality = max(0.0, min(1.0, state.spec.locality))
    window = max(2, round(4 + 12 * (1.0 - locality)))
    start = max(0, len(pool) - window)
    return pool[state.rng.randrange(start, len(pool))]


def benchmark_like_suite(
    sizes: list[int], *, seed: int = 0, max_fanin: int = 3
) -> list[Network]:
    """A suite of generated circuits topologically resembling benchmarks.

    Args:
        sizes: target gate counts, one circuit per entry.
        seed: base RNG seed (each circuit perturbs it).
        max_fanin: fanin bound (3 matches the paper's mapping).
    """
    suite = []
    for index, size in enumerate(sizes):
        # Outputs grow sublinearly so cone sizes grow with the circuit
        # (a fixed gates-per-cone would cap every C_ψ^sub regardless of
        # circuit size and flatten the Figure-8 x-axis).
        spec = RandomCircuitSpec(
            num_inputs=max(6, size // 3),
            num_gates=size,
            num_outputs=max(1, round(size**0.5) // 2),
            max_fanin=max_fanin,
            locality=0.6,
            reconvergence=0.2,
            seed=seed + 1000 * index,
        )
        suite.append(random_circuit(spec))
    return suite
