"""Benchmark suite registry — the MCNC91/ISCAS85 stand-ins.

The original suites are not redistributable here, so each suite is
reconstructed from (a) the one universally-reproduced ISCAS85 netlist
(c17, embedded below verbatim in ``.bench`` form) and (b) parameterized
structural and random circuits whose topology matches the families the
suites contain (see DESIGN.md §2).  Every circuit is delivered already
mapped to ≤3-input AND/OR/INV, as the paper's experimental setup
prescribes (SIS ``tech_decomp``).

Known divergence from the real suites: randomly composed logic is far
more redundant than synthesized logic (absorbed terms everywhere), so
the random suite members carry 30-60 % untestable faults where real
benchmarks carry a few percent.  This does not affect the topology
experiments (Figure 8 and the generated-circuit study measure cut-width,
not testability) and only adds well-behaved UNSAT instances to Figure 1;
:func:`repro.apps.redundancy.remove_redundancies` is available for
callers who need irredundant versions (at the cost of much smaller
circuits — random logic collapses under optimization).  Instances are
cached per process, so repeated suite iteration is cheap.
"""

from __future__ import annotations

import functools

from collections.abc import Callable, Iterator

from repro.circuits.decompose import tech_decompose
from repro.circuits.network import Network
from repro.gen.random_circuits import RandomCircuitSpec, random_circuit
from repro.gen.structured import (
    alu_slice,
    array_multiplier,
    carry_lookahead_adder,
    cellular_array_1d,
    cellular_array_2d,
    comparator,
    decoder,
    mux_tree,
    parity_tree,
    redundant_tail_unit,
    ripple_carry_adder,
    tmr_voted_adder,
)
from repro.io.bench import loads_bench

#: The ISCAS85 c17 benchmark, the canonical 6-gate NAND netlist.
C17_BENCH = """\
# c17 (ISCAS85)
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
"""


def c17() -> Network:
    """The genuine ISCAS85 c17 circuit (undecomposed NAND netlist)."""
    return loads_bench(C17_BENCH, name="c17")


_BuilderMap = dict[str, Callable[[], Network]]


def _iscas_like_builders() -> _BuilderMap:
    """ISCAS85-class circuits: arithmetic/control dominated, mid-size."""
    return {
        "c17": c17,
        "rca16": lambda: ripple_carry_adder(16),
        "rca32": lambda: ripple_carry_adder(32),
        "rca64": lambda: ripple_carry_adder(64),
        "cla16": lambda: carry_lookahead_adder(16),
        "cla32": lambda: carry_lookahead_adder(32),
        "alu16": lambda: alu_slice(16),
        "parity48": lambda: parity_tree(48),
        "cell2d_8x8": lambda: cellular_array_2d(8, 8),
        "mult6": lambda: array_multiplier(6),
        "mult8": lambda: array_multiplier(8),
        "alu8": lambda: alu_slice(8),
        "alu12": lambda: alu_slice(12),
        "cmp16": lambda: comparator(16),
        "parity24": lambda: parity_tree(24),
        "tmr16": lambda: tmr_voted_adder(16),
        "rtail8": lambda: redundant_tail_unit(8, 6),
        "rtail12": lambda: redundant_tail_unit(12, 6),
        "rand_iscas_a": lambda: random_circuit(
            RandomCircuitSpec(
                num_inputs=72,
                num_gates=420,
                num_outputs=16,
                locality=0.55,
                reconvergence=0.18,
                seed=8501,
            )
        ),
        "rand_iscas_b": lambda: random_circuit(
            RandomCircuitSpec(
                num_inputs=100,
                num_gates=620,
                num_outputs=22,
                locality=0.5,
                reconvergence=0.2,
                seed=8502,
            )
        ),
        "rand_iscas_c": lambda: random_circuit(
            RandomCircuitSpec(
                num_inputs=200,
                num_gates=1400,
                num_outputs=40,
                locality=0.6,
                reconvergence=0.18,
                seed=8503,
            )
        ),
    }


def _mcnc_like_builders() -> _BuilderMap:
    """MCNC91 "logic" class: many small/medium control-logic circuits."""
    builders: _BuilderMap = {
        "dec4": lambda: decoder(4),
        "dec5": lambda: decoder(5),
        "mux4": lambda: mux_tree(4),
        "mux5": lambda: mux_tree(5),
        "rca8": lambda: ripple_carry_adder(8),
        "cla8": lambda: carry_lookahead_adder(8),
        "cmp8": lambda: comparator(8),
        "parity16": lambda: parity_tree(16),
        "alu4": lambda: alu_slice(4),
        "cell1d_24": lambda: cellular_array_1d(24),
        "cell2d_5x5": lambda: cellular_array_2d(5, 5),
        "mult4": lambda: array_multiplier(4),
    }
    shapes = [
        (24, 90, 6, 0.6, 0.15),
        (36, 140, 8, 0.55, 0.2),
        (50, 200, 10, 0.5, 0.18),
        (64, 260, 10, 0.55, 0.2),
        (80, 340, 12, 0.5, 0.17),
        (44, 170, 9, 0.65, 0.2),
    ]
    for index, (pi, gates, po, loc, rec) in enumerate(shapes):
        name = f"rand_mcnc_{chr(ord('a') + index)}"
        builders[name] = (
            lambda pi=pi, gates=gates, po=po, loc=loc, rec=rec, index=index: random_circuit(
                RandomCircuitSpec(
                    num_inputs=pi,
                    num_gates=gates,
                    num_outputs=po,
                    locality=loc,
                    reconvergence=rec,
                    seed=9100 + index,
                )
            )
        )
    return builders


_SUITES: dict[str, Callable[[], _BuilderMap]] = {
    "iscas": _iscas_like_builders,
    "mcnc": _mcnc_like_builders,
}


def suite_names() -> list[str]:
    """Available suite identifiers."""
    return sorted(_SUITES)


def circuit_names(suite: str) -> list[str]:
    """Circuit identifiers within a suite."""
    return sorted(_builders(suite))


def _builders(suite: str) -> _BuilderMap:
    try:
        return _SUITES[suite]()
    except KeyError as exc:
        raise KeyError(
            f"unknown suite {suite!r}; choose from {suite_names()}"
        ) from exc


@functools.lru_cache(maxsize=None)
def _cached_circuit(suite: str, name: str, decomposed: bool) -> Network:
    builders = _builders(suite)
    try:
        network = builders[name]()
    except KeyError as exc:
        raise KeyError(
            f"unknown circuit {name!r} in suite {suite!r}"
        ) from exc
    return tech_decompose(network) if decomposed else network


def load_circuit(suite: str, name: str, *, decomposed: bool = True) -> Network:
    """Instantiate one suite circuit.

    Random suite members are swept through ATPG-based redundancy removal
    (synthesized benchmarks are near-irredundant; raw random logic is
    not).  Instances are cached; callers must treat them as immutable —
    ``copy()`` before mutating.

    Args:
        suite: ``"mcnc"`` or ``"iscas"``.
        name: circuit identifier from :func:`circuit_names`.
        decomposed: map to ≤3-input AND/OR/INV first (the paper's setup).
    """
    return _cached_circuit(suite, name, decomposed)


def iter_suite(
    suite: str, *, decomposed: bool = True
) -> Iterator[tuple[str, Network]]:
    """Yield (name, circuit) over a whole suite, deterministically."""
    for name in circuit_names(suite):
        yield name, load_circuit(suite, name, decomposed=decomposed)
