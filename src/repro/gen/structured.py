"""Parameterized structural circuit generators.

These families stand in for the MCNC91/ISCAS85 suites (see DESIGN.md's
substitution table) and include every class the paper names as known
k-bounded or practically interesting: ripple-carry adders, decoders,
one- and two-dimensional cellular arrays (Section 3.2), plus the families
dominating the real suites — carry-lookahead adders, array multipliers
(the c6288 structure), ALU/comparator logic, parity and mux trees.

All generators return plain :class:`Network` objects over the extended
gate alphabet; run :func:`repro.circuits.tech_decompose` to obtain the
paper's ≤3-input AND/OR/INV form.
"""

from __future__ import annotations

from repro.circuits.build import NetworkBuilder
from repro.circuits.gates import GateType
from repro.circuits.network import Network


def ripple_carry_adder(width: int) -> Network:
    """A ``width``-bit ripple-carry adder (k-bounded per Fujiwara).

    Inputs a0..a{w-1}, b0..b{w-1}, cin; outputs s0..s{w-1}, cout.
    """
    if width < 1:
        raise ValueError("width must be positive")
    b = NetworkBuilder(f"rca{width}")
    a_bits = [b.input(f"a{i}") for i in range(width)]
    b_bits = [b.input(f"b{i}") for i in range(width)]
    carry = b.input("cin")
    sums = []
    for i in range(width):
        axb = b.xor(a_bits[i], b_bits[i], name=f"axb{i}")
        sums.append(b.xor(axb, carry, name=f"s{i}"))
        gen = b.and_(a_bits[i], b_bits[i], name=f"gen{i}")
        prop = b.and_(axb, carry, name=f"prp{i}")
        carry = b.or_(gen, prop, name=f"c{i+1}")
    b.outputs(*sums, carry)
    return b.build()


def carry_lookahead_adder(width: int, group: int = 4) -> Network:
    """A CLA with ``group``-bit lookahead groups (deeper reconvergence)."""
    if width < 1 or group < 2:
        raise ValueError("width >= 1 and group >= 2 required")
    b = NetworkBuilder(f"cla{width}")
    a_bits = [b.input(f"a{i}") for i in range(width)]
    b_bits = [b.input(f"b{i}") for i in range(width)]
    cin = b.input("cin")

    g = [b.and_(a_bits[i], b_bits[i], name=f"g{i}") for i in range(width)]
    p = [b.xor(a_bits[i], b_bits[i], name=f"p{i}") for i in range(width)]

    carries = [cin]
    for start in range(0, width, group):
        block = range(start, min(start + group, width))
        for i in block:
            # c_{i+1} = g_i + p_i g_{i-1} + ... + p_i..p_start c_start
            terms = [g[i]]
            for j in range(i, start, -1):
                prefix = b.and_(*(p[k] for k in range(j, i + 1)), g[j - 1])
                terms.append(prefix)
            tail = b.and_(*(p[k] for k in block if k <= i), carries[start])
            terms.append(tail)
            carries.append(b.or_(*terms, name=f"c{i+1}"))
    sums = [
        b.xor(p[i], carries[i], name=f"s{i}") for i in range(width)
    ]
    b.outputs(*sums, carries[width])
    return b.build()


def array_multiplier(width: int) -> Network:
    """A ``width × width`` carry-save array multiplier (c6288 structure)."""
    if width < 2:
        raise ValueError("width must be at least 2")
    b = NetworkBuilder(f"mult{width}")
    a_bits = [b.input(f"a{i}") for i in range(width)]
    b_bits = [b.input(f"b{i}") for i in range(width)]

    partial = [
        [b.and_(a_bits[i], b_bits[j], name=f"pp{i}_{j}") for i in range(width)]
        for j in range(width)
    ]

    def full_adder(x: str, y: str, z: str, tag: str) -> tuple[str, str]:
        s1 = b.xor(x, y, name=f"fs{tag}a")
        total = b.xor(s1, z, name=f"fs{tag}")
        c1 = b.and_(x, y, name=f"fc{tag}a")
        c2 = b.and_(s1, z, name=f"fc{tag}b")
        carry = b.or_(c1, c2, name=f"fc{tag}")
        return total, carry

    outputs = [partial[0][0]]
    sums = partial[0][1:]
    carries: list[str] = []
    for row in range(1, width):
        new_sums: list[str] = []
        new_carries: list[str] = []
        for col in range(width):
            pp = partial[row][col]
            if col < len(sums):
                addend = sums[col]
            else:
                addend = None
            carry_in = carries[col] if col < len(carries) else None
            if addend is None and carry_in is None:
                new_sums.append(pp)
                continue
            if carry_in is None:
                s = b.xor(pp, addend, name=f"hs{row}_{col}")
                c = b.and_(pp, addend, name=f"hc{row}_{col}")
            elif addend is None:
                s = b.xor(pp, carry_in, name=f"hs{row}_{col}")
                c = b.and_(pp, carry_in, name=f"hc{row}_{col}")
            else:
                s, c = full_adder(pp, addend, carry_in, f"{row}_{col}")
            new_sums.append(s)
            new_carries.append(c)
        outputs.append(new_sums[0])
        sums = new_sums[1:]
        carries = new_carries

    # Final ripple to merge remaining sums and carries.
    carry: str | None = None
    for col in range(len(sums)):
        x = sums[col]
        y = carries[col] if col < len(carries) else None
        if y is None and carry is None:
            outputs.append(x)
        elif carry is None:
            s = b.xor(x, y, name=f"rs{col}")
            carry = b.and_(x, y, name=f"rc{col}")
            outputs.append(s)
        elif y is None:
            s = b.xor(x, carry, name=f"rs{col}")
            carry = b.and_(x, carry, name=f"rc{col}")
            outputs.append(s)
        else:
            s, carry = full_adder(x, y, carry, f"r{col}")
            outputs.append(s)
    if carry is not None:
        outputs.append(carry)
    b.outputs(*outputs)
    return b.build()


def tmr_voted_adder(width: int) -> Network:
    """A ``width``-bit adder with triple-modular-redundant carry chains.

    The carry logic is replicated three times (each replica recomputes
    generate/propagate/carry from the shared primary inputs) and the
    per-bit carries are merged by a majority voter
    ``v_i = MAJ(c0_i, c1_i, c2_i)`` before feeding the sum XORs.  Any
    single stuck-at fault inside one replica's carry chain (or on one
    voter AND leg) is outvoted by the two healthy replicas, so a large
    fraction of the fault list is provably untestable — every such
    fault is an UNSAT instance for ATPG.  The shared sum XORs, the
    voter OR, and the primary inputs remain testable.

    This is the bench suite's deliberately redundancy-heavy member:
    unlike the random circuits (whose redundancy is accidental absorbed
    logic), its untestable faults all stem from one structural
    mechanism, which makes it the right workload for measuring clause
    sharing and conflict-side solver behaviour where UNSAT proofs, not
    interpreter overhead, dominate.

    Inputs a0..a{w-1}, b0..b{w-1}, cin; outputs s0..s{w-1}, cout.
    """
    if width < 1:
        raise ValueError("width must be positive")
    b = NetworkBuilder(f"tmr{width}")
    a_bits = [b.input(f"a{i}") for i in range(width)]
    b_bits = [b.input(f"b{i}") for i in range(width)]
    cin = b.input("cin")

    # Shared half-sum terms feeding the (testable) sum XORs.
    half = [
        b.xor(a_bits[i], b_bits[i], name=f"hs{i}") for i in range(width)
    ]

    # Three independent replica carry chains, each recomputing its own
    # generate/propagate terms from the shared primary inputs.
    replica_carries: list[list[str]] = []
    for r in range(3):
        carry = cin
        carries = []
        for i in range(width):
            axb = b.xor(a_bits[i], b_bits[i], name=f"axb_r{r}_{i}")
            gen = b.and_(a_bits[i], b_bits[i], name=f"gen_r{r}_{i}")
            prop = b.and_(axb, carry, name=f"prp_r{r}_{i}")
            carry = b.or_(gen, prop, name=f"c_r{r}_{i+1}")
            carries.append(carry)
        replica_carries.append(carries)

    # Per-bit majority vote over the three replica carries.
    voted = []
    for i in range(width):
        c0, c1, c2 = (replica_carries[r][i] for r in range(3))
        m01 = b.and_(c0, c1, name=f"vt01_{i}")
        m02 = b.and_(c0, c2, name=f"vt02_{i}")
        m12 = b.and_(c1, c2, name=f"vt12_{i}")
        voted.append(b.or_(m01, m02, m12, name=f"v{i}"))

    sums = [b.xor(half[0], cin, name="s0")]
    for i in range(1, width):
        sums.append(b.xor(half[i], voted[i - 1], name=f"s{i}"))
    b.outputs(*sums, voted[width - 1])
    return b.build()


def redundant_tail_unit(width: int, tail: int) -> Network:
    """A scheduler-adversarial circuit with an injected redundant tail.

    Three regions, engineered so that SCOAP's detection-cost ordering is
    close to *worst case* while a learned hardness order is close to
    best case:

    * **Expensive core** — a ``width x width`` carry-save array
      multiplier whose product bits are primary outputs.  Its
      final-row faults have near-zero observability cost and an
      optimistic min-path controllability, so SCOAP schedules them
      *first*; actually exciting a specific deep carry costs the solver
      hundreds of conflicts per fault.  The same faults are readily
      detected by random-ish patterns, so an order that defers them
      behind any pattern-producing bulk gets them fault-dropped for
      free instead of solved.
    * **Pattern bulk** — a single-output parity chain over all inputs.
      SCOAP prices every chain fault at roughly the chain length (XOR
      controllabilities add up), pushing the bulk *behind* the core;
      in truth each fault is a near-trivial SAT call whose test is a
      fresh near-random pattern over all inputs — exactly the drop
      fodder the core needs.
    * **Redundant tail** — three replica AND-OR mask chains over the
      low ``tail`` bits, majority-voted per bit: every single stuck-at
      fault inside one replica is outvoted by the two healthy copies,
      so the tail is provably untestable and both orders must pay for
      each UNSAT proof.

    Inputs a0..a{w-1}, b0..b{w-1}, cin; outputs p0..p{2w-1} (product),
    par (parity), m0..m{t-1} (voted masks).
    """
    if width < 2 or tail < 1:
        raise ValueError("width must be >= 2 and tail positive")
    b = NetworkBuilder(f"rtail{width}_{tail}")
    a_bits = [b.input(f"a{i}") for i in range(width)]
    b_bits = [b.input(f"b{i}") for i in range(width)]
    cin = b.input("cin")

    # Expensive core: carry-save array multiplier (c6288 structure).
    partial = [
        [b.and_(a_bits[i], b_bits[j], name=f"pp{i}_{j}") for i in range(width)]
        for j in range(width)
    ]

    def full_adder(x: str, y: str, z: str, tag: str) -> tuple[str, str]:
        s1 = b.xor(x, y, name=f"fs{tag}a")
        total = b.xor(s1, z, name=f"fs{tag}")
        c1 = b.and_(x, y, name=f"fc{tag}a")
        c2 = b.and_(s1, z, name=f"fc{tag}b")
        carry = b.or_(c1, c2, name=f"fc{tag}")
        return total, carry

    products = [partial[0][0]]
    sums = partial[0][1:]
    carries: list[str] = []
    for row in range(1, width):
        new_sums: list[str] = []
        new_carries: list[str] = []
        for col in range(width):
            pp = partial[row][col]
            addend = sums[col] if col < len(sums) else None
            carry_in = carries[col] if col < len(carries) else None
            tag = f"{row}_{col}"
            if addend is None and carry_in is None:
                new_sums.append(pp)
            elif carry_in is None:
                new_sums.append(b.xor(pp, addend, name=f"hs{tag}"))
                new_carries.append(b.and_(pp, addend, name=f"hc{tag}"))
            elif addend is None:
                new_sums.append(b.xor(pp, carry_in, name=f"hs{tag}"))
                new_carries.append(b.and_(pp, carry_in, name=f"hc{tag}"))
            else:
                total, carry = full_adder(pp, addend, carry_in, tag)
                new_sums.append(total)
                new_carries.append(carry)
        products.append(new_sums.pop(0))
        sums = new_sums
        carries = new_carries
    carry = cin
    for col, (s, c) in enumerate(zip(sums, carries + [cin])):
        total, carry = full_adder(s, c, carry, f"f{col}")
        products.append(total)
    products.append(carry)

    # Pattern bulk: one parity chain over every input.
    parity = cin
    for index, net in enumerate(a_bits + b_bits):
        parity = b.xor(parity, net, name=f"pc{index}")

    # Redundant tail: replica mask chains + per-bit majority voters.  A
    # replica recomputes mask_i = (a_i AND b_i) OR (mask_{i-1} AND
    # (a_i XOR b_i)) from the shared inputs; a fault inside one replica
    # never flips the vote.
    replica_masks: list[list[str]] = []
    for r in range(3):
        mask = cin
        masks = []
        for i in range(min(tail, width)):
            con = b.and_(a_bits[i], b_bits[i], name=f"con_r{r}_{i}")
            mix = b.xor(a_bits[i], b_bits[i], name=f"mix_r{r}_{i}")
            keep = b.and_(mask, mix, name=f"kp_r{r}_{i}")
            mask = b.or_(con, keep, name=f"mk_r{r}_{i}")
            masks.append(mask)
        replica_masks.append(masks)

    voted = []
    for i in range(min(tail, width)):
        m0, m1, m2 = (replica_masks[r][i] for r in range(3))
        v01 = b.and_(m0, m1, name=f"mv01_{i}")
        v02 = b.and_(m0, m2, name=f"mv02_{i}")
        v12 = b.and_(m1, m2, name=f"mv12_{i}")
        voted.append(b.or_(v01, v02, v12, name=f"m{i}"))

    b.outputs(*products, parity, *voted)
    return b.build()


def decoder(select_bits: int) -> Network:
    """A ``select_bits``-to-2^n one-hot decoder (k-bounded family)."""
    if select_bits < 1 or select_bits > 8:
        raise ValueError("select_bits must be in 1..8")
    b = NetworkBuilder(f"dec{select_bits}")
    sel = [b.input(f"s{i}") for i in range(select_bits)]
    inv = [b.not_(s, name=f"ns{i}") for i, s in enumerate(sel)]
    outputs = []
    for value in range(1 << select_bits):
        literals = [
            sel[i] if (value >> i) & 1 else inv[i] for i in range(select_bits)
        ]
        if len(literals) == 1:
            outputs.append(b.buf(literals[0], name=f"d{value}"))
        else:
            outputs.append(b.and_(*literals, name=f"d{value}"))
    b.outputs(*outputs)
    return b.build()


def mux_tree(select_bits: int) -> Network:
    """A 2^n : 1 multiplexer built as a tree of 2:1 muxes."""
    if select_bits < 1 or select_bits > 6:
        raise ValueError("select_bits must be in 1..6")
    b = NetworkBuilder(f"mux{select_bits}")
    data = [b.input(f"d{i}") for i in range(1 << select_bits)]
    sel = [b.input(f"s{i}") for i in range(select_bits)]
    layer = data
    for stage, select in enumerate(sel):
        nsel = b.not_(select, name=f"ns{stage}")
        next_layer = []
        for pair in range(0, len(layer), 2):
            low = b.and_(nsel, layer[pair], name=f"m{stage}_{pair}l")
            high = b.and_(select, layer[pair + 1], name=f"m{stage}_{pair}h")
            next_layer.append(b.or_(low, high, name=f"m{stage}_{pair}"))
        layer = next_layer
    b.outputs(layer[0])
    return b.build()


def parity_tree(width: int, arity: int = 2) -> Network:
    """A balanced XOR tree over ``width`` inputs (the c2670/c3540 motif)."""
    if width < 2:
        raise ValueError("width must be at least 2")
    if arity < 2:
        raise ValueError("arity must be at least 2")
    b = NetworkBuilder(f"parity{width}")
    layer = [b.input(f"x{i}") for i in range(width)]
    stage = 0
    while len(layer) > 1:
        next_layer = []
        for i in range(0, len(layer), arity):
            chunk = layer[i : i + arity]
            if len(chunk) == 1:
                next_layer.append(chunk[0])
            else:
                next_layer.append(b.xor(*chunk, name=f"p{stage}_{i}"))
        layer = next_layer
        stage += 1
    b.outputs(layer[0])
    return b.build()


def comparator(width: int) -> Network:
    """``width``-bit equality and greater-than comparator."""
    if width < 1:
        raise ValueError("width must be positive")
    b = NetworkBuilder(f"cmp{width}")
    a_bits = [b.input(f"a{i}") for i in range(width)]
    b_bits = [b.input(f"b{i}") for i in range(width)]
    eq_bits = [
        b.xnor(a_bits[i], b_bits[i], name=f"eq{i}") for i in range(width)
    ]
    if width == 1:
        equal = b.buf(eq_bits[0], name="equal")
    else:
        equal = b.and_(*eq_bits, name="equal")
    gt_terms = []
    for i in reversed(range(width)):
        nb = b.not_(b_bits[i], name=f"nb{i}")
        this = b.and_(a_bits[i], nb, name=f"gtbit{i}")
        higher_eq = eq_bits[i + 1 :]
        if higher_eq:
            gt_terms.append(b.and_(this, *higher_eq, name=f"gt{i}"))
        else:
            gt_terms.append(this)
    if len(gt_terms) == 1:
        greater = b.buf(gt_terms[0], name="greater")
    else:
        greater = b.or_(*gt_terms, name="greater")
    b.outputs(equal, greater)
    return b.build()


def alu_slice(width: int) -> Network:
    """A small ALU: AND/OR/XOR/ADD of two ``width``-bit words, 2-bit opcode."""
    if width < 1:
        raise ValueError("width must be positive")
    b = NetworkBuilder(f"alu{width}")
    a_bits = [b.input(f"a{i}") for i in range(width)]
    b_bits = [b.input(f"b{i}") for i in range(width)]
    op0 = b.input("op0")
    op1 = b.input("op1")
    nop0 = b.not_(op0, name="nop0")
    nop1 = b.not_(op1, name="nop1")
    sel_and = b.and_(nop1, nop0, name="sel_and")
    sel_or = b.and_(nop1, op0, name="sel_or")
    sel_xor = b.and_(op1, nop0, name="sel_xor")
    sel_add = b.and_(op1, op0, name="sel_add")

    carry: str | None = None
    outputs = []
    for i in range(width):
        fa = b.and_(a_bits[i], b_bits[i], name=f"andv{i}")
        fo = b.or_(a_bits[i], b_bits[i], name=f"orv{i}")
        fx = b.xor(a_bits[i], b_bits[i], name=f"xorv{i}")
        if carry is None:
            fs = fx
            carry = fa
        else:
            fs = b.xor(fx, carry, name=f"sumv{i}")
            c1 = b.and_(fx, carry, name=f"cv{i}a")
            carry = b.or_(fa, c1, name=f"cv{i}")
        picked = b.or_(
            b.and_(sel_and, fa, name=f"t{i}a"),
            b.and_(sel_or, fo, name=f"t{i}o"),
            b.and_(sel_xor, fx, name=f"t{i}x"),
            b.and_(sel_add, fs, name=f"t{i}s"),
            name=f"y{i}",
        )
        outputs.append(picked)
    cout = b.and_(sel_add, carry, name="cout")
    b.outputs(*outputs, cout)
    return b.build()


def cellular_array_1d(cells: int) -> Network:
    """A 1-D cellular array (Fujiwara's k-bounded example).

    Each cell computes ``out_i = (x_i AND state_{i-1}) OR (y_i AND NOT
    state_{i-1})`` and passes a next-state to its right neighbour.
    """
    if cells < 1:
        raise ValueError("cells must be positive")
    b = NetworkBuilder(f"cell1d_{cells}")
    state = b.input("s0")
    outputs = []
    for i in range(cells):
        x = b.input(f"x{i}")
        y = b.input(f"y{i}")
        ns = b.not_(state, name=f"nst{i}")
        hi = b.and_(x, state, name=f"hi{i}")
        lo = b.and_(y, ns, name=f"lo{i}")
        out = b.or_(hi, lo, name=f"o{i}")
        outputs.append(out)
        state = b.xor(out, state, name=f"st{i+1}")
    b.outputs(*outputs, state)
    return b.build()


def cellular_array_2d(rows: int, cols: int) -> Network:
    """A 2-D cellular array with rightward and downward signal flow."""
    if rows < 1 or cols < 1:
        raise ValueError("rows and cols must be positive")
    b = NetworkBuilder(f"cell2d_{rows}x{cols}")
    down = [b.input(f"top{c}") for c in range(cols)]
    outputs = []
    for r in range(rows):
        right = b.input(f"left{r}")
        for c in range(cols):
            x = b.input(f"x{r}_{c}")
            a = b.and_(right, down[c], name=f"a{r}_{c}")
            o = b.or_(a, x, name=f"cell{r}_{c}")
            right = b.xor(o, right, name=f"rt{r}_{c}")
            down[c] = b.and_(o, down[c], name=f"dn{r}_{c}")
        outputs.append(right)
    b.outputs(*outputs, *down)
    return b.build()


def binary_tree_circuit(depth: int, arity: int = 2, gate: GateType = GateType.AND) -> Network:
    """A complete ``arity``-ary tree of ``gate`` nodes (Lemma 5.2 family)."""
    if depth < 1:
        raise ValueError("depth must be positive")
    b = NetworkBuilder(f"tree{arity}_{depth}")
    leaves = [b.input(f"x{i}") for i in range(arity**depth)]
    layer = leaves
    level = 0
    while len(layer) > 1:
        next_layer = []
        for i in range(0, len(layer), arity):
            next_layer.append(
                b.gate(gate, layer[i : i + arity], name=f"t{level}_{i}")
            )
        layer = next_layer
        level += 1
    b.outputs(layer[0])
    return b.build()


def barrel_shifter(width_log2: int) -> Network:
    """A logarithmic barrel shifter: ``out = data << shift`` (wrap-around).

    ``width_log2`` selects a 2^k data width with k mux stages — the
    classic layered-mux topology (bounded, very regular cut structure).
    """
    if width_log2 < 1 or width_log2 > 5:
        raise ValueError("width_log2 must be in 1..5")
    width = 1 << width_log2
    b = NetworkBuilder(f"bshift{width}")
    data = [b.input(f"d{i}") for i in range(width)]
    shift = [b.input(f"s{k}") for k in range(width_log2)]

    layer = data
    for stage, select in enumerate(shift):
        amount = 1 << stage
        nsel = b.not_(select, name=f"ns{stage}")
        next_layer = []
        for i in range(width):
            stay = b.and_(nsel, layer[i], name=f"st{stage}_{i}")
            moved = b.and_(
                select, layer[(i - amount) % width], name=f"mv{stage}_{i}"
            )
            next_layer.append(b.or_(stay, moved, name=f"o{stage}_{i}"))
        layer = next_layer
    b.outputs(*layer)
    return b.build()


def priority_encoder(width: int) -> Network:
    """A ``width``-input priority encoder: one-hot grant to the lowest
    asserted request plus a ``valid`` flag (ripple of inhibits)."""
    if width < 2:
        raise ValueError("width must be at least 2")
    b = NetworkBuilder(f"prio{width}")
    requests = [b.input(f"r{i}") for i in range(width)]
    grants = []
    inhibit = None
    for i, request in enumerate(requests):
        if inhibit is None:
            grants.append(b.buf(request, name=f"g{i}"))
            inhibit = request
        else:
            ninh = b.not_(inhibit, name=f"ni{i}")
            grants.append(b.and_(request, ninh, name=f"g{i}"))
            inhibit = b.or_(inhibit, request, name=f"inh{i}")
    valid = b.buf(inhibit, name="valid")
    b.outputs(*grants, valid)
    return b.build()


def wallace_multiplier(width: int) -> Network:
    """A Wallace-tree multiplier: carry-save reduction in log depth.

    Same function as :func:`array_multiplier`, very different topology —
    useful as an equivalence-checking pair and as a denser-width family.
    """
    if width < 2 or width > 6:
        raise ValueError("width must be in 2..6")
    b = NetworkBuilder(f"wallace{width}")
    a_bits = [b.input(f"a{i}") for i in range(width)]
    b_bits = [b.input(f"b{i}") for i in range(width)]

    columns: list[list[str]] = [[] for _ in range(2 * width)]
    for i in range(width):
        for j in range(width):
            columns[i + j].append(
                b.and_(a_bits[i], b_bits[j], name=f"pp{i}_{j}")
            )

    tag = 0
    while any(len(col) > 2 for col in columns):
        next_columns: list[list[str]] = [[] for _ in range(2 * width)]
        for index, col in enumerate(columns):
            pending = list(col)
            while len(pending) >= 3:
                x, y, z = pending[:3]
                pending = pending[3:]
                tag += 1
                s1 = b.xor(x, y, name=f"ws{tag}a")
                total = b.xor(s1, z, name=f"ws{tag}")
                c1 = b.and_(x, y, name=f"wc{tag}a")
                c2 = b.and_(s1, z, name=f"wc{tag}b")
                carry = b.or_(c1, c2, name=f"wc{tag}")
                next_columns[index].append(total)
                if index + 1 < 2 * width:
                    next_columns[index + 1].append(carry)
            if len(pending) == 2:
                x, y = pending
                tag += 1
                total = b.xor(x, y, name=f"hs{tag}")
                carry = b.and_(x, y, name=f"hc{tag}")
                next_columns[index].append(total)
                if index + 1 < 2 * width:
                    next_columns[index + 1].append(carry)
            elif pending:
                next_columns[index].append(pending[0])
        columns = next_columns

    # Final carry-propagate addition over the two remaining rows.
    outputs = []
    carry: str | None = None
    for index, col in enumerate(columns):
        operands = list(col)
        if carry is not None:
            operands.append(carry)
        if not operands:
            continue
        if len(operands) == 1:
            outputs.append(b.buf(operands[0], name=f"p{index}"))
            carry = None
        elif len(operands) == 2:
            x, y = operands
            outputs.append(b.xor(x, y, name=f"p{index}"))
            carry = b.and_(x, y, name=f"fc{index}")
        else:
            x, y, z = operands
            s1 = b.xor(x, y, name=f"fs{index}a")
            outputs.append(b.xor(s1, z, name=f"p{index}"))
            c1 = b.and_(x, y, name=f"fca{index}")
            c2 = b.and_(s1, z, name=f"fcb{index}")
            carry = b.or_(c1, c2, name=f"fc{index}")
    b.outputs(*outputs)
    return b.build()
