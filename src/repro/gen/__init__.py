"""Circuit generators: structural families, random circuits, suites."""

from repro.gen.benchmarks import (
    C17_BENCH,
    c17,
    circuit_names,
    iter_suite,
    load_circuit,
    suite_names,
)
from repro.gen.random_circuits import (
    RandomCircuitSpec,
    benchmark_like_suite,
    random_circuit,
)
from repro.gen.structured import (
    alu_slice,
    array_multiplier,
    binary_tree_circuit,
    carry_lookahead_adder,
    cellular_array_1d,
    cellular_array_2d,
    comparator,
    decoder,
    mux_tree,
    parity_tree,
    ripple_carry_adder,
)

__all__ = [
    "C17_BENCH",
    "RandomCircuitSpec",
    "alu_slice",
    "array_multiplier",
    "benchmark_like_suite",
    "binary_tree_circuit",
    "c17",
    "carry_lookahead_adder",
    "cellular_array_1d",
    "cellular_array_2d",
    "circuit_names",
    "comparator",
    "decoder",
    "iter_suite",
    "load_circuit",
    "mux_tree",
    "parity_tree",
    "random_circuit",
    "ripple_carry_adder",
    "suite_names",
]
