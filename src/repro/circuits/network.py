"""Combinational Boolean network (netlist) substrate.

A :class:`Network` is a DAG of named nets.  Every net is driven either by a
primary input or by exactly one gate; a net may fan out to any number of
gate inputs and may additionally be designated a primary output.  This is
the "combinational Boolean network C" of the paper's Section 2, and every
other subsystem (SAT encoding, ATPG miters, cut-width hypergraphs, BDDs,
simulators) consumes this representation.

Design notes
------------
* Nets are identified by strings.  Insertion order is preserved and all
  iteration orders are deterministic, which keeps experiments repeatable.
* The network is append-mostly: gates are added and occasionally rewired
  (fault insertion clones subcircuits instead of mutating them).
* Topological order, levels, and fanout maps are computed on demand and
  cached; any mutation invalidates the caches.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable, Iterator, Mapping, Sequence
from dataclasses import dataclass, field

from repro.circuits.gates import (
    MULTI_INPUT_GATES,
    UNARY_GATES,
    GateType,
    evaluate_gate,
)


class NetworkError(ValueError):
    """Raised for structurally invalid network operations."""


@dataclass(frozen=True)
class Gate:
    """A single gate: ``output = gate_type(inputs)``.

    ``output`` doubles as the gate's identity — a net has at most one
    driver, so gate and driven net are in one-to-one correspondence.
    """

    output: str
    gate_type: GateType
    inputs: tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        if self.gate_type.is_source:
            if self.inputs:
                raise NetworkError(
                    f"{self.gate_type.value} gate {self.output!r} cannot have inputs"
                )
        elif self.gate_type in UNARY_GATES:
            if len(self.inputs) != 1:
                raise NetworkError(
                    f"{self.gate_type.value} gate {self.output!r} needs exactly "
                    f"one input, got {len(self.inputs)}"
                )
        elif self.gate_type in MULTI_INPUT_GATES:
            if len(self.inputs) < 1:
                raise NetworkError(
                    f"{self.gate_type.value} gate {self.output!r} needs inputs"
                )
        else:  # pragma: no cover - exhaustive over enum
            raise NetworkError(f"unsupported gate type {self.gate_type!r}")

    @property
    def fanin(self) -> int:
        """Number of gate inputs."""
        return len(self.inputs)


class Network:
    """A combinational Boolean network over named nets.

    Attributes:
        name: Circuit name (used by netlist writers and reports).
    """

    def __init__(self, name: str = "circuit") -> None:
        self.name = name
        self._gates: dict[str, Gate] = {}
        self._inputs: list[str] = []
        self._outputs: list[str] = []
        self._cache_topo: list[str] | None = None
        self._cache_fanouts: dict[str, tuple[str, ...]] | None = None
        self._cache_levels: dict[str, int] | None = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_input(self, name: str) -> str:
        """Declare ``name`` as a primary input net."""
        self._add_gate(Gate(name, GateType.INPUT))
        self._inputs.append(name)
        return name

    def add_gate(
        self, output: str, gate_type: GateType, inputs: Sequence[str] = ()
    ) -> str:
        """Add a gate driving net ``output`` from the given input nets.

        Input nets need not exist yet; :meth:`validate` checks that every
        referenced net eventually acquires a driver.
        """
        self._add_gate(Gate(output, gate_type, tuple(inputs)))
        return output

    def _add_gate(self, gate: Gate) -> None:
        if gate.output in self._gates:
            raise NetworkError(f"net {gate.output!r} already driven")
        self._gates[gate.output] = gate
        self._invalidate()

    def set_outputs(self, outputs: Iterable[str]) -> None:
        """Declare the primary outputs (replacing any previous set)."""
        self._outputs = list(outputs)
        self._invalidate()

    def add_output(self, name: str) -> None:
        """Append ``name`` to the primary outputs."""
        self._outputs.append(name)
        self._invalidate()

    def replace_gate(
        self, output: str, gate_type: GateType, inputs: Sequence[str] = ()
    ) -> None:
        """Replace the driver of ``output``. Used by fault insertion."""
        if output not in self._gates:
            raise NetworkError(f"net {output!r} has no driver to replace")
        self._gates[output] = Gate(output, gate_type, tuple(inputs))
        if output in self._inputs and gate_type is not GateType.INPUT:
            self._inputs.remove(output)
        self._invalidate()

    def _invalidate(self) -> None:
        self._cache_topo = None
        self._cache_fanouts = None
        self._cache_levels = None

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def inputs(self) -> tuple[str, ...]:
        """Primary input nets in declaration order."""
        return tuple(self._inputs)

    @property
    def outputs(self) -> tuple[str, ...]:
        """Primary output nets in declaration order."""
        return tuple(self._outputs)

    @property
    def nets(self) -> tuple[str, ...]:
        """All driven nets in insertion order."""
        return tuple(self._gates)

    def gate(self, net: str) -> Gate:
        """The gate driving ``net``.

        Raises:
            KeyError: if ``net`` has no driver.
        """
        return self._gates[net]

    def has_net(self, net: str) -> bool:
        """True if ``net`` is driven (by a gate or as a primary input)."""
        return net in self._gates

    def gates(self) -> Iterator[Gate]:
        """All gates (including INPUT pseudo-gates) in insertion order."""
        return iter(self._gates.values())

    def __len__(self) -> int:
        return len(self._gates)

    def __contains__(self, net: str) -> bool:
        return net in self._gates

    def num_gates(self) -> int:
        """Number of logic gates (excluding primary inputs and constants)."""
        return sum(1 for g in self._gates.values() if not g.gate_type.is_source)

    def fanouts(self, net: str) -> tuple[str, ...]:
        """Nets whose driving gates read ``net``."""
        return self._fanout_map().get(net, ())

    def _fanout_map(self) -> dict[str, tuple[str, ...]]:
        if self._cache_fanouts is None:
            sinks: dict[str, list[str]] = {}
            for gate in self._gates.values():
                for src in gate.inputs:
                    sinks.setdefault(src, []).append(gate.output)
            self._cache_fanouts = {net: tuple(outs) for net, outs in sinks.items()}
        return self._cache_fanouts

    def max_fanin(self) -> int:
        """k_fi: the largest gate fanin in the network."""
        return max((g.fanin for g in self._gates.values()), default=0)

    def max_fanout(self) -> int:
        """k_fo: the largest net fanout in the network.

        Primary outputs count as one extra sink, matching the paper's use
        of k_fo as a bound on how many clauses can mention a net.
        """
        fanout_map = self._fanout_map()
        best = 0
        output_counts: dict[str, int] = {}
        for out in self._outputs:
            output_counts[out] = output_counts.get(out, 0) + 1
        for net in self._gates:
            count = len(fanout_map.get(net, ())) + output_counts.get(net, 0)
            best = max(best, count)
        return best

    # ------------------------------------------------------------------
    # Orderings and cones
    # ------------------------------------------------------------------
    def insertion_is_topological(self) -> bool:
        """True if the insertion order of nets is a valid topological order.

        Bottom-up constructed networks (builders, generators, decomposers)
        satisfy this; the insertion order then carries construction
        locality that plain Kahn ordering destroys, so ordering-sensitive
        consumers (the MLA seeding) prefer it.
        """
        position = {net: i for i, net in enumerate(self._gates)}
        for gate in self._gates.values():
            for src in gate.inputs:
                pos = position.get(src)
                if pos is None or pos >= position[gate.output]:
                    return False
        return True

    def topological_order(self) -> list[str]:
        """Nets in topological order (inputs first).

        When the insertion order is already topological it is returned
        as-is (preserving construction locality); otherwise Kahn's
        algorithm is used.

        Raises:
            NetworkError: if the network contains a cycle or an undriven net.
        """
        if self._cache_topo is not None:
            return list(self._cache_topo)
        if self.insertion_is_topological():
            self._cache_topo = list(self._gates)
            return list(self._cache_topo)
        indegree: dict[str, int] = {}
        for gate in self._gates.values():
            indegree.setdefault(gate.output, 0)
            for src in gate.inputs:
                if src not in self._gates:
                    raise NetworkError(
                        f"net {src!r} (input of {gate.output!r}) has no driver"
                    )
                indegree[gate.output] = indegree.get(gate.output, 0) + 1
        ready = deque(net for net in self._gates if indegree[net] == 0)
        order: list[str] = []
        fanout_map = self._fanout_map()
        remaining = dict(indegree)
        while ready:
            net = ready.popleft()
            order.append(net)
            for sink in fanout_map.get(net, ()):
                remaining[sink] -= 1
                if remaining[sink] == 0:
                    ready.append(sink)
        if len(order) != len(self._gates):
            raise NetworkError("network contains a combinational cycle")
        self._cache_topo = order
        return list(order)

    def levels(self) -> dict[str, int]:
        """Logic level of every net (inputs at level 0)."""
        if self._cache_levels is None:
            levels: dict[str, int] = {}
            for net in self.topological_order():
                gate = self._gates[net]
                if gate.gate_type.is_source:
                    levels[net] = 0
                else:
                    levels[net] = 1 + max(levels[src] for src in gate.inputs)
            self._cache_levels = levels
        return dict(self._cache_levels)

    def depth(self) -> int:
        """Maximum logic level over all nets."""
        levels = self.levels()
        return max(levels.values(), default=0)

    def transitive_fanin(self, nets: Iterable[str]) -> set[str]:
        """All nets in the transitive fanin of ``nets`` (inclusive)."""
        seen: set[str] = set()
        stack = [net for net in nets]
        while stack:
            net = stack.pop()
            if net in seen:
                continue
            seen.add(net)
            gate = self._gates.get(net)
            if gate is None:
                raise NetworkError(f"unknown net {net!r}")
            stack.extend(gate.inputs)
        return seen

    def transitive_fanout(self, nets: Iterable[str]) -> set[str]:
        """All nets in the transitive fanout of ``nets`` (inclusive)."""
        fanout_map = self._fanout_map()
        seen: set[str] = set()
        stack = [net for net in nets]
        while stack:
            net = stack.pop()
            if net in seen:
                continue
            if net not in self._gates:
                raise NetworkError(f"unknown net {net!r}")
            seen.add(net)
            stack.extend(fanout_map.get(net, ()))
        return seen

    def output_cone(self, output: str) -> "Network":
        """Extract the single-output subcircuit feeding ``output``.

        This realises the paper's view (Section 4.3) of a multi-output
        circuit as a set of single-output circuits, one per transitive
        fanin cone.
        """
        cone_nets = self.transitive_fanin([output])
        sub = Network(name=f"{self.name}.cone.{output}")
        for net in self.topological_order():
            if net not in cone_nets:
                continue
            gate = self._gates[net]
            if gate.gate_type is GateType.INPUT:
                sub.add_input(net)
            else:
                sub.add_gate(net, gate.gate_type, gate.inputs)
        sub.set_outputs([output])
        return sub

    def subnetwork(
        self,
        nets: Iterable[str],
        *,
        outputs: Sequence[str],
        name: str | None = None,
    ) -> "Network":
        """Extract the subcircuit induced by ``nets``.

        Nets referenced from inside the set but driven outside it become
        primary inputs of the extracted circuit (the paper's treatment of
        C_ψ^fo, whose inputs are tapped from signal points of C_ψ^sub).
        """
        keep = set(nets)
        boundary: set[str] = set()
        for net in keep:
            gate = self._gates.get(net)
            if gate is None:
                raise NetworkError(f"unknown net {net!r}")
            for src in gate.inputs:
                if src not in keep:
                    boundary.add(src)
        # Iterate the parent order over keep ∪ boundary so the extracted
        # circuit's insertion order stays topological *and* inherits the
        # parent's locality (ordering-sensitive consumers rely on this).
        sub = Network(name=name or f"{self.name}.sub")
        for net in self.topological_order():
            if net in boundary:
                sub.add_input(net)
            elif net in keep:
                gate = self._gates[net]
                if gate.gate_type is GateType.INPUT:
                    sub.add_input(net)
                else:
                    sub.add_gate(net, gate.gate_type, gate.inputs)
        sub.set_outputs(list(outputs))
        return sub

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(
        self, input_values: Mapping[str, int], mask: int = 1
    ) -> dict[str, int]:
        """Simulate the network on bit-parallel input words.

        Args:
            input_values: value word per primary input.  Missing inputs
                default to 0.
            mask: bit mask limiting word width (``(1 << n_patterns) - 1``).

        Returns:
            Value word per net (all nets, not just outputs).
        """
        values: dict[str, int] = {}
        for net in self.topological_order():
            gate = self._gates[net]
            if gate.gate_type is GateType.INPUT:
                values[net] = input_values.get(net, 0) & mask
            else:
                words = [values[src] for src in gate.inputs]
                values[net] = evaluate_gate(gate.gate_type, words) & mask
        return values

    def copy(self, name: str | None = None) -> "Network":
        """Deep-enough copy (gates are immutable, so sharing them is safe)."""
        dup = Network(name=name or self.name)
        dup._gates = dict(self._gates)
        dup._inputs = list(self._inputs)
        dup._outputs = list(self._outputs)
        return dup

    def renamed(self, prefix: str) -> "Network":
        """Copy with every net renamed to ``prefix + original``."""
        dup = Network(name=self.name)
        for net in self.topological_order():
            gate = self._gates[net]
            if gate.gate_type is GateType.INPUT:
                dup.add_input(prefix + net)
            else:
                dup.add_gate(
                    prefix + net,
                    gate.gate_type,
                    [prefix + src for src in gate.inputs],
                )
        dup.set_outputs([prefix + out for out in self._outputs])
        return dup

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Network({self.name!r}, inputs={len(self._inputs)}, "
            f"gates={self.num_gates()}, outputs={len(self._outputs)})"
        )
