"""Topological circuit statistics.

Profiles the shape properties the paper's argument rests on: fanin and
fanout distributions, depth, tree-ness (fraction of fanout-free nets),
and reconvergence counts.  Used to check that generated suites resemble
structured circuits and to diagnose why a given netlist falls in or out
of the log-bounded-width class.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.circuits.network import Network


@dataclass
class CircuitProfile:
    """Shape summary of a combinational network."""

    name: str
    num_inputs: int
    num_outputs: int
    num_gates: int
    depth: int
    max_fanin: int
    max_fanout: int
    mean_fanout: float
    fanout_free_fraction: float
    reconvergent_stems: int
    gate_histogram: dict[str, int] = field(default_factory=dict)

    def render(self) -> str:
        lines = [
            f"circuit {self.name}",
            f"  PIs={self.num_inputs} POs={self.num_outputs} "
            f"gates={self.num_gates} depth={self.depth}",
            f"  fanin<= {self.max_fanin}  fanout<= {self.max_fanout} "
            f"(mean {self.mean_fanout:.2f})",
            f"  fanout-free nets: {self.fanout_free_fraction:.1%}",
            f"  reconvergent stems: {self.reconvergent_stems}",
            "  gates: "
            + ", ".join(f"{k}={v}" for k, v in sorted(self.gate_histogram.items())),
        ]
        return "\n".join(lines)


def reconvergent_stems(network: Network) -> int:
    """Number of multi-fanout nets whose branches reconverge.

    A stem s reconverges if two of its fanout branches reach a common
    gate downstream — the structure that distinguishes DAGs from trees
    and (when non-local) inflates cut-width.
    """
    count = 0
    for net in network.nets:
        branches = network.fanouts(net)
        if len(branches) < 2:
            continue
        cones = [network.transitive_fanout([b]) for b in branches]
        merged: set[str] = set()
        reconverges = False
        for cone in cones:
            if merged & cone:
                reconverges = True
                break
            merged |= cone
        if reconverges:
            count += 1
    return count


def profile(network: Network) -> CircuitProfile:
    """Compute the full shape profile of ``network``."""
    fanouts = [len(network.fanouts(net)) for net in network.nets]
    gates = [g for g in network.gates() if not g.gate_type.is_source]
    histogram = Counter(g.gate_type.value for g in gates)
    return CircuitProfile(
        name=network.name,
        num_inputs=len(network.inputs),
        num_outputs=len(network.outputs),
        num_gates=len(gates),
        depth=network.depth(),
        max_fanin=network.max_fanin(),
        max_fanout=network.max_fanout(),
        mean_fanout=(sum(fanouts) / len(fanouts)) if fanouts else 0.0,
        fanout_free_fraction=(
            sum(1 for f in fanouts if f <= 1) / len(fanouts) if fanouts else 1.0
        ),
        reconvergent_stems=reconvergent_stems(network),
        gate_histogram=dict(histogram),
    )


def compare_profiles(left: CircuitProfile, right: CircuitProfile) -> str:
    """Side-by-side comparison table of two profiles."""
    rows = [
        ("gates", left.num_gates, right.num_gates),
        ("depth", left.depth, right.depth),
        ("max fanin", left.max_fanin, right.max_fanin),
        ("max fanout", left.max_fanout, right.max_fanout),
        ("mean fanout", f"{left.mean_fanout:.2f}", f"{right.mean_fanout:.2f}"),
        (
            "fanout-free",
            f"{left.fanout_free_fraction:.1%}",
            f"{right.fanout_free_fraction:.1%}",
        ),
        ("reconv stems", left.reconvergent_stems, right.reconvergent_stems),
    ]
    width = max(len(r[0]) for r in rows)
    lines = [f"{'':{width}}  {left.name:>14}  {right.name:>14}"]
    for label, a, b in rows:
        lines.append(f"{label:{width}}  {str(a):>14}  {str(b):>14}")
    return "\n".join(lines)
