"""Netlist cleanup passes: constant propagation, buffer sweeping, and
dangling-logic removal.

Real netlists (and our miter constructions) accumulate constants, buffer
chains and unreferenced logic; ATPG and cut-width measurements both
benefit from sweeping them.  All passes are functionality-preserving on
the primary outputs (verified by the property tests).
"""

from __future__ import annotations

from repro.circuits.gates import GateType
from repro.circuits.network import Network

#: Constant-propagation rules: (gate type, constant value at an input)
#: → either a forced constant output or "drop the input".
_ABSORBING = {
    (GateType.AND, 0): GateType.CONST0,
    (GateType.NAND, 0): GateType.CONST1,
    (GateType.OR, 1): GateType.CONST1,
    (GateType.NOR, 1): GateType.CONST0,
}

_IDENTITY = {
    (GateType.AND, 1),
    (GateType.NAND, 1),
    (GateType.OR, 0),
    (GateType.NOR, 0),
}


def propagate_constants(network: Network) -> Network:
    """Fold CONST0/CONST1 drivers through the logic.

    AND with a 0 input becomes CONST0; an identity input (1 for AND,
    0 for OR/XOR, …) is dropped; XOR with a 1 input flips into XNOR and
    vice versa; fully-constant gates evaluate away.  Iterates to a fixed
    point in one topological sweep (constants only flow forward).
    """
    const_of: dict[str, int] = {}
    result = Network(name=network.name)

    for net in network.topological_order():
        gate = network.gate(net)
        gtype = gate.gate_type

        if gtype is GateType.INPUT:
            result.add_input(net)
            continue
        if gtype is GateType.CONST0:
            const_of[net] = 0
            result.add_gate(net, GateType.CONST0, ())
            continue
        if gtype is GateType.CONST1:
            const_of[net] = 1
            result.add_gate(net, GateType.CONST1, ())
            continue

        live: list[str] = []
        forced: GateType | None = None
        flips = 0
        for src in gate.inputs:
            value = const_of.get(src)
            if value is None:
                live.append(src)
                continue
            if (gtype, value) in _ABSORBING:
                forced = _ABSORBING[(gtype, value)]
                break
            if (gtype, value) in _IDENTITY:
                continue
            if gtype in (GateType.XOR, GateType.XNOR):
                # Both feed the same internal parity: a 0 input drops
                # out, a 1 input drops out and inverts the result —
                # regardless of whether the gate's output is inverted.
                # (XNOR(1, x) = x, so the flip applies to XNOR too.)
                flips += value
                continue
            if gtype in (GateType.BUF, GateType.NOT):
                out = value if gtype is GateType.BUF else 1 - value
                forced = GateType.CONST1 if out else GateType.CONST0
                break
            # Remaining case: identity-valued input handled above; a
            # non-identity, non-absorbing constant only exists for XOR
            # family (handled) — anything else keeps the input live.
            live.append(src)

        if forced is not None:
            const_of[net] = 1 if forced is GateType.CONST1 else 0
            result.add_gate(net, forced, ())
            continue

        effective = gtype
        if gtype in (GateType.XOR, GateType.XNOR) and flips % 2 == 1:
            effective = (
                GateType.XNOR if gtype is GateType.XOR else GateType.XOR
            )

        if not live:
            # All inputs were identity constants: gate reduces to its
            # neutral value.
            neutral = {
                GateType.AND: 1,
                GateType.NAND: 0,
                GateType.OR: 0,
                GateType.NOR: 1,
                GateType.XOR: 0,
                GateType.XNOR: 1,
            }[effective]
            const_of[net] = neutral
            result.add_gate(
                net, GateType.CONST1 if neutral else GateType.CONST0, ()
            )
        elif len(live) == 1 and effective in (
            GateType.AND,
            GateType.OR,
            GateType.XOR,
        ):
            result.add_gate(net, GateType.BUF, live)
        elif len(live) == 1 and effective in (
            GateType.NAND,
            GateType.NOR,
            GateType.XNOR,
        ):
            result.add_gate(net, GateType.NOT, live)
        else:
            result.add_gate(net, effective, live)

    result.set_outputs(network.outputs)
    return result


def sweep_buffers(network: Network) -> Network:
    """Collapse BUF chains and double inverters by rewiring readers.

    The buffered/inverted nets themselves are kept when they are primary
    outputs; otherwise readers connect straight to the source.
    """
    alias: dict[str, tuple[str, bool]] = {}  # net -> (source, inverted?)

    def resolve(net: str) -> tuple[str, bool]:
        seen = []
        inverted = False
        current = net
        while current in alias:
            seen.append(current)
            source, inv = alias[current]
            inverted ^= inv
            current = source
        for item in seen:
            pass  # no path compression needed at these sizes
        return current, inverted

    outputs = set(network.outputs)
    for net in network.topological_order():
        gate = network.gate(net)
        if net in outputs:
            continue
        if gate.gate_type is GateType.BUF:
            alias[net] = (gate.inputs[0], False)
        elif gate.gate_type is GateType.NOT:
            source = gate.inputs[0]
            src_gate = network.gate(source)
            if src_gate.gate_type is GateType.NOT and source not in outputs:
                alias[net] = (src_gate.inputs[0], False)

    result = Network(name=network.name)
    for net in network.topological_order():
        if net in alias:
            continue
        gate = network.gate(net)
        if gate.gate_type is GateType.INPUT:
            result.add_input(net)
            continue
        rewired: list[str] = []
        for src in gate.inputs:
            target, inverted = resolve(src)
            if inverted:  # pragma: no cover - aliases never invert here
                raise AssertionError("buffer aliases cannot invert")
            rewired.append(target)
        result.add_gate(net, gate.gate_type, rewired)
    result.set_outputs(network.outputs)
    return result


def remove_dangling(network: Network) -> Network:
    """Drop logic that reaches no primary output (inputs are kept)."""
    keep = network.transitive_fanin(
        [out for out in network.outputs if network.has_net(out)]
    )
    result = Network(name=network.name)
    for net in network.topological_order():
        gate = network.gate(net)
        if gate.gate_type is GateType.INPUT:
            result.add_input(net)
        elif net in keep:
            result.add_gate(net, gate.gate_type, gate.inputs)
    result.set_outputs(network.outputs)
    return result


def sweep(network: Network) -> Network:
    """The full cleanup pipeline: constants → buffers → dangling."""
    return remove_dangling(sweep_buffers(propagate_constants(network)))
