"""Boolean network substrate: gates, netlists, decomposition, simulation."""

from repro.circuits.build import NetworkBuilder, mux2, xor2
from repro.circuits.decompose import is_decomposed, tech_decompose
from repro.circuits.gates import GateType, evaluate_gate, gate_type_from_name
from repro.circuits.network import Gate, Network, NetworkError
from repro.circuits.optimize import (
    propagate_constants,
    remove_dangling,
    sweep,
    sweep_buffers,
)
from repro.circuits.stats import CircuitProfile, compare_profiles, profile
from repro.circuits.simulate import (
    PATTERNS_PER_WORD,
    exhaustive_patterns,
    networks_equivalent,
    pack_patterns,
    random_patterns,
    simulate,
    simulate_pattern,
    unpack_pattern,
)
from repro.circuits.validate import (
    ValidationError,
    ValidationReport,
    check_network,
    validate_network,
)

__all__ = [
    "CircuitProfile",
    "Gate",
    "GateType",
    "Network",
    "NetworkBuilder",
    "NetworkError",
    "PATTERNS_PER_WORD",
    "ValidationError",
    "ValidationReport",
    "check_network",
    "evaluate_gate",
    "exhaustive_patterns",
    "gate_type_from_name",
    "is_decomposed",
    "mux2",
    "networks_equivalent",
    "compare_profiles",
    "pack_patterns",
    "profile",
    "propagate_constants",
    "remove_dangling",
    "random_patterns",
    "simulate",
    "simulate_pattern",
    "sweep",
    "sweep_buffers",
    "tech_decompose",
    "unpack_pattern",
    "validate_network",
    "xor2",
]
