"""Fluent construction helpers for Boolean networks.

:class:`NetworkBuilder` removes the naming boilerplate when constructing
circuits programmatically (generators, miters, decomposition) by
auto-generating fresh net names.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.circuits.gates import GateType
from repro.circuits.network import Network


class NetworkBuilder:
    """Builds a :class:`Network` with automatic fresh-name generation."""

    def __init__(self, name: str = "circuit", prefix: str = "n") -> None:
        self.network = Network(name=name)
        self._prefix = prefix
        self._counter = 0

    def fresh(self, hint: str | None = None) -> str:
        """A net name guaranteed not to collide with existing nets."""
        base = hint or self._prefix
        while True:
            candidate = f"{base}{self._counter}"
            self._counter += 1
            if not self.network.has_net(candidate):
                return candidate

    # ------------------------------------------------------------------
    def input(self, name: str | None = None) -> str:
        """Add a primary input, returning its net name."""
        return self.network.add_input(name or self.fresh("in"))

    def inputs(self, count: int, stem: str = "in") -> list[str]:
        """Add ``count`` primary inputs named ``stem0..stem{count-1}``."""
        return [self.network.add_input(f"{stem}{i}") for i in range(count)]

    def gate(
        self,
        gate_type: GateType,
        inputs: Sequence[str],
        name: str | None = None,
    ) -> str:
        """Add a gate of ``gate_type``, returning its output net."""
        return self.network.add_gate(name or self.fresh(), gate_type, inputs)

    def and_(self, *inputs: str, name: str | None = None) -> str:
        return self.gate(GateType.AND, inputs, name)

    def or_(self, *inputs: str, name: str | None = None) -> str:
        return self.gate(GateType.OR, inputs, name)

    def nand(self, *inputs: str, name: str | None = None) -> str:
        return self.gate(GateType.NAND, inputs, name)

    def nor(self, *inputs: str, name: str | None = None) -> str:
        return self.gate(GateType.NOR, inputs, name)

    def xor(self, *inputs: str, name: str | None = None) -> str:
        return self.gate(GateType.XOR, inputs, name)

    def xnor(self, *inputs: str, name: str | None = None) -> str:
        return self.gate(GateType.XNOR, inputs, name)

    def not_(self, source: str, name: str | None = None) -> str:
        return self.gate(GateType.NOT, [source], name)

    def buf(self, source: str, name: str | None = None) -> str:
        return self.gate(GateType.BUF, [source], name)

    def const0(self, name: str | None = None) -> str:
        return self.gate(GateType.CONST0, (), name or self.fresh("zero"))

    def const1(self, name: str | None = None) -> str:
        return self.gate(GateType.CONST1, (), name or self.fresh("one"))

    def outputs(self, *nets: str) -> None:
        """Declare the primary outputs."""
        self.network.set_outputs(nets)

    def build(self) -> Network:
        """Return the constructed network."""
        return self.network


def mux2(builder: NetworkBuilder, select: str, a: str, b: str) -> str:
    """2:1 multiplexer: ``select ? b : a`` built from AND/OR/NOT."""
    nsel = builder.not_(select)
    take_a = builder.and_(nsel, a)
    take_b = builder.and_(select, b)
    return builder.or_(take_a, take_b)


def xor2(builder: NetworkBuilder, a: str, b: str) -> str:
    """2-input XOR built from the simple AND/OR/NOT alphabet."""
    na = builder.not_(a)
    nb = builder.not_(b)
    left = builder.and_(a, nb)
    right = builder.and_(na, b)
    return builder.or_(left, right)
