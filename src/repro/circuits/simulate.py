"""Bit-parallel logic simulation.

Used to cross-check SAT answers, validate generated test patterns, and
drive the fault simulator.  Patterns are packed into Python integers
(`PATTERNS_PER_WORD` at a time by convention, though Python's arbitrary
precision integers allow any width).
"""

from __future__ import annotations

import random
from collections.abc import Mapping, Sequence

from repro.circuits.network import Network

#: Conventional word width for pattern-parallel simulation.
PATTERNS_PER_WORD = 64


def simulate(
    network: Network,
    input_words: Mapping[str, int],
    n_patterns: int = PATTERNS_PER_WORD,
) -> dict[str, int]:
    """Simulate ``n_patterns`` patterns in parallel.

    Args:
        network: circuit to simulate.
        input_words: packed pattern word per primary input (bit *i* is the
            value of that input in pattern *i*).
        n_patterns: number of valid pattern bits in each word.

    Returns:
        Packed output word per net.
    """
    mask = (1 << n_patterns) - 1
    return network.evaluate(input_words, mask=mask)


def simulate_pattern(
    network: Network, assignment: Mapping[str, int]
) -> dict[str, int]:
    """Simulate a single pattern given 0/1 input values."""
    return {net: word & 1 for net, word in simulate(network, assignment, 1).items()}


def pack_patterns(
    patterns: Sequence[Mapping[str, int]], inputs: Sequence[str]
) -> dict[str, int]:
    """Pack a list of single-pattern assignments into parallel words."""
    words = {net: 0 for net in inputs}
    for bit, pattern in enumerate(patterns):
        for net in inputs:
            if pattern.get(net, 0) & 1:
                words[net] |= 1 << bit
    return words


def unpack_pattern(words: Mapping[str, int], bit: int) -> dict[str, int]:
    """Extract single-pattern values from packed words at position ``bit``."""
    return {net: (word >> bit) & 1 for net, word in words.items()}


def random_patterns(
    inputs: Sequence[str],
    n_patterns: int,
    rng: random.Random,
) -> dict[str, int]:
    """Draw ``n_patterns`` uniform random patterns as packed words."""
    return {net: rng.getrandbits(n_patterns) for net in inputs}


def exhaustive_patterns(inputs: Sequence[str]) -> tuple[dict[str, int], int]:
    """All 2^n input patterns as packed words (for small n).

    Returns:
        (packed words, pattern count).

    Raises:
        ValueError: if there are more than 20 inputs (word would exceed 1M bits).
    """
    n = len(inputs)
    if n > 20:
        raise ValueError(f"{n} inputs is too many for exhaustive simulation")
    count = 1 << n
    words: dict[str, int] = {}
    for index, net in enumerate(inputs):
        word = 0
        for pattern in range(count):
            if (pattern >> index) & 1:
                word |= 1 << pattern
        words[net] = word
    return words, count


def networks_equivalent(
    left: Network,
    right: Network,
    *,
    n_random: int = 256,
    seed: int = 0,
) -> bool:
    """Check functional equivalence by simulation.

    Uses exhaustive simulation when the input count permits, otherwise
    ``n_random`` random patterns.  Input and output name sets must match.
    """
    if set(left.inputs) != set(right.inputs):
        return False
    if list(left.outputs) != list(right.outputs):
        return False
    inputs = list(left.inputs)
    if len(inputs) <= 14:
        words, count = exhaustive_patterns(inputs)
    else:
        count = n_random
        words = random_patterns(inputs, count, random.Random(seed))
    left_values = simulate(left, words, count)
    right_values = simulate(right, words, count)
    mask = (1 << count) - 1
    return all(
        (left_values[out] & mask) == (right_values[out] & mask)
        for out in left.outputs
    )
