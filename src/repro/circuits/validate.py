"""Structural validation of Boolean networks.

These checks enforce the assumptions the paper makes in Section 2: every
net driven, no combinational cycles, and (after decomposition) the
simple-gate alphabet with bounded fanin.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.circuits.gates import GateType
from repro.circuits.network import Network, NetworkError


class ValidationError(NetworkError):
    """A netlist failed structural validation (cyclic, undriven nets,
    …).  Subclasses :class:`NetworkError` so existing handlers keep
    working; raised by :func:`check_network` and, via it, by the ATPG
    engines' fail-fast construction check."""


@dataclass
class ValidationReport:
    """Outcome of :func:`validate_network`."""

    errors: list[str] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no errors were found (warnings allowed)."""
        return not self.errors


def validate_network(
    network: Network,
    *,
    require_simple: bool = False,
    max_fanin: int | None = None,
) -> ValidationReport:
    """Check structural well-formedness of ``network``.

    Args:
        network: the circuit to check.
        require_simple: if True, also require the paper's AND/OR/NOT/BUF
            alphabet (Section 2's mapping restriction).
        max_fanin: if given, flag any gate whose fanin exceeds it (k_fi).

    Returns:
        A :class:`ValidationReport`; ``report.ok`` is the pass/fail verdict.
    """
    report = ValidationReport()

    if not network.outputs:
        report.errors.append("network declares no primary outputs")
    for out in network.outputs:
        if not network.has_net(out):
            report.errors.append(f"primary output {out!r} is not a driven net")

    for gate in network.gates():
        for src in gate.inputs:
            if not network.has_net(src):
                report.errors.append(
                    f"gate {gate.output!r} reads undriven net {src!r}"
                )
        if require_simple and not gate.gate_type.is_simple:
            report.errors.append(
                f"gate {gate.output!r} has non-simple type {gate.gate_type.value}"
            )
        if max_fanin is not None and gate.fanin > max_fanin:
            report.errors.append(
                f"gate {gate.output!r} fanin {gate.fanin} exceeds bound {max_fanin}"
            )

    try:
        order = network.topological_order()
    except NetworkError as exc:
        report.errors.append(str(exc))
        return report

    reachable = network.transitive_fanin(
        [out for out in network.outputs if network.has_net(out)]
    )
    dangling = [net for net in order if net not in reachable]
    for net in dangling:
        gate = network.gate(net)
        if gate.gate_type is not GateType.INPUT:
            report.warnings.append(
                f"net {net!r} does not reach any primary output"
            )
    return report


def check_network(network: Network, **kwargs) -> None:
    """Like :func:`validate_network` but raises on the first problem.

    Raises:
        ValidationError: with all error messages joined, if validation
            fails (a :class:`NetworkError` subclass).
    """
    report = validate_network(network, **kwargs)
    if not report.ok:
        raise ValidationError("; ".join(report.errors))
