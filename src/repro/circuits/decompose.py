"""Technology decomposition into bounded-fanin AND/OR gates with inversions.

The paper (Section 5.2.2) maps every benchmark circuit to "three (or fewer)
input AND/OR gates, allowing inversions", using SIS's ``tech_decomp``, before
measuring cut-widths or generating SAT formulas.  This module is our
stand-in for that pass:

* XOR/XNOR gates expand into two-level AND/OR trees of 2-input gates;
* NAND/NOR become AND/OR followed by NOT;
* wide AND/OR gates are split into balanced trees of at most ``max_fanin``
  inputs per node.

The pass preserves net names for every original net (new internal nets get
a ``_d<N>`` suffix namespace), so fault sites survive decomposition.
"""

from __future__ import annotations

from repro.circuits.gates import GateType
from repro.circuits.network import Network


class _FreshNamer:
    """Generates collision-free internal net names."""

    def __init__(self, taken: set[str]) -> None:
        self._taken = set(taken)
        self._counter = 0

    def fresh(self, stem: str) -> str:
        while True:
            candidate = f"{stem}_d{self._counter}"
            self._counter += 1
            if candidate not in self._taken:
                self._taken.add(candidate)
                return candidate


def _split_tree(
    result: Network,
    namer: _FreshNamer,
    gate_type: GateType,
    inputs: list[str],
    output: str,
    max_fanin: int,
) -> None:
    """Emit a balanced tree of ``gate_type`` nodes computing ``output``."""
    frontier = list(inputs)
    while len(frontier) > max_fanin:
        next_frontier: list[str] = []
        for i in range(0, len(frontier), max_fanin):
            chunk = frontier[i : i + max_fanin]
            if len(chunk) == 1:
                next_frontier.append(chunk[0])
                continue
            net = namer.fresh(output)
            result.add_gate(net, gate_type, chunk)
            next_frontier.append(net)
        frontier = next_frontier
    if len(frontier) == 1 and gate_type in (GateType.AND, GateType.OR):
        result.add_gate(output, GateType.BUF, frontier)
    else:
        result.add_gate(output, gate_type, frontier)


def _emit_xor2(
    result: Network, namer: _FreshNamer, a: str, b: str, output: str
) -> None:
    """output = a XOR b using AND/OR/NOT."""
    na = namer.fresh(output)
    nb = namer.fresh(output)
    left = namer.fresh(output)
    right = namer.fresh(output)
    result.add_gate(na, GateType.NOT, [a])
    result.add_gate(nb, GateType.NOT, [b])
    result.add_gate(left, GateType.AND, [a, nb])
    result.add_gate(right, GateType.AND, [na, b])
    result.add_gate(output, GateType.OR, [left, right])


def _emit_xor_chain(
    result: Network,
    namer: _FreshNamer,
    inputs: list[str],
    output: str,
    invert: bool,
) -> None:
    """Multi-input XOR as a chain of 2-input XOR expansions."""
    acc = inputs[0]
    for idx, src in enumerate(inputs[1:]):
        is_last = idx == len(inputs) - 2
        target = output if (is_last and not invert) else namer.fresh(output)
        _emit_xor2(result, namer, acc, src, target)
        acc = target
    if invert:
        result.add_gate(output, GateType.NOT, [acc])
    elif len(inputs) == 1:
        result.add_gate(output, GateType.BUF, [acc])


def tech_decompose(network: Network, max_fanin: int = 3) -> Network:
    """Map ``network`` onto ≤``max_fanin``-input AND/OR gates with inversions.

    Args:
        network: source circuit; any gate alphabet.
        max_fanin: the k_fi bound for AND/OR nodes (the paper uses 3).

    Returns:
        A new functionally equivalent network over the simple alphabet.
        Original net names are preserved, so fault lists and output names
        remain valid.

    Raises:
        ValueError: if ``max_fanin`` < 2.
    """
    if max_fanin < 2:
        raise ValueError("max_fanin must be at least 2")

    result = Network(name=network.name)
    namer = _FreshNamer(set(network.nets))

    for net in network.topological_order():
        gate = network.gate(net)
        gtype = gate.gate_type
        inputs = list(gate.inputs)

        if gtype is GateType.INPUT:
            result.add_input(net)
        elif gtype in (GateType.CONST0, GateType.CONST1, GateType.BUF, GateType.NOT):
            result.add_gate(net, gtype, inputs)
        elif gtype in (GateType.AND, GateType.OR):
            if len(inputs) <= max_fanin:
                result.add_gate(net, gtype, inputs)
            else:
                _split_tree(result, namer, gtype, inputs, net, max_fanin)
        elif gtype in (GateType.NAND, GateType.NOR):
            base = GateType.AND if gtype is GateType.NAND else GateType.OR
            inner = namer.fresh(net)
            if len(inputs) <= max_fanin:
                result.add_gate(inner, base, inputs)
            else:
                _split_tree(result, namer, base, inputs, inner, max_fanin)
            result.add_gate(net, GateType.NOT, [inner])
        elif gtype in (GateType.XOR, GateType.XNOR):
            _emit_xor_chain(
                result, namer, inputs, net, invert=(gtype is GateType.XNOR)
            )
        else:  # pragma: no cover - exhaustive over enum
            raise ValueError(f"cannot decompose gate type {gtype!r}")

    result.set_outputs(network.outputs)
    return result


def is_decomposed(network: Network, max_fanin: int = 3) -> bool:
    """True if ``network`` already satisfies the decomposition contract."""
    for gate in network.gates():
        if not gate.gate_type.is_simple:
            return False
        if gate.fanin > max_fanin:
            return False
    return True
