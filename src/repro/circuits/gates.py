"""Gate types and their Boolean semantics.

The paper (Section 2) assumes circuits mapped to simple AND and OR gates,
allowing inversions, with fanin bounded by ``k_fi`` and fanout by ``k_fo``.
This module defines the richer gate alphabet needed to *describe* circuits
(benchmark netlists use NAND/NOR/XOR/etc.) together with the evaluation
semantics used by the logic and fault simulators.  The decomposition pass
(:mod:`repro.circuits.decompose`) reduces everything to the paper's
AND/OR/NOT alphabet before SAT encoding.
"""

from __future__ import annotations

import enum
from collections.abc import Sequence


class GateType(enum.Enum):
    """The gate alphabet understood by the network substrate."""

    INPUT = "input"
    CONST0 = "const0"
    CONST1 = "const1"
    BUF = "buf"
    NOT = "not"
    AND = "and"
    OR = "or"
    NAND = "nand"
    NOR = "nor"
    XOR = "xor"
    XNOR = "xnor"

    @property
    def is_source(self) -> bool:
        """True for gates with no inputs (primary inputs and constants)."""
        return self in (GateType.INPUT, GateType.CONST0, GateType.CONST1)

    @property
    def is_simple(self) -> bool:
        """True for the paper's target alphabet: AND/OR/BUF/NOT (+ sources).

        CNF clause generation (Figure 2 of the paper) is defined for these
        gates only; XOR/NAND/etc. must be decomposed first or encoded via
        the extended Tseitin rules.
        """
        return self in (
            GateType.INPUT,
            GateType.CONST0,
            GateType.CONST1,
            GateType.BUF,
            GateType.NOT,
            GateType.AND,
            GateType.OR,
        )

    @property
    def inverting(self) -> bool:
        """True for gates whose output is the complement of a base function."""
        return self in (GateType.NOT, GateType.NAND, GateType.NOR, GateType.XNOR)


#: Gate types that accept exactly one input.
UNARY_GATES = frozenset({GateType.BUF, GateType.NOT})

#: Gate types that accept two or more inputs.
MULTI_INPUT_GATES = frozenset(
    {
        GateType.AND,
        GateType.OR,
        GateType.NAND,
        GateType.NOR,
        GateType.XOR,
        GateType.XNOR,
    }
)


def evaluate_gate(gate_type: GateType, inputs: Sequence[int]) -> int:
    """Evaluate ``gate_type`` on bitwise-parallel input words.

    Each entry of ``inputs`` is an integer used as a bit vector, so a single
    call simulates the gate for up to ``word_width`` patterns at once (the
    classic parallel-pattern simulation trick).  Callers mask the result to
    their word width; this function performs no masking of NOT-induced
    high bits beyond what Python integers require, so callers simulating
    with finite words must AND with their mask.

    Raises:
        ValueError: if the arity does not match the gate type.
    """
    if gate_type is GateType.CONST0:
        if inputs:
            raise ValueError("CONST0 takes no inputs")
        return 0
    if gate_type is GateType.CONST1:
        if inputs:
            raise ValueError("CONST1 takes no inputs")
        return ~0
    if gate_type is GateType.INPUT:
        raise ValueError("INPUT gates have no evaluation rule; supply their value")
    if gate_type in UNARY_GATES:
        if len(inputs) != 1:
            raise ValueError(f"{gate_type.value} takes exactly one input")
        value = inputs[0]
        return ~value if gate_type is GateType.NOT else value
    if not inputs:
        raise ValueError(f"{gate_type.value} needs at least one input")

    if gate_type in (GateType.AND, GateType.NAND):
        acc = ~0
        for word in inputs:
            acc &= word
    elif gate_type in (GateType.OR, GateType.NOR):
        acc = 0
        for word in inputs:
            acc |= word
    elif gate_type in (GateType.XOR, GateType.XNOR):
        acc = 0
        for word in inputs:
            acc ^= word
    else:  # pragma: no cover - exhaustive over enum
        raise ValueError(f"unknown gate type {gate_type!r}")

    if gate_type.inverting:
        acc = ~acc
    return acc


def gate_function_name(gate_type: GateType) -> str:
    """Human-readable name used by netlist writers."""
    return gate_type.value.upper()


_BENCH_NAMES = {
    "AND": GateType.AND,
    "OR": GateType.OR,
    "NAND": GateType.NAND,
    "NOR": GateType.NOR,
    "XOR": GateType.XOR,
    "XNOR": GateType.XNOR,
    "NOT": GateType.NOT,
    "INV": GateType.NOT,
    "BUF": GateType.BUF,
    "BUFF": GateType.BUF,
}


def gate_type_from_name(name: str) -> GateType:
    """Map a netlist function name (e.g. ``NAND``) to a :class:`GateType`.

    Raises:
        KeyError: if the name is not a recognised gate function.
    """
    return _BENCH_NAMES[name.strip().upper()]
