"""Four independent deciders of fault testability must agree.

For every fault of small random circuits, testability is decided by:

1. the SAT engine (CDCL on the Figure-3 miter CNF),
2. PODEM (structural search, no CNF at all),
3. BDDs (build the miter output BDDs; testable iff their OR is not 0),
4. exhaustive fault simulation (ground truth by definition).

Any disagreement indicates a bug in one of four nearly-disjoint code
paths, which makes this the strongest single test in the repository.
"""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.atpg.engine import AtpgEngine, FaultStatus
from repro.atpg.faults import collapse_faults, inject_fault
from repro.atpg.miter import UnobservableFault, build_atpg_circuit
from repro.atpg.podem import PodemEngine, PodemStatus
from repro.bdd.bdd import ZERO
from repro.bdd.circuit_bdd import build_output_bdds
from repro.circuits.decompose import tech_decompose
from repro.circuits.simulate import simulate_pattern
from tests.conftest import make_random_network


def decide_by_bdd(network, fault) -> bool:
    """Build BDDs of the miter's XOR outputs; testable iff any is ≠ 0."""
    try:
        atpg = build_atpg_circuit(network, fault)
    except UnobservableFault:
        return False
    manager, roots = build_output_bdds(atpg.network)
    return any(root != ZERO for root in roots.values())


def decide_by_simulation(network, fault) -> bool:
    faulty = inject_fault(network, fault)
    inputs = list(network.inputs)
    for bits in itertools.product((0, 1), repeat=len(inputs)):
        pattern = dict(zip(inputs, bits))
        good = simulate_pattern(network, pattern)
        bad = simulate_pattern(faulty, pattern)
        if any(good[o] != bad[o] for o in network.outputs):
            return True
    return False


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_four_deciders_agree(seed):
    network = tech_decompose(
        make_random_network(seed, num_inputs=4, num_gates=7)
    )
    sat_engine = AtpgEngine(network)
    podem = PodemEngine(network, max_backtracks=100_000)
    for fault in collapse_faults(network):
        truth = decide_by_simulation(network, fault)

        sat_record = sat_engine.generate_test(fault)
        sat_says = sat_record.status is FaultStatus.TESTED
        if sat_record.status is FaultStatus.UNOBSERVABLE:
            sat_says = False
        assert sat_says == truth, ("sat", fault)

        podem_result = podem.generate_test(fault)
        assert podem_result.status is not PodemStatus.ABORTED
        assert (podem_result.status is PodemStatus.TESTED) == truth, (
            "podem",
            fault,
        )

        assert decide_by_bdd(network, fault) == truth, ("bdd", fault)


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_scoap_guided_podem_agrees_too(seed):
    """SCOAP guidance changes PODEM's search order, never its verdicts."""
    network = tech_decompose(
        make_random_network(seed, num_inputs=4, num_gates=6)
    )
    plain = PodemEngine(network, max_backtracks=100_000)
    guided = PodemEngine(network, max_backtracks=100_000, use_scoap=True)
    for fault in collapse_faults(network):
        a = plain.generate_test(fault)
        b = guided.generate_test(fault)
        assert a.status == b.status, fault
