"""Tests for SAT-based combinational equivalence checking."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.equivalence import (
    InterfaceMismatch,
    build_cec_miter,
    check_equivalence,
)
from repro.circuits.build import NetworkBuilder
from repro.circuits.decompose import tech_decompose
from repro.circuits.gates import GateType
from repro.circuits.simulate import simulate_pattern
from repro.gen.structured import carry_lookahead_adder, ripple_carry_adder
from tests.conftest import make_random_network


class TestMiter:
    def test_interface_checks(self, example_network, two_output_network):
        with pytest.raises(InterfaceMismatch):
            build_cec_miter(example_network, two_output_network)

    def test_miter_outputs(self, example_network):
        miter = build_cec_miter(example_network, example_network.copy())
        assert miter.outputs == ("neq$i",)
        assert miter.gate("neq$i").gate_type is GateType.XOR


class TestEquivalent:
    def test_self_equivalence(self, example_network):
        result = check_equivalence(example_network, example_network.copy())
        assert result.equivalent
        assert result.proven

    def test_decomposition_equivalence(self):
        """tech_decompose preserves function — proven by SAT, not just
        sampled by simulation."""
        for seed in (1, 5, 9):
            net = make_random_network(seed, num_inputs=4, num_gates=9)
            result = check_equivalence(net, tech_decompose(net))
            assert result.equivalent, seed

    def test_rca_equals_cla(self):
        """Two genuinely different adder architectures are equivalent —
        the textbook CEC demonstration."""
        rca = ripple_carry_adder(4)
        cla = carry_lookahead_adder(4)
        # Align interfaces: same input names, same output list order.
        assert set(rca.inputs) == set(cla.inputs)
        cla.set_outputs(rca.outputs)
        result = check_equivalence(rca, cla)
        assert result.equivalent

    def test_demorgan(self):
        left = NetworkBuilder("demorgan_l")
        a, b = left.inputs(2)
        left.outputs(left.nand(a, b, name="z"))
        right = NetworkBuilder("demorgan_r")
        a, b = right.inputs(2)
        na = right.not_(a)
        nb = right.not_(b)
        right.outputs(right.or_(na, nb, name="z"))
        result = check_equivalence(left.build(), right.build())
        assert result.equivalent


class TestInequivalent:
    def test_counterexample_found_and_validated(self):
        left = NetworkBuilder("and_l")
        a, b = left.inputs(2)
        left.outputs(left.and_(a, b, name="z"))
        right = NetworkBuilder("or_r")
        a, b = right.inputs(2)
        right.outputs(right.or_(a, b, name="z"))
        result = check_equivalence(left.build(), right.build())
        assert not result.equivalent
        assert result.counterexample is not None
        assert result.differing_output == "z"
        # The counterexample genuinely distinguishes the circuits.
        lv = simulate_pattern(left.build(), result.counterexample)["z"]
        rv = simulate_pattern(right.build(), result.counterexample)["z"]
        assert lv != rv

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_single_gate_mutation_detected(self, seed):
        """Flipping one gate type is either detected with a validated
        counterexample or proven equivalent (the mutation may be
        functionally benign)."""
        import random

        net = make_random_network(seed, num_inputs=4, num_gates=8)
        rng = random.Random(seed)
        gates = [
            g.output
            for g in net.gates()
            if g.gate_type in (GateType.AND, GateType.OR)
        ]
        if not gates:
            return
        victim = rng.choice(gates)
        mutated = net.copy()
        gate = mutated.gate(victim)
        flipped = (
            GateType.OR if gate.gate_type is GateType.AND else GateType.AND
        )
        mutated.replace_gate(victim, flipped, gate.inputs)

        from repro.circuits.simulate import networks_equivalent

        result = check_equivalence(net, mutated)
        assert result.equivalent == networks_equivalent(net, mutated)
        if not result.equivalent:
            pattern = result.counterexample
            lv = simulate_pattern(net, pattern)
            rv = simulate_pattern(mutated, pattern)
            assert any(lv[o] != rv[o] for o in net.outputs)
