"""Tests for ATPG-based redundancy removal."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.redundancy import remove_redundancies
from repro.atpg.engine import AtpgEngine, FaultStatus
from repro.circuits.build import NetworkBuilder
from repro.circuits.decompose import tech_decompose
from repro.circuits.simulate import networks_equivalent
from repro.gen.structured import tmr_voted_adder
from tests.conftest import make_random_network


def consensus_circuit():
    """carry = ab + b̄c + ac — the ac term is redundant (consensus)."""
    builder = NetworkBuilder("consensus")
    a = builder.input("a")
    b = builder.input("b")
    c = builder.input("c")
    nb = builder.not_(b, name="nb")
    ab = builder.and_(a, b, name="ab")
    nbc = builder.and_(nb, c, name="nbc")
    ac = builder.and_(a, c, name="ac")
    builder.outputs(builder.or_(ab, nbc, ac, name="carry"))
    return builder.build()


class TestRemoval:
    def test_consensus_term_removed(self):
        net = consensus_circuit()
        optimized, report = remove_redundancies(net)
        assert report.removed  # ac/sa0 (at least) proven redundant
        assert report.gate_reduction >= 1
        assert networks_equivalent(net, optimized)

    def test_optimized_circuit_is_irredundant(self):
        net = consensus_circuit()
        optimized, _ = remove_redundancies(net)
        summary = AtpgEngine(optimized).run(fault_dropping=True)
        assert not summary.by_status(FaultStatus.UNTESTABLE)

    def test_irredundant_circuit_untouched(self, example_network):
        optimized, report = remove_redundancies(example_network)
        assert not report.removed
        assert report.passes == 1
        assert networks_equivalent(example_network, optimized)

    def test_report_counts(self):
        net = consensus_circuit()
        _, report = remove_redundancies(net)
        assert report.gates_before == net.num_gates()
        assert report.gates_after <= report.gates_before

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_always_function_preserving(self, seed):
        """The optimizer never changes the circuit function — verified
        exhaustively by simulation for every random circuit."""
        net = make_random_network(seed, num_inputs=4, num_gates=9)
        optimized, _ = remove_redundancies(net)
        assert networks_equivalent(net, optimized)

    def test_double_redundancy_multi_pass(self):
        """Two stacked redundant ORs require iteration to a fixed point."""
        builder = NetworkBuilder("double")
        a = builder.input("a")
        b = builder.input("b")
        ab = builder.and_(a, b, name="ab")
        r1 = builder.or_(a, ab, name="r1")  # = a (absorption)
        r2 = builder.or_(r1, ab, name="r2")  # still = a
        builder.outputs(r2)
        net = builder.build()
        optimized, report = remove_redundancies(net)
        assert networks_equivalent(net, optimized)
        assert optimized.num_gates() < net.num_gates()


class TestTmrVotedAdder:
    """The deliberately redundancy-heavy bench circuit: every fault
    inside a single TMR carry replica is outvoted by the other two, so
    the untestable fraction is structural, not accidental."""

    def _net(self, width=3):
        return tech_decompose(tmr_voted_adder(width))

    def test_majority_of_faults_untestable(self):
        net = self._net()
        summary = AtpgEngine(net).run(fault_dropping=False)
        counts = summary.status_counts()
        total = sum(counts.values())
        assert counts["untestable"] > total // 2, counts
        # The shared sum logic stays testable — coverage of the
        # testable faults must be complete.
        assert counts["tested"] > 0
        assert counts["aborted"] == 0
        assert summary.fault_coverage == pytest.approx(1.0)

    def test_sharing_on_off_verdict_parity(self):
        """Blocking parity: clause sharing must not flip any verdict on
        the UNSAT-dominated workload it is benchmarked on."""
        net = self._net()
        on = AtpgEngine(net, share_learned="cone").run(fault_dropping=False)
        off = AtpgEngine(net, share_learned="off").run(fault_dropping=False)
        assert on.status_counts() == off.status_counts()
        assert [r.status for r in on.records] == [
            r.status for r in off.records
        ]

    def test_redundancy_removal_strips_replicas(self):
        """remove_redundancies collapses the voted adder toward a plain
        adder while preserving its function."""
        net = self._net(width=2)
        optimized, report = remove_redundancies(net)
        assert report.removed
        assert networks_equivalent(net, optimized)
        assert optimized.num_gates() < net.num_gates()
