"""Tests for ATPG-based redundancy removal."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.redundancy import remove_redundancies
from repro.atpg.engine import AtpgEngine, FaultStatus
from repro.circuits.build import NetworkBuilder
from repro.circuits.simulate import networks_equivalent
from tests.conftest import make_random_network


def consensus_circuit():
    """carry = ab + b̄c + ac — the ac term is redundant (consensus)."""
    builder = NetworkBuilder("consensus")
    a = builder.input("a")
    b = builder.input("b")
    c = builder.input("c")
    nb = builder.not_(b, name="nb")
    ab = builder.and_(a, b, name="ab")
    nbc = builder.and_(nb, c, name="nbc")
    ac = builder.and_(a, c, name="ac")
    builder.outputs(builder.or_(ab, nbc, ac, name="carry"))
    return builder.build()


class TestRemoval:
    def test_consensus_term_removed(self):
        net = consensus_circuit()
        optimized, report = remove_redundancies(net)
        assert report.removed  # ac/sa0 (at least) proven redundant
        assert report.gate_reduction >= 1
        assert networks_equivalent(net, optimized)

    def test_optimized_circuit_is_irredundant(self):
        net = consensus_circuit()
        optimized, _ = remove_redundancies(net)
        summary = AtpgEngine(optimized).run(fault_dropping=True)
        assert not summary.by_status(FaultStatus.UNTESTABLE)

    def test_irredundant_circuit_untouched(self, example_network):
        optimized, report = remove_redundancies(example_network)
        assert not report.removed
        assert report.passes == 1
        assert networks_equivalent(example_network, optimized)

    def test_report_counts(self):
        net = consensus_circuit()
        _, report = remove_redundancies(net)
        assert report.gates_before == net.num_gates()
        assert report.gates_after <= report.gates_before

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_always_function_preserving(self, seed):
        """The optimizer never changes the circuit function — verified
        exhaustively by simulation for every random circuit."""
        net = make_random_network(seed, num_inputs=4, num_gates=9)
        optimized, _ = remove_redundancies(net)
        assert networks_equivalent(net, optimized)

    def test_double_redundancy_multi_pass(self):
        """Two stacked redundant ORs require iteration to a fixed point."""
        builder = NetworkBuilder("double")
        a = builder.input("a")
        b = builder.input("b")
        ab = builder.and_(a, b, name="ab")
        r1 = builder.or_(a, ab, name="r1")  # = a (absorption)
        r2 = builder.or_(r1, ab, name="r2")  # still = a
        builder.outputs(r2)
        net = builder.build()
        optimized, report = remove_redundancies(net)
        assert networks_equivalent(net, optimized)
        assert optimized.num_gates() < net.num_gates()
