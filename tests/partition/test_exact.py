"""Tests for the exact minimum cut-width DP."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hypergraph import Hypergraph, cut_width_under_order
from repro.partition.exact import MAX_EXACT_VERTICES, exact_min_cutwidth


def path_graph(n: int) -> Hypergraph:
    vertices = tuple(f"v{i}" for i in range(n))
    edges = tuple(
        (f"e{i}", (f"v{i}", f"v{i+1}")) for i in range(n - 1)
    )
    return Hypergraph(vertices, edges)


def cycle_graph(n: int) -> Hypergraph:
    vertices = tuple(f"v{i}" for i in range(n))
    edges = tuple(
        (f"e{i}", (f"v{i}", f"v{(i+1) % n}")) for i in range(n)
    )
    return Hypergraph(vertices, edges)


def star_graph(leaves: int) -> Hypergraph:
    vertices = ("hub",) + tuple(f"l{i}" for i in range(leaves))
    edges = tuple((f"e{i}", ("hub", f"l{i}")) for i in range(leaves))
    return Hypergraph(vertices, edges)


def complete_graph(n: int) -> Hypergraph:
    vertices = tuple(f"v{i}" for i in range(n))
    edges = tuple(
        (f"e{i}_{j}", (f"v{i}", f"v{j}"))
        for i in range(n)
        for j in range(i + 1, n)
    )
    return Hypergraph(vertices, edges)


class TestKnownValues:
    def test_empty(self):
        width, order = exact_min_cutwidth(Hypergraph((), ()))
        assert width == 0
        assert order == []

    def test_single_vertex(self):
        width, _ = exact_min_cutwidth(Hypergraph(("a",), ()))
        assert width == 0

    def test_path_cutwidth_is_one(self):
        width, order = exact_min_cutwidth(path_graph(7))
        assert width == 1
        assert cut_width_under_order(path_graph(7), order) == 1

    def test_cycle_cutwidth_is_two(self):
        width, _ = exact_min_cutwidth(cycle_graph(6))
        assert width == 2

    def test_star_cutwidth(self):
        # Best ordering puts the hub in the middle: ceil(leaves/2).
        width, _ = exact_min_cutwidth(star_graph(5))
        assert width == 3

    def test_complete_graph_k4(self):
        # K4 cutwidth = 4 (known small value).
        width, _ = exact_min_cutwidth(complete_graph(4))
        assert width == 4

    def test_too_large_rejected(self):
        with pytest.raises(ValueError):
            exact_min_cutwidth(path_graph(MAX_EXACT_VERTICES + 1))

    def test_no_order_mode(self):
        width, order = exact_min_cutwidth(path_graph(5), return_order=False)
        assert width == 1
        assert order is None


class TestOptimality:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 5000))
    def test_matches_brute_force(self, seed):
        """DP result equals exhaustive minimum over all permutations."""
        import random

        rng = random.Random(seed)
        n = rng.randint(2, 6)
        vertices = tuple(f"v{i}" for i in range(n))
        edges = []
        for index in range(rng.randint(1, 7)):
            size = rng.randint(2, min(3, n))
            members = tuple(rng.sample(vertices, size))
            edges.append((f"e{index}", members))
        graph = Hypergraph(vertices, tuple(edges))
        dp_width, dp_order = exact_min_cutwidth(graph)
        brute = min(
            cut_width_under_order(graph, list(perm))
            for perm in itertools.permutations(vertices)
        )
        assert dp_width == brute
        assert cut_width_under_order(graph, dp_order) == dp_width
