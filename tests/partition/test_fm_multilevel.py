"""Tests for FM and multilevel hypergraph bisection."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hypergraph import Hypergraph
from repro.partition.fm import edge_cut, fm_bisect
from repro.partition.multilevel import multilevel_bisect


def two_cliques(k: int, bridge_edges: int = 1) -> Hypergraph:
    """Two k-cliques joined by a few bridges: obvious optimal bisection."""
    vertices = tuple(f"a{i}" for i in range(k)) + tuple(
        f"b{i}" for i in range(k)
    )
    edges = []
    for side in "ab":
        for i in range(k):
            for j in range(i + 1, k):
                edges.append((f"{side}e{i}_{j}", (f"{side}{i}", f"{side}{j}")))
    for i in range(bridge_edges):
        edges.append((f"bridge{i}", (f"a{i}", f"b{i}")))
    return Hypergraph(vertices, tuple(edges))


def random_hypergraph(seed: int, n: int = 24, m: int = 40) -> Hypergraph:
    rng = random.Random(seed)
    vertices = tuple(f"v{i}" for i in range(n))
    edges = []
    for index in range(m):
        size = rng.randint(2, 4)
        edges.append((f"e{index}", tuple(rng.sample(vertices, size))))
    return Hypergraph(vertices, tuple(edges))


class TestFm:
    def test_finds_obvious_cut(self):
        graph = two_cliques(6)
        result = fm_bisect(graph, seed=3)
        assert result.cut == 1
        assert {v[0] for v in result.left} in ({"a"}, {"b"})

    def test_balance_respected(self):
        graph = random_hypergraph(1)
        result = fm_bisect(graph, balance=0.1)
        n = graph.num_vertices
        assert min(len(result.left), len(result.right)) >= int(0.4 * n) - 1

    def test_cut_value_consistent(self):
        graph = random_hypergraph(2)
        result = fm_bisect(graph)
        side_of = {v: 0 for v in result.left}
        side_of.update({v: 1 for v in result.right})
        assert edge_cut(graph, side_of) == result.cut

    def test_trivial_graphs(self):
        assert fm_bisect(Hypergraph((), ())).cut == 0
        assert fm_bisect(Hypergraph(("a",), ())).cut == 0

    def test_initial_partition_respected_as_seed(self):
        graph = two_cliques(5)
        left = [f"a{i}" for i in range(5)]
        result = fm_bisect(graph, initial_left=left)
        assert result.cut == 1

    def test_locked_vertices_stay(self):
        graph = two_cliques(4)
        result = fm_bisect(
            graph, locked_left=("a0",), locked_right=("b0",), seed=5
        )
        assert "a0" not in result.left + result.right
        assert "b0" not in result.left + result.right
        # Cut still counts edges incident to anchors.
        assert result.cut >= 1

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_partition_is_always_valid(self, seed):
        graph = random_hypergraph(seed, n=16, m=24)
        result = fm_bisect(graph, seed=seed)
        assert sorted(result.left + result.right) == sorted(graph.vertices)
        assert not set(result.left) & set(result.right)


class TestMultilevel:
    def test_finds_obvious_cut_large(self):
        graph = two_cliques(9, bridge_edges=2)
        result = multilevel_bisect(graph, seed=1)
        assert result.cut == 2

    def test_never_worse_than_random_split(self):
        for seed in range(5):
            graph = random_hypergraph(seed, n=40, m=70)
            result = multilevel_bisect(graph, seed=seed)
            rng = random.Random(seed)
            vertices = list(graph.vertices)
            rng.shuffle(vertices)
            side_of = {
                v: (0 if i < len(vertices) // 2 else 1)
                for i, v in enumerate(vertices)
            }
            assert result.cut <= edge_cut(graph, side_of)

    def test_partition_valid(self):
        graph = random_hypergraph(9, n=50, m=80)
        result = multilevel_bisect(graph)
        assert sorted(result.left + result.right) == sorted(graph.vertices)

    def test_locked_anchor_bias(self):
        """Anchors pull their neighbours to the right side."""
        graph = two_cliques(8)
        result = multilevel_bisect(
            graph, locked_left=("a0",), locked_right=("b0",), seed=0
        )
        left_families = {v[0] for v in result.left}
        right_families = {v[0] for v in result.right}
        assert left_families == {"a"}
        assert right_families == {"b"}
