"""Unit tests for the Network substrate."""

import pytest

from repro.circuits.gates import GateType
from repro.circuits.network import Gate, Network, NetworkError


def build_diamond() -> Network:
    """a -> (x, y) -> z reconvergent diamond."""
    net = Network("diamond")
    net.add_input("a")
    net.add_input("b")
    net.add_gate("x", GateType.AND, ["a", "b"])
    net.add_gate("y", GateType.OR, ["a", "b"])
    net.add_gate("z", GateType.AND, ["x", "y"])
    net.set_outputs(["z"])
    return net


class TestConstruction:
    def test_duplicate_driver_rejected(self):
        net = Network()
        net.add_input("a")
        with pytest.raises(NetworkError):
            net.add_input("a")

    def test_gate_arity_checks(self):
        with pytest.raises(NetworkError):
            Gate("x", GateType.NOT, ("a", "b"))
        with pytest.raises(NetworkError):
            Gate("x", GateType.AND, ())
        with pytest.raises(NetworkError):
            Gate("x", GateType.INPUT, ("a",))

    def test_replace_gate(self):
        net = build_diamond()
        net.replace_gate("z", GateType.OR, ["x", "y"])
        assert net.gate("z").gate_type is GateType.OR

    def test_replace_missing_raises(self):
        net = Network()
        with pytest.raises(NetworkError):
            net.replace_gate("nope", GateType.AND, ["a"])

    def test_len_and_contains(self):
        net = build_diamond()
        assert len(net) == 5
        assert "x" in net
        assert "nope" not in net


class TestTopology:
    def test_topological_order_respects_edges(self):
        net = build_diamond()
        order = net.topological_order()
        pos = {n: i for i, n in enumerate(order)}
        assert pos["a"] < pos["x"] < pos["z"]
        assert pos["b"] < pos["y"] < pos["z"]

    def test_insertion_is_topological_true(self):
        assert build_diamond().insertion_is_topological()

    def test_insertion_is_topological_false_for_forward_ref(self):
        net = Network()
        net.add_gate("z", GateType.AND, ["a", "b"])  # forward reference
        net.add_input("a")
        net.add_input("b")
        net.set_outputs(["z"])
        assert not net.insertion_is_topological()
        order = net.topological_order()
        pos = {n: i for i, n in enumerate(order)}
        assert pos["a"] < pos["z"] and pos["b"] < pos["z"]

    def test_cycle_detected(self):
        net = Network()
        net.add_gate("x", GateType.AND, ["y", "y"])
        net.add_gate("y", GateType.OR, ["x", "x"])
        net.set_outputs(["x"])
        with pytest.raises(NetworkError):
            net.topological_order()

    def test_undriven_net_detected(self):
        net = Network()
        net.add_gate("x", GateType.NOT, ["ghost"])
        net.set_outputs(["x"])
        with pytest.raises(NetworkError):
            net.topological_order()

    def test_levels_and_depth(self):
        net = build_diamond()
        levels = net.levels()
        assert levels["a"] == 0
        assert levels["x"] == 1
        assert levels["z"] == 2
        assert net.depth() == 2

    def test_fanouts(self):
        net = build_diamond()
        assert set(net.fanouts("a")) == {"x", "y"}
        assert net.fanouts("z") == ()

    def test_max_fanin_fanout(self):
        net = build_diamond()
        assert net.max_fanin() == 2
        # a feeds x and y; z is an output (counts one sink).
        assert net.max_fanout() == 2


class TestCones:
    def test_transitive_fanin(self):
        net = build_diamond()
        assert net.transitive_fanin(["x"]) == {"a", "b", "x"}
        assert net.transitive_fanin(["z"]) == {"a", "b", "x", "y", "z"}

    def test_transitive_fanout(self):
        net = build_diamond()
        assert net.transitive_fanout(["a"]) == {"a", "x", "y", "z"}
        assert net.transitive_fanout(["z"]) == {"z"}

    def test_transitive_fanin_unknown_net(self):
        with pytest.raises(NetworkError):
            build_diamond().transitive_fanin(["ghost"])

    def test_output_cone(self):
        net = build_diamond()
        net.add_gate("w", GateType.NOT, ["x"])
        net.add_output("w")
        cone = net.output_cone("w")
        assert set(cone.nets) == {"a", "b", "x", "w"}
        assert cone.outputs == ("w",)

    def test_subnetwork_boundary_inputs(self):
        net = build_diamond()
        sub = net.subnetwork(["z", "x", "y"], outputs=["z"])
        # a and b become primary inputs of the extraction.
        assert set(sub.inputs) == {"a", "b"}
        assert sub.gate("z").gate_type is GateType.AND

    def test_subnetwork_preserves_order_topologically(self):
        net = build_diamond()
        sub = net.subnetwork(["z", "y"], outputs=["z"])
        assert sub.insertion_is_topological()
        assert "x" in sub.inputs  # boundary


class TestEvaluation:
    def test_diamond_truth(self):
        net = build_diamond()
        values = net.evaluate({"a": 1, "b": 0})
        assert values["x"] == 0
        assert values["y"] == 1
        assert values["z"] == 0

    def test_parallel_patterns(self):
        net = build_diamond()
        # four patterns packed: a=0011, b=0101
        values = net.evaluate({"a": 0b0011, "b": 0b0101}, mask=0b1111)
        assert values["x"] == 0b0001
        assert values["y"] == 0b0111
        assert values["z"] == 0b0001

    def test_missing_inputs_default_zero(self):
        net = build_diamond()
        assert net.evaluate({})["z"] == 0


class TestCopies:
    def test_copy_independent(self):
        net = build_diamond()
        dup = net.copy()
        dup.replace_gate("z", GateType.OR, ["x", "y"])
        assert net.gate("z").gate_type is GateType.AND

    def test_renamed(self):
        net = build_diamond()
        dup = net.renamed("p_")
        assert "p_z" in dup
        assert dup.outputs == ("p_z",)
        assert dup.gate("p_z").inputs == ("p_x", "p_y")
