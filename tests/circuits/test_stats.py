"""Tests for circuit shape profiling."""

from repro.circuits.decompose import tech_decompose
from repro.circuits.stats import compare_profiles, profile, reconvergent_stems
from repro.gen.structured import binary_tree_circuit, ripple_carry_adder
from repro.gen.random_circuits import RandomCircuitSpec, random_circuit


class TestReconvergentStems:
    def test_tree_has_none(self):
        assert reconvergent_stems(binary_tree_circuit(4)) == 0

    def test_diamond_has_one(self):
        from repro.circuits.build import NetworkBuilder

        builder = NetworkBuilder()
        a, b = builder.inputs(2)
        x = builder.and_(a, b, name="x")
        y = builder.or_(a, b, name="y")
        builder.outputs(builder.and_(x, y, name="z"))
        net = builder.build()
        # Both in0 and in1 fan out and reconverge at z.
        assert reconvergent_stems(net) == 2

    def test_fanout_without_reconvergence(self, two_output_network):
        # in1 feeds x and y which reach different/overlapping outputs...
        # x and y reconverge at z, so in1 is a reconvergent stem.
        assert reconvergent_stems(two_output_network) >= 1


class TestProfile:
    def test_tree_profile(self):
        prof = profile(binary_tree_circuit(3))
        assert prof.num_inputs == 8
        assert prof.num_gates == 7
        assert prof.depth == 3
        assert prof.fanout_free_fraction == 1.0
        assert prof.reconvergent_stems == 0
        assert prof.gate_histogram == {"and": 7}

    def test_adder_profile(self):
        prof = profile(tech_decompose(ripple_carry_adder(4)))
        assert prof.max_fanin <= 3
        assert prof.reconvergent_stems > 0
        assert "depth" in prof.render()

    def test_generated_resembles_structured(self):
        """The generated suite's tree-ness lies in the benchmark zone."""
        spec = RandomCircuitSpec(
            num_inputs=20, num_gates=150, num_outputs=8, seed=1
        )
        generated = profile(tech_decompose(random_circuit(spec)))
        adder = profile(tech_decompose(ripple_carry_adder(8)))
        # Both mostly fanout-free with bounded fanout.
        assert generated.fanout_free_fraction >= 0.6
        assert adder.fanout_free_fraction >= 0.6
        assert generated.max_fanin <= 3

    def test_compare_renders(self):
        left = profile(binary_tree_circuit(3))
        right = profile(tech_decompose(ripple_carry_adder(3)))
        text = compare_profiles(left, right)
        assert "reconv stems" in text
        assert left.name in text and right.name in text
