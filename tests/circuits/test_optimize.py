"""Tests for the netlist cleanup passes."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.build import NetworkBuilder
from repro.circuits.gates import GateType
from repro.circuits.optimize import (
    propagate_constants,
    remove_dangling,
    sweep,
    sweep_buffers,
)
from repro.circuits.simulate import networks_equivalent, simulate_pattern
from tests.conftest import make_random_network


class TestConstantPropagation:
    def test_and_with_zero(self):
        builder = NetworkBuilder()
        a = builder.input("a")
        zero = builder.const0(name="zero")
        builder.outputs(builder.and_(a, zero, name="z"))
        result = propagate_constants(builder.build())
        assert result.gate("z").gate_type is GateType.CONST0

    def test_and_with_one_drops_input(self):
        builder = NetworkBuilder()
        a, b = builder.inputs(2)
        one = builder.const1(name="one")
        builder.outputs(builder.and_(a, b, one, name="z"))
        result = propagate_constants(builder.build())
        gate = result.gate("z")
        assert gate.gate_type is GateType.AND
        assert set(gate.inputs) == {"in0", "in1"}

    def test_single_survivor_becomes_buffer(self):
        builder = NetworkBuilder()
        a = builder.input("a")
        one = builder.const1(name="one")
        builder.outputs(builder.and_(a, one, name="z"))
        result = propagate_constants(builder.build())
        assert result.gate("z").gate_type is GateType.BUF

    def test_xor_with_one_flips(self):
        builder = NetworkBuilder()
        a, b = builder.inputs(2)
        one = builder.const1(name="one")
        builder.outputs(builder.xor(a, b, one, name="z"))
        result = propagate_constants(builder.build())
        assert result.gate("z").gate_type is GateType.XNOR

    def test_not_of_constant(self):
        builder = NetworkBuilder()
        builder.inputs(1)
        zero = builder.const0(name="zero")
        builder.outputs(builder.not_(zero, name="z"))
        result = propagate_constants(builder.build())
        assert result.gate("z").gate_type is GateType.CONST1

    def test_constants_chain_through(self):
        builder = NetworkBuilder()
        a = builder.input("a")
        zero = builder.const0(name="zero")
        x = builder.or_(a, zero, name="x")  # = a
        y = builder.and_(x, zero, name="y")  # = 0
        builder.outputs(builder.or_(y, a, name="z"))  # = a
        result = propagate_constants(builder.build())
        assert result.gate("y").gate_type is GateType.CONST0
        assert simulate_pattern(result, {"a": 1})["z"] == 1
        assert simulate_pattern(result, {"a": 0})["z"] == 0

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_preserves_function_with_injected_constants(self, seed):
        import random

        rng = random.Random(seed)
        net = make_random_network(seed, num_inputs=4, num_gates=8)
        # Replace one random input with a constant.
        victim = rng.choice(list(net.inputs))
        value = rng.randrange(2)
        mutated = net.copy()
        mutated.replace_gate(
            victim, GateType.CONST1 if value else GateType.CONST0, ()
        )
        folded = propagate_constants(mutated)
        assert networks_equivalent(mutated, folded)


class TestBufferSweep:
    def test_buffer_chain_collapsed(self):
        builder = NetworkBuilder()
        a = builder.input("a")
        b1 = builder.buf(a, name="b1")
        b2 = builder.buf(b1, name="b2")
        builder.outputs(builder.not_(b2, name="z"))
        result = sweep_buffers(builder.build())
        assert result.gate("z").inputs == ("a",)
        assert not result.has_net("b1")

    def test_double_inverter_collapsed(self):
        builder = NetworkBuilder()
        a = builder.input("a")
        n1 = builder.not_(a, name="n1")
        n2 = builder.not_(n1, name="n2")
        builder.outputs(builder.buf(n2, name="z"))
        result = sweep_buffers(builder.build())
        # z is an output so it stays; it now reads a directly.
        assert result.gate("z").inputs == ("a",)

    def test_output_buffers_kept(self):
        builder = NetworkBuilder()
        a = builder.input("a")
        builder.outputs(builder.buf(a, name="z"))
        result = sweep_buffers(builder.build())
        assert result.has_net("z")

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_preserves_function(self, seed):
        net = make_random_network(seed, num_inputs=4, num_gates=9)
        assert networks_equivalent(net, sweep_buffers(net))


class TestRemoveDangling:
    def test_drops_unreachable_gate(self):
        builder = NetworkBuilder()
        a, b = builder.inputs(2)
        builder.and_(a, b, name="dangle")
        builder.outputs(builder.or_(a, b, name="z"))
        result = remove_dangling(builder.build())
        assert not result.has_net("dangle")
        assert result.has_net("z")

    def test_inputs_kept(self):
        builder = NetworkBuilder()
        a, b = builder.inputs(2)
        builder.outputs(builder.buf(a, name="z"))
        result = remove_dangling(builder.build())
        assert set(result.inputs) == {"in0", "in1"}


class TestFullSweep:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_pipeline_preserves_function(self, seed):
        net = make_random_network(seed, num_inputs=4, num_gates=10)
        cleaned = sweep(net)
        assert networks_equivalent(net, cleaned)

    def test_miter_constants_fold(self, example_network):
        """Sweeping an ATPG miter folds the stuck constant through."""
        from repro.atpg.faults import Fault
        from repro.atpg.miter import build_atpg_circuit

        atpg = build_atpg_circuit(example_network, Fault("f", 1))
        cleaned = sweep(atpg.network)
        assert networks_equivalent(atpg.network, cleaned)
        assert len(cleaned.nets) <= len(atpg.network.nets)
