"""Tests for the builder helpers and structural validation."""

import pytest

from repro.circuits.build import NetworkBuilder, mux2, xor2
from repro.circuits.gates import GateType
from repro.circuits.network import NetworkError
from repro.circuits.simulate import simulate_pattern
from repro.circuits.validate import check_network, validate_network


class TestBuilder:
    def test_fresh_names_unique(self):
        builder = NetworkBuilder()
        a = builder.input()
        b = builder.input()
        assert a != b

    def test_named_gates(self):
        builder = NetworkBuilder()
        a, b = builder.inputs(2)
        z = builder.and_(a, b, name="z")
        assert z == "z"
        assert builder.network.gate("z").gate_type is GateType.AND

    def test_mux2_semantics(self):
        builder = NetworkBuilder()
        s, a, b = builder.inputs(3, stem="p")
        out = mux2(builder, s, a, b)
        builder.outputs(out)
        net = builder.build()
        assert simulate_pattern(net, {"p0": 0, "p1": 1, "p2": 0})[out] == 1
        assert simulate_pattern(net, {"p0": 1, "p1": 1, "p2": 0})[out] == 0
        assert simulate_pattern(net, {"p0": 1, "p1": 0, "p2": 1})[out] == 1

    def test_xor2_semantics(self):
        builder = NetworkBuilder()
        a, b = builder.inputs(2)
        out = xor2(builder, a, b)
        builder.outputs(out)
        net = builder.build()
        for va in (0, 1):
            for vb in (0, 1):
                assert (
                    simulate_pattern(net, {"in0": va, "in1": vb})[out]
                    == va ^ vb
                )

    def test_constants(self):
        builder = NetworkBuilder()
        builder.inputs(1)
        zero = builder.const0()
        one = builder.const1()
        builder.outputs(zero, one)
        net = builder.build()
        values = simulate_pattern(net, {})
        assert values[zero] == 0
        assert values[one] == 1


class TestValidation:
    def test_valid_network_passes(self):
        builder = NetworkBuilder()
        a, b = builder.inputs(2)
        builder.outputs(builder.and_(a, b))
        report = validate_network(builder.build())
        assert report.ok

    def test_no_outputs_is_error(self):
        builder = NetworkBuilder()
        a, b = builder.inputs(2)
        builder.and_(a, b)
        report = validate_network(builder.build())
        assert not report.ok

    def test_undriven_output_is_error(self):
        builder = NetworkBuilder()
        builder.inputs(1)
        builder.network.set_outputs(["ghost"])
        assert not validate_network(builder.build()).ok

    def test_undriven_gate_input_is_error(self):
        builder = NetworkBuilder()
        builder.network.add_gate("z", GateType.NOT, ["ghost"])
        builder.network.set_outputs(["z"])
        assert not validate_network(builder.build()).ok

    def test_require_simple_flags_nand(self):
        builder = NetworkBuilder()
        a, b = builder.inputs(2)
        builder.outputs(builder.nand(a, b))
        assert validate_network(builder.build()).ok
        assert not validate_network(builder.build(), require_simple=True).ok

    def test_fanin_bound_flagged(self):
        builder = NetworkBuilder()
        ins = builder.inputs(5)
        builder.outputs(builder.gate(GateType.AND, ins))
        assert not validate_network(builder.build(), max_fanin=3).ok

    def test_dangling_logic_warns(self):
        builder = NetworkBuilder()
        a, b = builder.inputs(2)
        builder.and_(a, b)  # dangling
        builder.outputs(builder.or_(a, b))
        report = validate_network(builder.build())
        assert report.ok
        assert report.warnings

    def test_check_network_raises(self):
        builder = NetworkBuilder()
        builder.inputs(1)
        with pytest.raises(NetworkError):
            check_network(builder.build())
