"""Tests for bit-parallel simulation helpers."""

import random

import pytest

from repro.circuits.build import NetworkBuilder
from repro.circuits.simulate import (
    exhaustive_patterns,
    networks_equivalent,
    pack_patterns,
    random_patterns,
    simulate,
    simulate_pattern,
    unpack_pattern,
)


def xor_net():
    builder = NetworkBuilder()
    a, b = builder.inputs(2)
    builder.xor(a, b, name="z")
    builder.outputs("z")
    return builder.build()


class TestSimulate:
    def test_single_pattern(self):
        net = xor_net()
        assert simulate_pattern(net, {"in0": 1, "in1": 0})["z"] == 1
        assert simulate_pattern(net, {"in0": 1, "in1": 1})["z"] == 0

    def test_parallel_patterns_match_serial(self):
        net = xor_net()
        rng = random.Random(0)
        patterns = [
            {"in0": rng.randrange(2), "in1": rng.randrange(2)}
            for _ in range(20)
        ]
        words = pack_patterns(patterns, net.inputs)
        parallel = simulate(net, words, len(patterns))
        for i, pattern in enumerate(patterns):
            assert (parallel["z"] >> i) & 1 == simulate_pattern(net, pattern)["z"]

    def test_pack_unpack_roundtrip(self):
        patterns = [{"a": 1, "b": 0}, {"a": 0, "b": 1}, {"a": 1, "b": 1}]
        words = pack_patterns(patterns, ["a", "b"])
        for i, pattern in enumerate(patterns):
            assert unpack_pattern(words, i) == pattern

    def test_exhaustive_patterns_cover_space(self):
        words, count = exhaustive_patterns(["a", "b", "c"])
        assert count == 8
        seen = {tuple(unpack_pattern(words, i).values()) for i in range(8)}
        assert len(seen) == 8

    def test_exhaustive_too_many_inputs(self):
        with pytest.raises(ValueError):
            exhaustive_patterns([f"i{k}" for k in range(21)])

    def test_random_patterns_deterministic(self):
        a = random_patterns(["x"], 32, random.Random(7))
        b = random_patterns(["x"], 32, random.Random(7))
        assert a == b


class TestEquivalence:
    def test_equivalent_to_self(self):
        net = xor_net()
        assert networks_equivalent(net, net.copy())

    def test_inequivalent_detected(self):
        left = xor_net()
        builder = NetworkBuilder()
        a, b = builder.inputs(2)
        builder.and_(a, b, name="z")
        builder.outputs("z")
        assert not networks_equivalent(left, builder.build())

    def test_different_interfaces_rejected(self):
        left = xor_net()
        builder = NetworkBuilder()
        (a,) = builder.inputs(1)
        builder.not_(a, name="z")
        builder.outputs("z")
        assert not networks_equivalent(left, builder.build())
