"""Unit tests for gate semantics."""

import pytest

from repro.circuits.gates import (
    GateType,
    evaluate_gate,
    gate_function_name,
    gate_type_from_name,
)


class TestEvaluateGate:
    def test_and_truth_table(self):
        assert evaluate_gate(GateType.AND, [0b1100, 0b1010]) & 0b1111 == 0b1000

    def test_or_truth_table(self):
        assert evaluate_gate(GateType.OR, [0b1100, 0b1010]) & 0b1111 == 0b1110

    def test_nand_truth_table(self):
        assert evaluate_gate(GateType.NAND, [0b1100, 0b1010]) & 0b1111 == 0b0111

    def test_nor_truth_table(self):
        assert evaluate_gate(GateType.NOR, [0b1100, 0b1010]) & 0b1111 == 0b0001

    def test_xor_truth_table(self):
        assert evaluate_gate(GateType.XOR, [0b1100, 0b1010]) & 0b1111 == 0b0110

    def test_xnor_truth_table(self):
        assert evaluate_gate(GateType.XNOR, [0b1100, 0b1010]) & 0b1111 == 0b1001

    def test_not(self):
        assert evaluate_gate(GateType.NOT, [0b10]) & 0b11 == 0b01

    def test_buf(self):
        assert evaluate_gate(GateType.BUF, [0b10]) == 0b10

    def test_const0(self):
        assert evaluate_gate(GateType.CONST0, []) == 0

    def test_const1_is_all_ones(self):
        assert evaluate_gate(GateType.CONST1, []) & 0xFF == 0xFF

    def test_three_input_and(self):
        assert evaluate_gate(GateType.AND, [0b1111, 0b1100, 0b1010]) & 0b1111 == 0b1000

    def test_three_input_xor_parity(self):
        assert (
            evaluate_gate(GateType.XOR, [0b1111, 0b1100, 0b1010]) & 0b1111 == 0b1001
        )

    def test_input_gate_rejects_evaluation(self):
        with pytest.raises(ValueError):
            evaluate_gate(GateType.INPUT, [])

    def test_const_rejects_inputs(self):
        with pytest.raises(ValueError):
            evaluate_gate(GateType.CONST0, [1])

    def test_not_rejects_arity_two(self):
        with pytest.raises(ValueError):
            evaluate_gate(GateType.NOT, [1, 0])

    def test_and_rejects_empty(self):
        with pytest.raises(ValueError):
            evaluate_gate(GateType.AND, [])


class TestGateTypeProperties:
    def test_sources(self):
        assert GateType.INPUT.is_source
        assert GateType.CONST0.is_source
        assert GateType.CONST1.is_source
        assert not GateType.AND.is_source

    def test_simple_alphabet(self):
        assert GateType.AND.is_simple
        assert GateType.OR.is_simple
        assert GateType.NOT.is_simple
        assert GateType.BUF.is_simple
        assert not GateType.NAND.is_simple
        assert not GateType.XOR.is_simple

    def test_inverting(self):
        assert GateType.NAND.inverting
        assert GateType.NOR.inverting
        assert GateType.NOT.inverting
        assert GateType.XNOR.inverting
        assert not GateType.AND.inverting


class TestNames:
    def test_roundtrip_names(self):
        for gate_type in (
            GateType.AND,
            GateType.OR,
            GateType.NAND,
            GateType.NOR,
            GateType.XOR,
            GateType.XNOR,
            GateType.NOT,
            GateType.BUF,
        ):
            assert gate_type_from_name(gate_function_name(gate_type)) in (
                gate_type,
            )

    def test_inv_alias(self):
        assert gate_type_from_name("INV") is GateType.NOT

    def test_buff_alias(self):
        assert gate_type_from_name("BUFF") is GateType.BUF

    def test_case_insensitive(self):
        assert gate_type_from_name("nand") is GateType.NAND

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            gate_type_from_name("MAJ3")
