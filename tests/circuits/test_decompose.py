"""Tests for technology decomposition (the SIS tech_decomp stand-in)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.build import NetworkBuilder
from repro.circuits.decompose import is_decomposed, tech_decompose
from repro.circuits.gates import GateType
from repro.circuits.simulate import networks_equivalent
from tests.conftest import make_random_network


class TestDecomposeBasics:
    def test_nand_becomes_and_not(self):
        builder = NetworkBuilder()
        a, b = builder.inputs(2)
        builder.nand(a, b, name="z")
        builder.outputs("z")
        result = tech_decompose(builder.build())
        assert result.gate("z").gate_type is GateType.NOT
        assert is_decomposed(result)

    def test_wide_and_split(self):
        builder = NetworkBuilder()
        ins = builder.inputs(9)
        builder.gate(GateType.AND, ins, name="z")
        builder.outputs("z")
        result = tech_decompose(builder.build(), max_fanin=3)
        assert result.max_fanin() <= 3
        assert is_decomposed(result, 3)

    def test_xor_expansion(self):
        builder = NetworkBuilder()
        a, b, c = builder.inputs(3)
        builder.xor(a, b, c, name="z")
        builder.outputs("z")
        original = builder.build()
        result = tech_decompose(original)
        assert is_decomposed(result)
        assert networks_equivalent(original, result)

    def test_xnor_expansion(self):
        builder = NetworkBuilder()
        a, b = builder.inputs(2)
        builder.xnor(a, b, name="z")
        builder.outputs("z")
        original = builder.build()
        result = tech_decompose(original)
        assert is_decomposed(result)
        assert networks_equivalent(original, result)

    def test_preserves_net_names(self):
        builder = NetworkBuilder()
        a, b = builder.inputs(2)
        builder.nor(a, b, name="keepme")
        builder.outputs("keepme")
        result = tech_decompose(builder.build())
        assert result.has_net("keepme")
        assert result.outputs == ("keepme",)

    def test_constants_pass_through(self):
        builder = NetworkBuilder()
        builder.inputs(1)
        one = builder.const1(name="one")
        builder.outputs(one)
        result = tech_decompose(builder.build())
        assert result.gate("one").gate_type is GateType.CONST1

    def test_max_fanin_too_small_raises(self):
        builder = NetworkBuilder()
        a, b = builder.inputs(2)
        builder.and_(a, b, name="z")
        builder.outputs("z")
        with pytest.raises(ValueError):
            tech_decompose(builder.build(), max_fanin=1)

    def test_idempotent(self):
        net = make_random_network(3)
        once = tech_decompose(net)
        twice = tech_decompose(once)
        assert networks_equivalent(once, twice)

    def test_output_is_insertion_topological(self):
        net = make_random_network(5)
        assert tech_decompose(net).insertion_is_topological()


class TestDecomposeEquivalence:
    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_random_networks_equivalent(self, seed):
        """Decomposition never changes circuit function."""
        original = make_random_network(seed, num_inputs=4, num_gates=10)
        decomposed = tech_decompose(original)
        assert is_decomposed(decomposed)
        assert networks_equivalent(original, decomposed)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000), max_fanin=st.integers(2, 4))
    def test_fanin_bound_respected(self, seed, max_fanin):
        original = make_random_network(seed, num_inputs=5, num_gates=12)
        decomposed = tech_decompose(original, max_fanin=max_fanin)
        assert decomposed.max_fanin() <= max_fanin
        assert networks_equivalent(original, decomposed)
