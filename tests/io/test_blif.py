"""Tests for the BLIF reader/writer."""

import pytest

from repro.circuits.gates import GateType
from repro.circuits.simulate import networks_equivalent, simulate_pattern
from repro.io.blif import (
    BlifFormatError,
    dump_blif,
    dumps_blif,
    load_blif,
    loads_blif,
)
from tests.conftest import make_random_network

SIMPLE = """\
.model demo
.inputs a b c
.outputs z
.names a b t
11 1
.names t c z
1- 1
-1 1
.end
"""


class TestParse:
    def test_simple_model(self):
        net = loads_blif(SIMPLE)
        assert net.name == "demo"
        assert net.inputs == ("a", "b", "c")
        assert simulate_pattern(net, {"a": 1, "b": 1, "c": 0})["z"] == 1
        assert simulate_pattern(net, {"a": 0, "b": 1, "c": 0})["z"] == 0

    def test_inverted_literals_in_cover(self):
        text = ".model m\n.inputs a b\n.outputs z\n.names a b z\n01 1\n.end\n"
        net = loads_blif(text)
        assert simulate_pattern(net, {"a": 0, "b": 1})["z"] == 1
        assert simulate_pattern(net, {"a": 1, "b": 1})["z"] == 0

    def test_off_set_cover(self):
        # z = 0 exactly when a=1,b=1 → z = NAND(a,b).
        text = ".model m\n.inputs a b\n.outputs z\n.names a b z\n11 0\n.end\n"
        net = loads_blif(text)
        assert simulate_pattern(net, {"a": 1, "b": 1})["z"] == 0
        assert simulate_pattern(net, {"a": 0, "b": 1})["z"] == 1

    def test_constant_one(self):
        text = ".model m\n.inputs a\n.outputs z\n.names z\n1\n.end\n"
        net = loads_blif(text)
        assert simulate_pattern(net, {"a": 0})["z"] == 1

    def test_constant_zero(self):
        text = ".model m\n.inputs a\n.outputs z\n.names z\n.end\n"
        net = loads_blif(text)
        assert simulate_pattern(net, {"a": 0})["z"] == 0

    def test_continuation_lines(self):
        text = ".model m\n.inputs a \\\nb\n.outputs z\n.names a b z\n11 1\n.end\n"
        net = loads_blif(text)
        assert net.inputs == ("a", "b")

    def test_latch_rejected(self):
        text = ".model m\n.inputs a\n.outputs z\n.latch a z re clk 0\n.end\n"
        with pytest.raises(BlifFormatError):
            loads_blif(text)

    def test_row_width_mismatch_rejected(self):
        text = ".model m\n.inputs a b\n.outputs z\n.names a b z\n111 1\n.end\n"
        with pytest.raises(BlifFormatError):
            loads_blif(text)

    def test_cover_row_outside_names_rejected(self):
        with pytest.raises(BlifFormatError):
            loads_blif(".model m\n11 1\n.end\n")


class TestRoundTrip:
    def test_random_roundtrip(self):
        for seed in range(5):
            net = make_random_network(seed, num_inputs=4, num_gates=8)
            again = loads_blif(dumps_blif(net))
            assert networks_equivalent(net, again)

    def test_gate_alphabet_roundtrip(self):
        from repro.circuits.build import NetworkBuilder

        builder = NetworkBuilder("alpha")
        a, b, c = builder.inputs(3)
        builder.outputs(
            builder.and_(a, b, name="g_and"),
            builder.or_(b, c, name="g_or"),
            builder.nand(a, c, name="g_nand"),
            builder.nor(a, b, name="g_nor"),
            builder.xor(a, b, name="g_xor"),
            builder.xnor(b, c, name="g_xnor"),
            builder.not_(a, name="g_not"),
            builder.buf(c, name="g_buf"),
        )
        net = builder.build()
        again = loads_blif(dumps_blif(net))
        assert networks_equivalent(net, again)

    def test_file_roundtrip(self, tmp_path):
        net = make_random_network(1)
        path = tmp_path / "x.blif"
        dump_blif(net, path)
        assert networks_equivalent(net, load_blif(path))
