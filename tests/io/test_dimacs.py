"""Tests for DIMACS CNF I/O."""

import pytest

from repro.io.dimacs import (
    DimacsFormatError,
    dump_dimacs,
    dumps_dimacs,
    load_dimacs,
    loads_dimacs,
)
from repro.sat.cnf import formula_from_ints
from repro.sat.dpll import solve_dpll


class TestWrite:
    def test_header_counts(self):
        formula = formula_from_ints([[1, -2], [2, 3]])
        text, index = dumps_dimacs(formula)
        assert "p cnf 3 2" in text
        assert set(index.values()) == {1, 2, 3}

    def test_name_comments_emitted(self):
        formula = formula_from_ints([[1]])
        text, _ = dumps_dimacs(formula)
        assert "c var 1 = x1" in text


class TestRead:
    def test_basic(self):
        formula = loads_dimacs("p cnf 2 2\n1 -2 0\n2 0\n")
        assert formula.num_clauses() == 2
        assert solve_dpll(formula).is_sat

    def test_names_recovered(self):
        formula = loads_dimacs("c var 1 = alpha\np cnf 1 1\n1 0\n")
        assert formula.variables == ("alpha",)

    def test_clause_without_trailing_zero(self):
        formula = loads_dimacs("p cnf 2 1\n1 2")
        assert formula.num_clauses() == 1

    def test_bad_header(self):
        with pytest.raises(DimacsFormatError):
            loads_dimacs("p dnf 2 1\n1 0\n")

    def test_bad_literal(self):
        with pytest.raises(DimacsFormatError):
            loads_dimacs("p cnf 1 1\nx 0\n")

    def test_too_many_clauses_rejected(self):
        with pytest.raises(DimacsFormatError):
            loads_dimacs("p cnf 2 1\n1 0\n2 0\n")


class TestRoundTrip:
    def test_semantic_roundtrip(self):
        formula = formula_from_ints([[1, -2], [2, 3], [-1, -3], [2]])
        text, _ = dumps_dimacs(formula)
        again = loads_dimacs(text)
        assert again == formula

    def test_file_roundtrip(self, tmp_path):
        formula = formula_from_ints([[1, 2], [-1]])
        path = tmp_path / "f.cnf"
        dump_dimacs(formula, path)
        assert load_dimacs(path) == formula
