"""Tests for the ISCAS85 .bench reader/writer."""

import pytest

from repro.circuits.gates import GateType
from repro.circuits.simulate import networks_equivalent
from repro.gen.benchmarks import C17_BENCH
from repro.io.bench import (
    BenchFormatError,
    dump_bench,
    dumps_bench,
    load_bench,
    loads_bench,
)
from tests.conftest import make_random_network


class TestParse:
    def test_c17_parses(self):
        net = loads_bench(C17_BENCH, name="c17")
        assert len(net.inputs) == 5
        assert len(net.outputs) == 2
        assert net.num_gates() == 6
        assert net.gate("22").gate_type is GateType.NAND

    def test_comments_and_blank_lines_ignored(self):
        text = "# header\n\nINPUT(a)\n# mid\nOUTPUT(z)\nz = NOT(a)\n"
        net = loads_bench(text)
        assert net.gate("z").gate_type is GateType.NOT

    def test_case_insensitive_keywords(self):
        text = "input(a)\noutput(z)\nz = not(a)\n"
        net = loads_bench(text)
        assert net.inputs == ("a",)

    def test_forward_references_allowed(self):
        text = "INPUT(a)\nOUTPUT(z)\nz = NOT(w)\nw = BUF(a)\n"
        net = loads_bench(text)
        assert net.gate("z").inputs == ("w",)
        net.topological_order()  # must not raise

    def test_constants_extension(self):
        text = "OUTPUT(z)\nz = CONST1()\n"
        net = loads_bench(text)
        assert net.gate("z").gate_type is GateType.CONST1

    def test_bad_line_raises(self):
        with pytest.raises(BenchFormatError):
            loads_bench("INPUT(a)\nthis is not bench\n")

    def test_unknown_gate_raises(self):
        with pytest.raises(BenchFormatError):
            loads_bench("INPUT(a)\nOUTPUT(z)\nz = MAJ(a, a, a)\n")


class TestRoundTrip:
    def test_c17_roundtrip_equivalent(self):
        net = loads_bench(C17_BENCH, name="c17")
        again = loads_bench(dumps_bench(net), name="c17")
        assert networks_equivalent(net, again)

    def test_random_roundtrip(self):
        for seed in range(5):
            net = make_random_network(seed, num_inputs=4, num_gates=8)
            again = loads_bench(dumps_bench(net))
            assert networks_equivalent(net, again)

    def test_file_roundtrip(self, tmp_path):
        net = loads_bench(C17_BENCH, name="c17")
        path = tmp_path / "c17.bench"
        dump_bench(net, path)
        again = load_bench(path)
        assert networks_equivalent(net, again)
        assert again.name == "c17"
