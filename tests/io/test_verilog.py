"""Tests for the structural Verilog reader/writer."""

import pytest

from repro.circuits.gates import GateType
from repro.circuits.simulate import networks_equivalent
from repro.io.verilog import (
    VerilogFormatError,
    dump_verilog,
    dumps_verilog,
    load_verilog,
    loads_verilog,
)
from tests.conftest import make_random_network

C17_VERILOG = """\
// ISCAS85 c17 in structural Verilog
module c17 (N1, N2, N3, N6, N7, N22, N23);
  input N1, N2, N3, N6, N7;
  output N22, N23;
  wire N10, N11, N16, N19;
  nand g1 (N10, N1, N3);
  nand g2 (N11, N3, N6);
  nand g3 (N16, N2, N11);
  nand g4 (N19, N11, N7);
  nand g5 (N22, N10, N16);
  nand g6 (N23, N16, N19);
endmodule
"""


class TestParse:
    def test_c17(self):
        net = loads_verilog(C17_VERILOG)
        assert net.name == "c17"
        assert len(net.inputs) == 5
        assert net.outputs == ("N22", "N23")
        assert net.gate("N22").gate_type is GateType.NAND
        net.topological_order()

    def test_matches_bench_c17(self):
        from repro.gen.benchmarks import c17 as bench_c17

        verilog_net = loads_verilog(C17_VERILOG).renamed("")
        bench_net = bench_c17()
        # Same function modulo net naming: compare by simulation after
        # aligning names (N1 ↔ 1 etc.).
        rename = {f"N{n}": n for n in ("1", "2", "3", "6", "7", "22", "23")}
        values_match = True
        import itertools

        from repro.circuits.simulate import simulate_pattern

        for bits in itertools.product((0, 1), repeat=5):
            v_pattern = dict(zip(("N1", "N2", "N3", "N6", "N7"), bits))
            b_pattern = dict(zip(("1", "2", "3", "6", "7"), bits))
            v_out = simulate_pattern(loads_verilog(C17_VERILOG), v_pattern)
            b_out = simulate_pattern(bench_net, b_pattern)
            if (v_out["N22"], v_out["N23"]) != (b_out["22"], b_out["23"]):
                values_match = False
                break
        assert values_match

    def test_comments_stripped(self):
        text = "/* block */ module m (a, z); // line\n input a; output z;\n buf g (z, a);\n endmodule"
        net = loads_verilog(text)
        assert net.gate("z").gate_type is GateType.BUF

    def test_constant_assign(self):
        text = "module m (z); output z; assign z = 1'b1; endmodule"
        net = loads_verilog(text)
        assert net.gate("z").gate_type is GateType.CONST1

    def test_missing_module(self):
        with pytest.raises(VerilogFormatError):
            loads_verilog("wire x;")

    def test_missing_endmodule(self):
        with pytest.raises(VerilogFormatError):
            loads_verilog("module m (a); input a;")

    def test_behavioural_rejected(self):
        text = "module m (a); input a; always @(a) begin end endmodule"
        with pytest.raises(VerilogFormatError):
            loads_verilog(text)

    def test_vectors_rejected(self):
        text = "module m (a); input [3:0] a; endmodule"
        with pytest.raises(VerilogFormatError):
            loads_verilog(text)

    def test_unknown_primitive_rejected(self):
        text = "module m (a, z); input a; output z; mux2 g (z, a, a); endmodule"
        with pytest.raises(VerilogFormatError):
            loads_verilog(text)


class TestRoundTrip:
    def test_c17_roundtrip(self):
        net = loads_verilog(C17_VERILOG)
        again = loads_verilog(dumps_verilog(net))
        assert networks_equivalent(net, again)

    def test_random_roundtrip(self):
        for seed in range(5):
            net = make_random_network(seed, num_inputs=4, num_gates=8)
            again = loads_verilog(dumps_verilog(net))
            assert networks_equivalent(net, again)

    def test_file_roundtrip(self, tmp_path):
        net = make_random_network(2)
        path = tmp_path / "m.v"
        dump_verilog(net, path)
        assert networks_equivalent(net, load_verilog(path))

    def test_constants_roundtrip(self):
        from repro.circuits.build import NetworkBuilder

        builder = NetworkBuilder("consts")
        a = builder.input("a")
        one = builder.const1(name="one")
        builder.outputs(builder.and_(a, one, name="z"))
        net = builder.build()
        assert networks_equivalent(net, loads_verilog(dumps_verilog(net)))
