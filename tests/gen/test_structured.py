"""Functional correctness tests for every structured generator."""

import random

import pytest

from repro.circuits.simulate import simulate_pattern
from repro.circuits.validate import validate_network
from repro.gen.structured import (
    alu_slice,
    array_multiplier,
    binary_tree_circuit,
    carry_lookahead_adder,
    cellular_array_1d,
    cellular_array_2d,
    comparator,
    decoder,
    mux_tree,
    parity_tree,
    ripple_carry_adder,
    tmr_voted_adder,
)

RNG = random.Random(99)


def adder_pattern(width, a, b, cin):
    pattern = {f"a{i}": (a >> i) & 1 for i in range(width)}
    pattern.update({f"b{i}": (b >> i) & 1 for i in range(width)})
    pattern["cin"] = cin
    return pattern


class TestAdders:
    @pytest.mark.parametrize("maker", [ripple_carry_adder, carry_lookahead_adder])
    @pytest.mark.parametrize("width", [1, 3, 5])
    def test_addition_correct(self, maker, width):
        if maker is carry_lookahead_adder and width == 1:
            width = 2
        net = maker(width)
        for _ in range(20):
            a = RNG.randrange(1 << width)
            b = RNG.randrange(1 << width)
            cin = RNG.randrange(2)
            values = simulate_pattern(net, adder_pattern(width, a, b, cin))
            total = sum(values[f"s{i}"] << i for i in range(width))
            total += values[f"c{width}"] << width
            assert total == a + b + cin

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            ripple_carry_adder(0)
        with pytest.raises(ValueError):
            carry_lookahead_adder(4, group=1)

    @pytest.mark.parametrize("maker", [ripple_carry_adder, carry_lookahead_adder])
    def test_structurally_valid(self, maker):
        assert validate_network(maker(4)).ok


class TestTmrVotedAdder:
    @pytest.mark.parametrize("width", [1, 3, 5])
    def test_addition_correct(self, width):
        net = tmr_voted_adder(width)
        for _ in range(20):
            a = RNG.randrange(1 << width)
            b = RNG.randrange(1 << width)
            cin = RNG.randrange(2)
            values = simulate_pattern(net, adder_pattern(width, a, b, cin))
            total = sum(values[f"s{i}"] << i for i in range(width))
            total += values[f"v{width - 1}"] << width
            assert total == a + b + cin

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            tmr_voted_adder(0)

    def test_structurally_valid(self):
        assert validate_network(tmr_voted_adder(4)).ok


class TestMultiplier:
    @pytest.mark.parametrize("width", [2, 3, 4])
    def test_product_correct(self, width):
        net = array_multiplier(width)
        for _ in range(25):
            a = RNG.randrange(1 << width)
            b = RNG.randrange(1 << width)
            pattern = {f"a{i}": (a >> i) & 1 for i in range(width)}
            pattern.update({f"b{i}": (b >> i) & 1 for i in range(width)})
            values = simulate_pattern(net, pattern)
            product = sum(
                values[o] << i for i, o in enumerate(net.outputs)
            )
            assert product == a * b, (a, b)

    def test_minimum_width(self):
        with pytest.raises(ValueError):
            array_multiplier(1)


class TestDecoderMux:
    def test_decoder_one_hot(self):
        net = decoder(3)
        for value in range(8):
            pattern = {f"s{i}": (value >> i) & 1 for i in range(3)}
            values = simulate_pattern(net, pattern)
            for line in range(8):
                assert values[f"d{line}"] == (1 if line == value else 0)

    def test_decoder_limits(self):
        with pytest.raises(ValueError):
            decoder(0)
        with pytest.raises(ValueError):
            decoder(9)

    def test_mux_selects(self):
        net = mux_tree(3)
        data = {f"d{i}": RNG.randrange(2) for i in range(8)}
        for select in range(8):
            pattern = dict(data)
            pattern.update({f"s{i}": (select >> i) & 1 for i in range(3)})
            values = simulate_pattern(net, pattern)
            assert values[net.outputs[0]] == data[f"d{select}"]


class TestParityComparator:
    @pytest.mark.parametrize("width", [2, 5, 9])
    def test_parity(self, width):
        net = parity_tree(width)
        for _ in range(15):
            bits = [RNG.randrange(2) for _ in range(width)]
            pattern = {f"x{i}": bits[i] for i in range(width)}
            values = simulate_pattern(net, pattern)
            assert values[net.outputs[0]] == sum(bits) % 2

    def test_parity_arity3(self):
        net = parity_tree(9, arity=3)
        bits = [1, 0, 1, 1, 0, 0, 1, 0, 1]
        pattern = {f"x{i}": bits[i] for i in range(9)}
        assert simulate_pattern(net, pattern)[net.outputs[0]] == sum(bits) % 2

    @pytest.mark.parametrize("width", [1, 4])
    def test_comparator(self, width):
        net = comparator(width)
        for _ in range(25):
            a = RNG.randrange(1 << width)
            b = RNG.randrange(1 << width)
            pattern = {f"a{i}": (a >> i) & 1 for i in range(width)}
            pattern.update({f"b{i}": (b >> i) & 1 for i in range(width)})
            values = simulate_pattern(net, pattern)
            assert values["equal"] == (1 if a == b else 0)
            assert values["greater"] == (1 if a > b else 0)


class TestAlu:
    def test_all_operations(self):
        width = 4
        net = alu_slice(width)
        ops = {0: lambda a, b: a & b, 1: lambda a, b: a | b,
               2: lambda a, b: a ^ b, 3: lambda a, b: (a + b) % (1 << width)}
        for opcode, fn in ops.items():
            for _ in range(10):
                a = RNG.randrange(1 << width)
                b = RNG.randrange(1 << width)
                pattern = {f"a{i}": (a >> i) & 1 for i in range(width)}
                pattern.update({f"b{i}": (b >> i) & 1 for i in range(width)})
                pattern["op0"] = opcode & 1
                pattern["op1"] = (opcode >> 1) & 1
                values = simulate_pattern(net, pattern)
                result = sum(values[f"y{i}"] << i for i in range(width))
                assert result == fn(a, b), (opcode, a, b)
                if opcode == 3:
                    assert values["cout"] == ((a + b) >> width) & 1


class TestCellularArraysAndTrees:
    def test_cellular_1d_valid(self):
        net = cellular_array_1d(6)
        assert validate_network(net).ok
        assert len(net.outputs) == 7

    def test_cellular_2d_valid(self):
        net = cellular_array_2d(3, 4)
        assert validate_network(net).ok

    def test_tree_structure(self):
        net = binary_tree_circuit(4)
        assert len(net.inputs) == 16
        assert len(net.outputs) == 1
        assert net.depth() == 4

    def test_bad_params(self):
        with pytest.raises(ValueError):
            cellular_array_1d(0)
        with pytest.raises(ValueError):
            cellular_array_2d(0, 3)
        with pytest.raises(ValueError):
            binary_tree_circuit(0)
