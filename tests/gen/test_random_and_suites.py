"""Tests for the random generator and the benchmark suite registry."""

import math

import pytest

from repro.circuits.decompose import is_decomposed, tech_decompose
from repro.circuits.simulate import networks_equivalent
from repro.circuits.validate import validate_network
from repro.gen.benchmarks import (
    C17_BENCH,
    c17,
    circuit_names,
    iter_suite,
    load_circuit,
    suite_names,
)
from repro.gen.random_circuits import (
    RandomCircuitSpec,
    benchmark_like_suite,
    random_circuit,
)


class TestRandomCircuit:
    def test_deterministic(self):
        spec = RandomCircuitSpec(num_inputs=6, num_gates=30, seed=4)
        a = random_circuit(spec)
        b = random_circuit(spec)
        assert list(a.nets) == list(b.nets)
        assert networks_equivalent(a, b)

    def test_structurally_valid(self):
        for seed in range(6):
            spec = RandomCircuitSpec(
                num_inputs=8, num_gates=40, num_outputs=4, seed=seed
            )
            net = random_circuit(spec)
            report = validate_network(net)
            assert report.ok, report.errors
            assert not report.warnings  # no dangling logic by construction

    def test_gate_budget_roughly_met(self):
        spec = RandomCircuitSpec(num_inputs=10, num_gates=100, num_outputs=5, seed=1)
        net = random_circuit(spec)
        assert 100 <= net.num_gates() <= 160

    def test_fanin_bound(self):
        spec = RandomCircuitSpec(num_inputs=6, num_gates=50, max_fanin=2, seed=2)
        assert random_circuit(spec).max_fanin() <= 2

    def test_zero_reconvergence_gives_forest(self):
        spec = RandomCircuitSpec(
            num_inputs=8, num_gates=40, num_outputs=3,
            reconvergence=0.0, seed=3,
        )
        net = random_circuit(spec)
        # No gate output is read twice (PIs may still fan out).
        for net_name in net.nets:
            if net.gate(net_name).gate_type.is_source:
                continue
            assert len(net.fanouts(net_name)) <= 1

    def test_bad_spec_rejected(self):
        with pytest.raises(ValueError):
            random_circuit(RandomCircuitSpec(num_inputs=0, num_gates=5))
        with pytest.raises(ValueError):
            random_circuit(RandomCircuitSpec(num_inputs=2, num_gates=5, max_fanin=1))
        with pytest.raises(ValueError):
            random_circuit(
                RandomCircuitSpec(num_inputs=2, num_gates=5, reconvergence=2.0)
            )

    def test_benchmark_like_suite_sizes(self):
        suite = benchmark_like_suite([50, 150], seed=0)
        assert len(suite) == 2
        assert suite[0].num_gates() < suite[1].num_gates()


class TestSuiteRegistry:
    def test_suite_names(self):
        assert suite_names() == ["iscas", "mcnc"]

    def test_unknown_suite(self):
        with pytest.raises(KeyError):
            circuit_names("nonexistent")

    def test_unknown_circuit(self):
        with pytest.raises(KeyError):
            load_circuit("mcnc", "nonexistent")

    def test_c17_verbatim(self):
        net = c17()
        assert net.num_gates() == 6
        assert "NAND" in C17_BENCH

    @pytest.mark.parametrize("suite", ["mcnc", "iscas"])
    def test_all_circuits_load_decomposed(self, suite):
        for name, net in iter_suite(suite):
            assert is_decomposed(net, 3), name
            report = validate_network(net, require_simple=True, max_fanin=3)
            assert report.ok, (name, report.errors)

    def test_decomposed_flag(self):
        raw = load_circuit("iscas", "c17", decomposed=False)
        cooked = load_circuit("iscas", "c17", decomposed=True)
        assert not is_decomposed(raw, 3)  # NANDs present
        assert is_decomposed(cooked, 3)
        assert networks_equivalent(tech_decompose(raw), cooked)

    def test_suites_have_log_like_widths(self):
        """The headline property the suites exist for: cut-width stays
        a small multiple of log2(size) across the board (multipliers
        excluded, as in the paper)."""
        from repro.core.bounds import fault_width_samples

        for suite in ("mcnc", "iscas"):
            skip = {"mult4", "mult6", "mult8"}
            for name, net in iter_suite(suite):
                if name in skip:
                    continue
                samples = fault_width_samples(net, max_faults=3)
                for sample in samples:
                    if sample.sub_circuit_size >= 8:
                        ratio = sample.cutwidth / math.log2(
                            sample.sub_circuit_size
                        )
                        assert ratio <= 6.0, (suite, name, sample)
