"""Tests for the additional structured families (shifter, encoder, Wallace)."""

import random

import pytest

from repro.apps.equivalence import check_equivalence
from repro.circuits.simulate import simulate_pattern
from repro.circuits.validate import validate_network
from repro.gen.structured import (
    array_multiplier,
    barrel_shifter,
    priority_encoder,
    wallace_multiplier,
)

RNG = random.Random(4)


class TestBarrelShifter:
    @pytest.mark.parametrize("log2", [1, 2, 3])
    def test_rotation_semantics(self, log2):
        width = 1 << log2
        net = barrel_shifter(log2)
        mask = (1 << width) - 1
        for _ in range(20):
            data = RNG.randrange(1 << width)
            shift = RNG.randrange(width)
            pattern = {f"d{i}": (data >> i) & 1 for i in range(width)}
            pattern.update(
                {f"s{k}": (shift >> k) & 1 for k in range(log2)}
            )
            values = simulate_pattern(net, pattern)
            out = sum(values[o] << i for i, o in enumerate(net.outputs))
            expected = ((data << shift) | (data >> (width - shift))) & mask if shift else data
            assert out == expected

    def test_limits(self):
        with pytest.raises(ValueError):
            barrel_shifter(0)
        with pytest.raises(ValueError):
            barrel_shifter(6)

    def test_valid(self):
        assert validate_network(barrel_shifter(2)).ok


class TestPriorityEncoder:
    @pytest.mark.parametrize("width", [2, 5, 9])
    def test_grant_semantics(self, width):
        net = priority_encoder(width)
        for _ in range(25):
            requests = RNG.randrange(1 << width)
            pattern = {f"r{i}": (requests >> i) & 1 for i in range(width)}
            values = simulate_pattern(net, pattern)
            grants = [values[f"g{i}"] for i in range(width)]
            if requests == 0:
                assert sum(grants) == 0
                assert values["valid"] == 0
            else:
                lowest = (requests & -requests).bit_length() - 1
                assert grants[lowest] == 1
                assert sum(grants) == 1
                assert values["valid"] == 1

    def test_limits(self):
        with pytest.raises(ValueError):
            priority_encoder(1)


class TestWallaceMultiplier:
    @pytest.mark.parametrize("width", [2, 3, 4])
    def test_product(self, width):
        net = wallace_multiplier(width)
        for _ in range(25):
            a = RNG.randrange(1 << width)
            b = RNG.randrange(1 << width)
            pattern = {f"a{i}": (a >> i) & 1 for i in range(width)}
            pattern.update({f"b{i}": (b >> i) & 1 for i in range(width)})
            values = simulate_pattern(net, pattern)
            product = sum(values[o] << i for i, o in enumerate(net.outputs))
            assert product == a * b

    def test_limits(self):
        with pytest.raises(ValueError):
            wallace_multiplier(1)
        with pytest.raises(ValueError):
            wallace_multiplier(7)

    def test_equivalent_to_array_multiplier(self):
        """Two very different multiplier topologies, one function —
        proven by the CEC application, not just sampled."""
        wallace = wallace_multiplier(3)
        array = array_multiplier(3)
        assert set(wallace.inputs) == set(array.inputs)
        assert len(wallace.outputs) == len(array.outputs)
        # Align output names: both emit LSB-first product bits.
        array_aligned = array.copy()
        # Build rename-free comparison via a fresh interface mapping:
        # simulate-based equivalence needs identical output names, so
        # compare through renamed copies.
        from repro.circuits.network import Network
        from repro.circuits.gates import GateType

        def with_product_outputs(net, prefix):
            dup = Network(name=net.name + "_std")
            for n in net.topological_order():
                g = net.gate(n)
                if g.gate_type is GateType.INPUT:
                    dup.add_input(n)
                else:
                    dup.add_gate(n, g.gate_type, g.inputs)
            for i, out in enumerate(net.outputs):
                dup.add_gate(f"prod{i}", GateType.BUF, [out])
            dup.set_outputs([f"prod{i}" for i in range(len(net.outputs))])
            return dup

        result = check_equivalence(
            with_product_outputs(wallace, "w"),
            with_product_outputs(array_aligned, "a"),
        )
        assert result.equivalent
