"""Reproduction checks for the paper's running example (Figures 4-7)."""

from repro.experiments.example_circuit import (
    EXAMPLE_FAULT,
    ORDERING_A,
    ORDERING_B,
    example_circuit,
    run_example,
)


class TestFigure4Circuit:
    def test_structure(self):
        net = example_circuit()
        assert set(net.inputs) == set("abcde")
        assert net.outputs == ("i",)
        assert net.gate("h").inputs == ("a", "f")
        assert net.gate("i").inputs == ("h", "g")

    def test_orderings_are_permutations(self):
        net = example_circuit()
        assert sorted(ORDERING_A) == sorted(net.nets)
        assert sorted(ORDERING_B) == sorted(net.nets)


class TestReport:
    def setup_method(self):
        self.report = run_example()

    def test_figure6_ordering_a_width(self):
        """Figure 6: ordering A achieves cut-width 3."""
        assert self.report.width_a == 3

    def test_figure6_ordering_b_worse(self):
        """The naive ordering B has strictly larger width."""
        assert self.report.width_b > self.report.width_a

    def test_figure5_search_is_tiny(self):
        """The backtracking tree under A is small and finds SAT."""
        assert self.report.solver_sat
        assert self.report.solver_nodes <= 40

    def test_theorem_4_1_bound_holds(self):
        assert self.report.solver_nodes <= self.report.theorem_4_1_rhs

    def test_lemma_4_1_dcsf_counts_bounded(self):
        """DCSF counts per depth stay ≤ 2^(2·k_fo·W(A)) = 2^6."""
        assert all(count <= 64 for count in self.report.dcsf_per_depth)
        # Under ordering A the counts are in fact tiny (≤ 4).
        assert max(self.report.dcsf_per_depth) <= 4

    def test_figure7_miter_width(self):
        """Figure 7: ATPG circuit for f/sa1 reaches width 4 ≤ 2W+2."""
        assert EXAMPLE_FAULT.net == "f"
        assert self.report.miter_width == 4
        assert self.report.miter_width <= self.report.lemma_4_2_rhs
        assert self.report.lemma_4_2_rhs == 8

    def test_render_mentions_key_numbers(self):
        text = self.report.render()
        assert "W(C, A) = 3" in text
        assert "2W+2 = 8" in text
