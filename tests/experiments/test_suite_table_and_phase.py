"""Smoke tests for the suite-table and phase-transition experiments."""

from repro.experiments.phase_transition import run_phase_transition
from repro.experiments.suite_table import run_suite_table


class TestSuiteTable:
    def test_small_run(self):
        report = run_suite_table("mcnc", max_faults_per_circuit=4)
        assert len(report.rows) >= 10
        text = report.render()
        assert "W(C,H)" in text
        for row in report.rows:
            assert row.faults <= 4
            assert 0.0 <= row.coverage <= 1.0
            assert row.gates > 0


class TestPhaseTransition:
    def test_small_run(self):
        report = run_phase_transition(
            local_levels=[0.0],
            global_levels=[0.0, 0.6],
            sizes=[80, 200],
            faults_per_circuit=3,
            seeds=(5,),
        )
        assert len(report.local_sweep) == 1
        assert len(report.global_sweep) == 2
        text = report.render()
        assert "global" in text
        for row in report.local_sweep + report.global_sweep:
            assert row.points
