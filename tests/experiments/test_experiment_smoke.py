"""Smoke tests for the figure-level experiment drivers (scaled down).

Full-scale runs live in benchmarks/; these verify the pipelines and the
direction of each headline claim quickly.
"""

from repro.experiments.ablations import run_ablations
from repro.experiments.bdd_comparison import run_bdd_comparison
from repro.experiments.fig1_tegus import run_fig1
from repro.experiments.fig8_cutwidth_study import run_fig8
from repro.experiments.fig_generated import run_generated_study


class TestFig1:
    def test_small_run(self):
        report = run_fig1(suites=("mcnc",), max_faults_per_circuit=4)
        assert len(report.points) > 20
        # Shape: most instances fast.
        assert report.fraction_fast >= 0.5
        text = report.render()
        assert "fraction under" in text

    def test_points_have_sizes(self):
        report = run_fig1(suites=("mcnc",), max_faults_per_circuit=2)
        for point in report.points:
            assert point.num_variables > 0
            assert point.solve_time >= 0


class TestFig8:
    def test_small_run_mcnc(self):
        report = run_fig8("mcnc", max_faults_per_circuit=3)
        assert len(report.points) > 10
        fits = report.fits()
        assert set(fits) <= {"linear", "log", "power"}
        assert report.best_model() in fits
        assert report.max_log_ratio() < 8.0
        assert "Figure 8" in report.render()

    def test_skip_circuits(self):
        report = run_fig8(
            "iscas",
            max_faults_per_circuit=2,
            skip_circuits=tuple(
                name
                for name in __import__(
                    "repro.gen.benchmarks", fromlist=["circuit_names"]
                ).circuit_names("iscas")
                if name != "c17"
            ),
        )
        assert {p.circuit for p in report.points} == {"c17"}


class TestGeneratedStudy:
    def test_small_run(self):
        report = run_generated_study(sizes=[50, 120], faults_per_circuit=4)
        assert len(report.points) >= 6
        assert report.best_model() in ("log", "linear", "power", "none")
        assert "Generated-circuit study" in report.render()


class TestBddComparison:
    def test_default_run(self):
        report = run_bdd_comparison()
        assert len(report.rows) == 4
        for row in report.rows:
            # The caching solver respects its Theorem 4.1 bound.
            assert row.backtracking_nodes <= row.backtracking_bound
            # Topological orders have zero reverse width.
            assert row.reverse_width_topo == 0
        assert "Section 6" in report.render()


class TestAblations:
    def test_default_run(self):
        report = run_ablations()
        assert report.caching and report.ordering
        for row in report.caching:
            # Caching never explores more nodes than simple backtracking.
            assert row.cached_nodes <= row.uncached_nodes
        for row in report.ordering:
            # MLA ordering is never worse than a random ordering in width.
            assert row.width_mla <= row.width_random
        assert "Ablation" in report.render()
